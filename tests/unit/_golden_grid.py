"""Shared small-grid configurations for the E1-E11 no-fault regression pin.

The fault-injection substrate threads optional ``faults``/``topology``
arguments through the delivery and stage layers; the contract is that when
no fault model is supplied the code paths are byte-for-byte the pre-existing
ones.  This module defines one tiny-but-complete configuration per driver
plus a digest helper; ``tests/unit/test_fault_none_regression.py`` pins the
digests captured before the fault layer landed.
"""

from __future__ import annotations

import hashlib
import json

from repro.api import ExecutionConfig, run_experiment

#: One fast configuration per driver: (experiment_id, batch?, overrides).
GRID = [
    ("E1", True, {"sizes": (250, 400), "epsilon": 0.3, "trials": 2}),
    ("E2", True, {"epsilons": (0.25, 0.4), "n": 250, "trials": 2}),
    ("E3", True, {"sizes": (250, 400), "epsilons": (0.3,), "trials": 2}),
    ("E4", True, {"n": 250, "epsilons": (0.3,), "trials": 3}),
    ("E5", True, {"n": 250, "epsilon": 0.35, "trials": 2}),
    ("E6", True, {"n": 250, "epsilon": 0.3, "trials": 3}),
    ("E7", True, {"n": 250, "epsilons": (0.3,), "trials": 2, "voter_rounds": 24}),
    ("E8", True, {"n": 250, "set_sizes": (60,), "biases": (0.2,), "trials": 2}),
    ("E9", True, {"n": 250, "epsilon": 0.3, "skews": (4,), "trials": 2}),
    ("E10", True, {"deltas": (0.05,), "monte_carlo_reps": 2000}),
    ("E11", True, {"n": 120, "epsilon": 0.3, "trials": 2}),
    ("E1", False, {"sizes": (250, 400), "epsilon": 0.3, "trials": 2}),
    ("E7", False, {"n": 250, "epsilons": (0.3,), "trials": 2, "voter_rounds": 24}),
    ("E9", False, {"n": 250, "epsilon": 0.3, "skews": (4,), "trials": 2}),
]


def grid_digest(
    experiment_id: str, batch: bool, overrides: dict, config: ExecutionConfig = None
) -> str:
    """Run one grid configuration and digest its full report deterministically.

    ``config`` overrides the whole :class:`ExecutionConfig` (used by the
    execution-backend differential pins); the default keeps the historical
    serial/batch configuration.
    """
    artifact = run_experiment(
        experiment_id, config=config or ExecutionConfig(batch=batch), **overrides
    )
    payload = {
        "render": artifact.report.render(),
        "rows": artifact.report.rows,
        "notes": artifact.report.notes,
    }
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()
