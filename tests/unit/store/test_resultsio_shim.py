"""Unit tests for the deprecated repro.analysis.resultsio re-export shim.

The contract: every historical name keeps working and resolves to the
*same object* as its new home in :mod:`repro.store` (so artifacts written
through the shim are bit-identical), the first attribute access emits
exactly one :class:`DeprecationWarning` per process, and unknown names
still raise :class:`AttributeError`.
"""

from __future__ import annotations

import warnings

import pytest

import repro.analysis.resultsio as shim
import repro.store as store

FORWARDED = [
    "to_jsonable",
    "encode_nonfinite",
    "decode_nonfinite",
    "save_result",
    "load_result",
    "save_sweep",
    "load_sweep",
    "RunArtifact",
    "save_run",
    "load_run",
]


class TestShim:
    def test_every_historical_name_is_the_store_object(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for name in FORWARDED:
                assert getattr(shim, name) is getattr(store, name), name

    def test_warns_exactly_once_per_process(self, monkeypatch):
        monkeypatch.setattr(shim, "_warned", False)
        with pytest.warns(DeprecationWarning, match="moved to repro.store"):
            shim.save_run
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            shim.load_run  # second access: silent

    def test_unknown_names_raise_attribute_error(self):
        with pytest.raises(AttributeError, match="no attribute"):
            shim.definitely_not_a_name

    def test_dir_lists_the_forwarded_names(self):
        assert set(FORWARDED) <= set(dir(shim))

    def test_importing_repro_analysis_is_warning_free(self):
        # The analysis package re-exports the persistence helpers without
        # routing through the shim, so plain `import repro.analysis` (or its
        # re-exports) must not warn.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.analysis import save_result  # noqa: F401
