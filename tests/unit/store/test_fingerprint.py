"""Unit tests for the run-fingerprint contract (repro.store.fingerprint).

The fingerprint is the cache address: two requests must hash identically
exactly when the determinism contract says their results are bit-identical.
These tests pin both directions — canonicalization invariances (dict key
order, tuple-vs-list, non-finite floats, default-vs-explicit overrides,
``jobs``/``backend`` changes) must collapse to one fingerprint, while
semantic changes (parameters, version, the ``batch`` flag) must not.
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

import pytest

from repro import __version__
from repro.api import ExecutionConfig, run_experiment
from repro.errors import ExperimentError
from repro.store import (
    EXCLUDED_PLAN_FIELDS,
    FINGERPRINT_FIELDS,
    canonical_json,
    run_fingerprint,
)

PARAMS = {"n": 100, "epsilon": 0.3, "sizes": (10, 20)}


class TestCanonicalization:
    def test_dict_key_order_is_irrelevant(self):
        shuffled = {"sizes": (10, 20), "n": 100, "epsilon": 0.3}
        assert run_fingerprint("E1", "1.0.0", PARAMS) == run_fingerprint(
            "E1", "1.0.0", shuffled
        )

    def test_tuples_and_lists_hash_identically(self):
        as_list = dict(PARAMS, sizes=[10, 20])
        assert run_fingerprint("E1", "1.0.0", PARAMS) == run_fingerprint(
            "E1", "1.0.0", as_list
        )

    def test_nonfinite_values_are_canonical_and_strict_json(self):
        weird = {"a": float("nan"), "b": float("inf"), "c": -float("inf")}
        first = run_fingerprint("E1", "1.0.0", weird)
        second = run_fingerprint("E1", "1.0.0", dict(reversed(list(weird.items()))))
        assert first == second
        # The canonical encoding itself must be strict JSON (no NaN tokens).
        encoded = canonical_json(weird)
        assert "NaN" not in encoded and "Infinity" not in encoded

    def test_numpy_scalars_hash_like_python_scalars(self):
        import numpy as np

        assert run_fingerprint("E1", "1.0.0", {"n": np.int64(100)}) == run_fingerprint(
            "E1", "1.0.0", {"n": 100}
        )

    def test_fingerprint_is_a_sha256_hex_digest(self):
        fingerprint = run_fingerprint("E1", "1.0.0", PARAMS)
        assert len(fingerprint) == 64 and int(fingerprint, 16) >= 0


class TestSemanticSensitivity:
    def test_parameters_version_spec_and_batch_all_matter(self):
        base = run_fingerprint("E1", "1.0.0", PARAMS)
        assert run_fingerprint("E2", "1.0.0", PARAMS) != base
        assert run_fingerprint("E1", "1.0.1", PARAMS) != base
        assert run_fingerprint("E1", "1.0.0", dict(PARAMS, n=101)) != base
        assert run_fingerprint("E1", "1.0.0", PARAMS, batch=True) != base

    def test_contract_constants_name_the_ins_and_outs(self):
        assert "execution.batch" in FINGERPRINT_FIELDS
        for excluded in ("jobs", "backend"):
            assert excluded in EXCLUDED_PLAN_FIELDS


class TestResolvedRunInvariance:
    """Fingerprints computed through run_experiment's resolution layer."""

    E1_TOY = {"sizes": (250, 400), "epsilon": 0.3, "trials": 1}

    def test_default_and_explicit_override_collapse_to_one_fingerprint(self, tmp_path):
        # trials passed as a parameter override vs. on the ExecutionConfig:
        # both resolve to the same parameters, hence the same fingerprint.
        store = tmp_path / "store"
        via_param = run_experiment(
            "E1", config=ExecutionConfig(store_path=store), **self.E1_TOY
        )
        via_config = run_experiment(
            "E1",
            config=ExecutionConfig(store_path=store, trials=1),
            sizes=(250, 400),
            epsilon=0.3,
        )
        assert via_param.fingerprint == via_config.fingerprint
        assert via_config.execution["cache"] == "hit"

    def test_jobs_and_backend_do_not_change_the_fingerprint(self, tmp_path):
        store = tmp_path / "store"
        serial = run_experiment(
            "E1", config=ExecutionConfig(store_path=store), **self.E1_TOY
        )
        parallel = run_experiment(
            "E1", config=ExecutionConfig(store_path=store, jobs=2), **self.E1_TOY
        )
        in_process = run_experiment(
            "E1",
            config=ExecutionConfig(store_path=store, backend="in-process"),
            **self.E1_TOY,
        )
        assert serial.fingerprint == parallel.fingerprint == in_process.fingerprint
        assert serial.execution["cache"] == "miss"
        assert parallel.execution["cache"] == "hit"
        assert in_process.execution["cache"] == "hit"

    def test_cross_backend_hit_serves_the_golden_digest(self, tmp_path):
        """A run stored serially must satisfy a local-pool request — and the
        served report must still match the pinned E8 golden digest."""
        sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
        from _golden_grid import grid_digest

        e8_toy = dict(n=60, epsilon=0.3, set_sizes=(10,), biases=(0.2,), trials=2, base_seed=5)
        reference = grid_digest("E8", False, e8_toy)

        store = tmp_path / "store"
        cold = run_experiment("E8", config=ExecutionConfig(store_path=store), **e8_toy)
        assert cold.execution["cache"] == "miss"
        pooled = ExecutionConfig(store_path=store, backend="local", backend_options={"workers": 2})
        digest = grid_digest("E8", False, e8_toy, config=pooled)
        assert digest == reference
        warm = run_experiment("E8", config=pooled, **e8_toy)
        assert warm.execution["cache"] == "hit"

    def test_rejects_non_mapping_parameters(self):
        with pytest.raises((ExperimentError, TypeError, ValueError)):
            run_fingerprint("E1", "1.0.0", 42)

    def test_version_pins_the_package(self):
        # The live package version participates, so upgrading repro
        # invalidates every stored run by construction.
        a = run_experiment("E1", **self.E1_TOY)
        assert a.fingerprint == run_fingerprint("E1", __version__, a.parameters)
        assert not math.isnan(a.wall_time_seconds)
