"""Concurrent-writer safety of the run store, pinned for the service layer.

The experiment service turns the store into a multi-writer system: worker
threads persist completed runs while request threads answer lookups.  This
module pins the three guarantees the service relies on:

* ``index.jsonl`` appends from many threads stay whole — every line parses,
  every put is indexed (the per-store ``index_lock`` file);
* two simultaneous identical ``run_experiment`` calls against one store
  compute **once** — the double-checked per-fingerprint compute lock turns
  the loser of the race into a cache hit;
* ``resolve_prefix`` ambiguity errors list the matching fingerprints, so a
  service ``409`` is actionable.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import ExecutionConfig, run_experiment
from repro.errors import ExperimentError
from repro.experiments.report import ExperimentReport
from repro.store import RunArtifact, RunStore
from repro.store.index import index_path, read_entries

E1_TOY = dict(sizes=(60, 90), epsilon=0.3, trials=1)


def _toy_artifact(index: int) -> RunArtifact:
    """A minimal, valid artifact whose fingerprint varies with ``index``."""
    report = ExperimentReport(
        experiment_id="E1",
        title="toy",
        claim="toy",
        rows=[{"n": index, "rounds": 3 * index}],
    )
    return RunArtifact(spec_id="E1", parameters={"n": index}, report=report, version="0.0-test")


class TestConcurrentIndexAppends:
    """Multi-thread puts: one whole, parseable index line per artifact."""

    def test_multithreaded_puts_keep_every_index_line_whole(self, tmp_path):
        store = RunStore(tmp_path / "store")
        threads_count, per_thread = 8, 6
        errors = []
        barrier = threading.Barrier(threads_count)

        def hammer(thread_index: int) -> None:
            try:
                barrier.wait()
                for position in range(per_thread):
                    store.put(_toy_artifact(thread_index * per_thread + position))
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(index,)) for index in range(threads_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        total = threads_count * per_thread
        raw_lines = [
            line for line in index_path(store.root).read_text().splitlines() if line.strip()
        ]
        # Every line must parse — a torn/interleaved append would fail here.
        parsed = [json.loads(line) for line in raw_lines]
        assert len(parsed) == total
        assert len(read_entries(store.root)) == total
        assert len(store.entries()) == total
        assert all(entry["indexed"] for entry in store.entries())


class TestDuplicateSubmissionsComputeOnce:
    """The double-checked miss path: identical concurrent runs → one compute."""

    def test_simultaneous_identical_runs_compute_once(self, tmp_path):
        config = ExecutionConfig(batch=True, store_path=tmp_path / "store")
        outcomes = []
        errors = []
        barrier = threading.Barrier(2)

        def submit() -> None:
            try:
                barrier.wait()
                artifact = run_experiment("E1", config=config, **E1_TOY)
                outcomes.append(artifact.execution["cache"])
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Exactly one thread paid for the simulation; the other was served
        # the winner's freshly persisted artifact from inside the lock.
        assert sorted(outcomes) == ["hit", "miss"]

        store = RunStore(tmp_path / "store")
        assert len(store.entries()) == 1

    def test_compute_lock_is_shared_per_resolved_root(self, tmp_path):
        fingerprint = "ab" * 32
        one = RunStore(tmp_path / "store")
        two = RunStore(tmp_path / "store")
        assert one.compute_lock(fingerprint) is two.compute_lock(fingerprint)
        assert one.compute_lock(fingerprint) is not one.compute_lock("cd" * 32)


class TestResolvePrefixAmbiguityListing:
    """The 409-backing error names the matches, truncated."""

    @staticmethod
    def _put_forged(store: RunStore, prefix: str, count: int) -> list:
        """Store ``count`` artifacts whose fingerprints share ``prefix``."""
        fingerprints = []
        for index in range(count):
            artifact = _toy_artifact(index)
            width = 64 - len(prefix)
            artifact.fingerprint = prefix + format(index, f"0{width}x")
            store.put(artifact)
            fingerprints.append(artifact.fingerprint)
        return fingerprints

    def test_ambiguous_prefix_lists_matches(self, tmp_path):
        store = RunStore(tmp_path / "store")
        fingerprints = self._put_forged(store, "ab" * 5, 3)
        with pytest.raises(ExperimentError) as excinfo:
            store.resolve_prefix("ab" * 5)
        message = str(excinfo.value)
        assert "ambiguous" in message and "extend the prefix" in message
        assert "3 matches" in message
        for fingerprint in fingerprints:
            assert fingerprint[:12] in message

    def test_ambiguous_prefix_lists_at_most_eight(self, tmp_path):
        store = RunStore(tmp_path / "store")
        self._put_forged(store, "cd" * 5, 12)
        with pytest.raises(ExperimentError) as excinfo:
            store.resolve_prefix("cd" * 5)
        message = str(excinfo.value)
        assert "12 matches" in message and "..." in message
        # Eight shown plus the truncation marker, never the full dozen.
        listed = message.split("matches:")[1]
        assert listed.count("cdcdcdcdcd") == 8
