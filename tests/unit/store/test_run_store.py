"""Unit tests for the content-addressed run store (repro.store.cache et al.).

Covers the cache policy (hit / miss / bypass with byte-identical served
reports), the atomicity guarantee of ``save_run`` (an interrupted write
leaves the destination untouched), the append-safe index (torn tails are
skipped, ``gc`` rebuilds), fingerprint verification on load (tampered
manifests are refused with a labelled error), and the maintenance surface
behind ``repro-flip store`` (``entries``/``resolve_prefix``/``verify``/``gc``).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.api import ExecutionConfig, run_experiment
from repro.errors import ExperimentError
from repro.store import RunStore, load_run, save_run
from repro.store.index import append_entry, index_path, read_entries
from repro.store.layout import relative_artifact_path, validate_fingerprint

E1_TOY = {"sizes": (250, 400), "epsilon": 0.3, "trials": 1}


def _cold_run(store_root, **extra):
    return run_experiment("E1", config=ExecutionConfig(store_path=store_root, **extra), **E1_TOY)


class TestCachePolicy:
    def test_miss_then_hit_with_byte_identical_report(self, tmp_path):
        store = tmp_path / "store"
        cold = _cold_run(store)
        warm = _cold_run(store)
        assert cold.execution["cache"] == "miss"
        assert warm.execution["cache"] == "hit"
        assert warm.fingerprint == cold.fingerprint
        assert warm.report.render() == cold.report.render()
        assert warm.report.rows == cold.report.rows

    def test_hit_is_served_without_touching_the_exec_layer(self, tmp_path, monkeypatch):
        store = tmp_path / "store"
        _cold_run(store)
        from repro.api.config import ExecutionPlan

        def _no_backend(self):
            raise AssertionError("cache hit must not create an execution backend")

        monkeypatch.setattr(ExecutionPlan, "create_backend", _no_backend)
        assert _cold_run(store).execution["cache"] == "hit"

    def test_no_cache_bypasses_the_lookup_but_refreshes_the_store(self, tmp_path):
        store = tmp_path / "store"
        cold = _cold_run(store)
        bypass = _cold_run(store, cache=False)
        assert bypass.execution["cache"] == "bypass"
        assert bypass.report.render() == cold.report.render()
        # The refreshed stored manifest records the bypass, and a subsequent
        # cached run serves it as a hit again.
        manifest = json.loads(
            (RunStore(store).artifact_dir(cold.fingerprint) / "manifest.json").read_text()
        )
        assert manifest["execution"]["cache"] == "bypass"
        assert _cold_run(store).execution["cache"] == "hit"

    def test_runs_without_a_store_record_no_cache_key(self):
        artifact = run_experiment("E1", **E1_TOY)
        assert "cache" not in artifact.execution
        assert artifact.fingerprint  # still computed for the manifest

    def test_get_or_run_shares_the_run_experiment_policy(self, tmp_path):
        store = RunStore(tmp_path / "store")
        cold = store.get_or_run("E1", **E1_TOY)
        warm = store.get_or_run("E1", **E1_TOY)
        assert cold.execution["cache"] == "miss" and warm.execution["cache"] == "hit"

    def test_get_or_run_rejects_a_conflicting_store(self, tmp_path):
        store = RunStore(tmp_path / "store")
        other = ExecutionConfig(store_path=tmp_path / "elsewhere")
        with pytest.raises(ExperimentError, match="one store"):
            store.get_or_run("E1", config=other, **E1_TOY)

    def test_get_or_run_rejects_a_resolved_plan(self, tmp_path):
        plan = ExecutionConfig().resolve("E1")
        with pytest.raises(ExperimentError, match="ExecutionConfig"):
            RunStore(tmp_path / "store").get_or_run("E1", config=plan, **E1_TOY)

    def test_store_root_must_not_be_a_file(self, tmp_path):
        occupied = tmp_path / "occupied"
        occupied.write_text("not a directory")
        with pytest.raises(ExperimentError, match="not a directory"):
            RunStore(occupied)


class TestAtomicSave:
    def test_interrupted_write_leaves_the_destination_untouched(self, tmp_path, monkeypatch):
        """Kill the writer mid-save: the previously stored artifact must
        survive, and only a sweepable ``.``-prefixed staging dir may remain."""
        store = tmp_path / "store"
        cold = _cold_run(store)
        destination = RunStore(store).artifact_dir(cold.fingerprint)
        before = sorted(p.name for p in destination.iterdir())

        import repro.store.artifact as artifact_module

        real_write = artifact_module.write_json
        calls = {"n": 0}

        def _dies_midway(payload, path, sort_keys=True):
            calls["n"] += 1
            if calls["n"] >= 2:  # report written, manifest about to be
                raise KeyboardInterrupt("simulated crash mid-save")
            return real_write(payload, path, sort_keys=sort_keys)

        monkeypatch.setattr(artifact_module, "write_json", _dies_midway)
        with pytest.raises(KeyboardInterrupt):
            save_run(cold, destination)

        monkeypatch.undo()
        assert sorted(p.name for p in destination.iterdir()) == before
        reloaded = load_run(destination)
        assert reloaded.fingerprint == cold.fingerprint
        # The staging directory was cleaned up by save_run's error path.
        stray = [p for p in destination.parent.iterdir() if p.name.startswith(".")]
        assert stray == []

    def test_resave_replaces_an_existing_artifact_whole(self, tmp_path):
        store = tmp_path / "store"
        cold = _cold_run(store)
        destination = RunStore(store).artifact_dir(cold.fingerprint)
        cold.wall_time_seconds = 123.0
        save_run(cold, destination)
        assert load_run(destination).wall_time_seconds == 123.0
        assert not list(destination.parent.glob(".*"))  # no graveyard left


class TestVerificationOnLoad:
    def test_tampered_manifest_is_refused_with_a_labelled_error(self, tmp_path):
        store = tmp_path / "store"
        cold = _cold_run(store)
        manifest_path = RunStore(store).artifact_dir(cold.fingerprint) / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["parameters"]["epsilon"] = 0.4  # the lie
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ExperimentError, match="fingerprint mismatch"):
            load_run(manifest_path.parent)
        # And the store layer labels it instead of serving or masking it.
        with pytest.raises(ExperimentError, match="failed verification.*gc"):
            RunStore(store).get(cold.fingerprint)

    def test_artifact_filed_under_the_wrong_address_is_refused(self, tmp_path):
        store = RunStore(tmp_path / "store")
        cold = _cold_run(store.root)
        wrong = "0" * 64
        wrong_dir = store.artifact_dir(wrong)
        wrong_dir.parent.mkdir(parents=True, exist_ok=True)
        save_run(cold, wrong_dir)
        with pytest.raises(ExperimentError, match="carries fingerprint"):
            store.get(wrong)

    def test_format_1_artifacts_still_load_without_verification(self, tmp_path):
        cold = run_experiment("E1", **E1_TOY)
        destination = tmp_path / "legacy"
        save_run(cold, destination)
        manifest_path = destination / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = 1
        del manifest["fingerprint"]
        manifest_path.write_text(json.dumps(manifest))
        assert load_run(destination).fingerprint is None

    def test_validate_fingerprint_rejects_non_hashes(self):
        for bad in ("", "xyz", "A" * 64, "0" * 63, "0" * 65, "../escape"):
            with pytest.raises(ExperimentError, match="fingerprint"):
                validate_fingerprint(bad)


class TestIndexAndMaintenance:
    def test_index_survives_a_torn_tail(self, tmp_path):
        store = RunStore(tmp_path / "store")
        cold = _cold_run(store.root)
        with open(index_path(store.root), "a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "torn-off-mid-wri')  # no newline, no close
        entries = read_entries(store.root)
        assert list(entries) == [cold.fingerprint]
        listing = store.entries()
        assert len(listing) == 1 and listing[0]["indexed"]

    def test_unindexed_artifacts_are_listed_and_gc_backfills(self, tmp_path):
        store = RunStore(tmp_path / "store")
        cold = _cold_run(store.root)
        index_path(store.root).unlink()
        listing = store.entries()
        assert listing[0]["indexed"] is False
        summary = store.gc()
        assert summary["kept"] == 1 and not summary["removed_corrupt"]
        rebuilt = read_entries(store.root)
        assert rebuilt[cold.fingerprint]["spec_id"] == "E1"
        assert store.entries()[0]["indexed"]

    def test_gc_sweeps_stale_staging_and_corrupt_artifacts(self, tmp_path):
        store = RunStore(tmp_path / "store")
        cold = _cold_run(store.root)
        second = run_experiment(
            "E1", config=ExecutionConfig(store_path=store.root), sizes=(250, 400), epsilon=0.35, trials=1
        )
        # A stale staging dir (interrupted save, backdated past the grace)
        # and a tampered artifact.
        stale = store.artifact_dir(cold.fingerprint).parent / f".{cold.fingerprint}.xyz.tmp"
        stale.mkdir()
        long_ago = time.time() - 7200
        os.utime(stale, (long_ago, long_ago))
        manifest_path = store.artifact_dir(second.fingerprint) / "manifest.json"
        manifest_path.write_text(manifest_path.read_text().replace("0.35", "0.36"))
        summary = store.gc()
        assert summary["removed_stale"] and summary["removed_corrupt"] == [second.fingerprint]
        assert summary["kept"] == 1
        assert not stale.exists()
        assert store.get(cold.fingerprint) is not None
        assert store.get(second.fingerprint) is None  # clean miss now

    def test_gc_grace_protects_an_in_flight_save(self, tmp_path):
        # The race from the robustness issue: ``gc`` running while another
        # thread/process is mid-``save_run`` must not sweep the writer's
        # fresh staging directory (the atomic promotion would then fail and
        # a healthy put would be destroyed).  A *young* dot-directory is
        # exactly what an in-flight save looks like from the outside.
        store = RunStore(tmp_path / "store")
        cold = _cold_run(store.root)
        in_flight = store.artifact_dir(cold.fingerprint).parent / f".{cold.fingerprint}.abc.tmp"
        in_flight.mkdir()
        summary = store.gc()  # default grace: the young dir must survive
        assert summary["removed_stale"] == []
        assert in_flight.exists()
        # An explicit zero grace restores the sweep-everything behaviour.
        summary = store.gc(stale_grace_seconds=0)
        assert summary["removed_stale"] == [f"{cold.fingerprint[:2]}/{in_flight.name}"]
        assert not in_flight.exists()

    def test_verify_quarantines_arbitrary_decode_crashes(self, tmp_path):
        # A corrupt payload whose load raises something *other* than the
        # labelled ExperimentError (here: a report body of the wrong shape)
        # must come back as ok=False, never crash the verify sweep.
        store = RunStore(tmp_path / "store")
        cold = _cold_run(store.root)
        report_path = store.artifact_dir(cold.fingerprint) / "report.json"
        report_path.write_text('{"unexpected": "shape"}')
        outcomes = store.verify()
        assert [o["ok"] for o in outcomes] == [False]
        assert outcomes[0]["fingerprint"] == cold.fingerprint
        assert outcomes[0]["error"]
        # gc removes it and the store serves a clean miss afterwards.
        summary = store.gc()
        assert summary["removed_corrupt"] == [cold.fingerprint]
        assert store.get(cold.fingerprint) is None

    def test_verify_reports_per_artifact(self, tmp_path):
        store = RunStore(tmp_path / "store")
        cold = _cold_run(store.root)
        report = store.verify()
        assert report == [{"fingerprint": cold.fingerprint, "ok": True, "error": None}]

    def test_resolve_prefix(self, tmp_path):
        store = RunStore(tmp_path / "store")
        cold = _cold_run(store.root)
        assert store.resolve_prefix(cold.fingerprint[:8]) == cold.fingerprint
        with pytest.raises(ExperimentError, match="no stored run"):
            store.resolve_prefix("ffff")
        with pytest.raises(ExperimentError, match="empty"):
            store.resolve_prefix("")

    def test_append_entry_requires_a_fingerprint(self, tmp_path):
        with pytest.raises(ExperimentError, match="fingerprint"):
            append_entry(tmp_path, {"spec_id": "E1"})

    def test_layout_is_sharded_by_fingerprint_prefix(self, tmp_path):
        store = RunStore(tmp_path / "store")
        cold = _cold_run(store.root)
        assert relative_artifact_path(cold.fingerprint) == (
            f"{cold.fingerprint[:2]}/{cold.fingerprint}"
        )
        assert store.artifact_dir(cold.fingerprint).is_dir()
