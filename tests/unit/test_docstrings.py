"""Documentation gate: every public module must be importable and documented.

A lightweight, dependency-free equivalent of a ``pydocstyle`` run, wired
into CI (see ``.github/workflows/ci.yml``): it walks the whole ``repro``
package, imports every module, and enforces the house documentation rules —

* every module carries a real (multi-word, summary-first) docstring;
* everything a module exports via ``__all__`` is documented;
* public classes document their public methods.

Keeping this as a test (rather than only a CI step) means the gate also runs
in the tier-1 suite and fails the build of any future undocumented module.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

#: Minimum docstring length, low enough for genuine one-liners, high enough
#: to reject placeholders like ``"TODO"``.
_MIN_MODULE_DOC = 40
_MIN_OBJECT_DOC = 10


def _walk_module_names():
    """All importable module names in the ``repro`` package, sorted."""
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


MODULE_NAMES = _walk_module_names()


def test_package_walk_found_every_layer():
    """The walker must see all four layers plus the exec subsystem."""
    prefixes = {name.split(".")[1] for name in MODULE_NAMES if "." in name}
    assert {"substrate", "core", "protocols", "analysis", "exec", "experiments", "cli", "errors"} <= prefixes


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_has_docstring(module_name):
    """Every module imports cleanly and carries a substantive docstring."""
    module = importlib.import_module(module_name)
    doc = inspect.getdoc(module)
    assert doc, f"{module_name} has no module docstring"
    assert len(doc) >= _MIN_MODULE_DOC, f"{module_name} docstring is a stub: {doc!r}"
    first_line = doc.splitlines()[0].strip()
    assert len(first_line.split()) >= 3, f"{module_name} docstring needs a real summary line"


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_exported_objects_are_documented(module_name):
    """Everything exported via ``__all__`` carries a docstring of its own."""
    module = importlib.import_module(module_name)
    for export in getattr(module, "__all__", []):
        obj = getattr(module, export, None)
        assert obj is not None, f"{module_name}.__all__ names missing attribute {export!r}"
        if inspect.ismodule(obj) or not callable(obj) and not inspect.isclass(obj):
            continue  # re-exported submodules / constants document themselves elsewhere
        doc = inspect.getdoc(obj)
        assert doc and len(doc) >= _MIN_OBJECT_DOC, (
            f"{module_name}.{export} is exported but undocumented"
        )


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_public_methods_are_documented(module_name):
    """Public methods of exported classes carry docstrings."""
    module = importlib.import_module(module_name)
    for export in getattr(module, "__all__", []):
        obj = getattr(module, export, None)
        if not inspect.isclass(obj) or obj.__module__ != module.__name__:
            continue
        for method_name, member in inspect.getmembers(obj):
            if method_name.startswith("_"):
                continue
            if not (inspect.isfunction(member) or isinstance(
                inspect.getattr_static(obj, method_name, None), (property, staticmethod, classmethod)
            )):
                continue
            if getattr(member, "__objclass__", obj) is not obj and not any(
                method_name in klass.__dict__ for klass in obj.__mro__ if klass.__module__.startswith("repro")
            ):
                continue
            doc = inspect.getdoc(member)
            assert doc, f"{module.__name__}.{export}.{method_name} has no docstring"
