"""Smoke gates: persistence round-trips, CLI artifacts, benchmark imports.

Three things in this repository rot silently: the JSON persistence layer (a
measurement nobody serialises in the unit suite can break ``save``/``load``
without any test noticing), the CLI-to-artifact pipeline (the one path an
end user actually drives), and the ``benchmarks/bench_*.py`` scripts (they
only execute when someone runs the benchmark harness by hand).  This module
gates all three in the tier-1 suite:

* every persistence entry point (``save_result``/``load_result``/
  ``save_sweep``/``load_sweep``) must round-trip a freshly produced result,
  including the awkward values (``NaN`` means, numpy scalars, ``None``
  never-converged markers);
* ``repro-flip experiment ... --batch --save DIR`` must run end to end into
  an artifact directory whose manifest and report load back through
  :func:`repro.api.load_run` with identical tables (also an explicit CI
  step, see ``.github/workflows/ci.yml``);
* every benchmark script must *import* cleanly — a no-op check that catches
  renamed driver functions, stale imports and syntax errors without paying
  for a benchmark run — and define at least one test for the harness.
"""

from __future__ import annotations

import importlib.util
import json
import math
import sys
from pathlib import Path

import pytest

from repro.analysis.experiments import run_trials
from repro.analysis.sweeps import run_sweep
from repro.api import ExecutionConfig, load_run, run_experiment
from repro.cli import main as cli_main
from repro.store import load_result, load_sweep, save_result, save_sweep

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
BENCHMARK_SCRIPTS = sorted(BENCHMARKS_DIR.glob("bench_*.py"))


def _awkward_trial(seed: int, index: int) -> dict:
    """Measurements exercising every serialisation edge the writers guard."""
    import numpy as np

    return {
        "rounds": np.int64(10 + index),
        "fraction": np.float64(0.5),
        "ok": np.bool_(True),
        "rounds_converged": None if index == 0 else 12,
        "mean_estimate": float("nan") if index == 0 else 1.5,
    }


def _awkward_sweep_trial(point, seed: int, index: int) -> dict:
    """Sweep-shaped wrapper around :func:`_awkward_trial`."""
    return _awkward_trial(seed, index)


class TestPersistenceSmoke:
    def test_result_round_trip(self, tmp_path):
        result = run_trials("smoke", _awkward_trial, num_trials=2, base_seed=3)
        path = save_result(result, tmp_path / "result.json")
        # Strict JSON: a parser with no NaN/Infinity extension must accept it.
        payload = json.loads(path.read_text(), parse_constant=_reject_constant)
        assert payload["name"] == "smoke"
        loaded = load_result(path)
        assert loaded.values("rounds") == result.values("rounds")
        assert loaded.trials[0].measurements["rounds_converged"] is None
        assert loaded.trials[0].measurements["mean_estimate"] is None  # NaN -> null

    def test_sweep_round_trip(self, tmp_path):
        sweep = run_sweep(
            "smoke", [{"x": 1}, {"x": 2}], _awkward_sweep_trial, trials_per_point=2, base_seed=3
        )
        path = save_sweep(sweep, tmp_path / "sweep.json")
        json.loads(path.read_text(), parse_constant=_reject_constant)
        loaded = load_sweep(path)
        assert [p.as_dict() for p in loaded.points] == [p.as_dict() for p in sweep.points]
        assert [r.name for r in loaded.results] == [r.name for r in sweep.results]


class TestCliArtifactRoundTrip:
    """The CI satellite gate: CLI run → artifact directory → loader."""

    def test_cli_batch_run_round_trips_through_the_loader(self, tmp_path, capsys):
        destination = tmp_path / "e1-run"
        exit_code = cli_main(
            [
                "experiment",
                "E1",
                "--trials",
                "1",
                "--set",
                "epsilon=0.3",
                "--set",
                "sizes=(250, 500)",
                "--batch",
                "--save",
                str(destination),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0

        artifact = load_run(destination)
        assert artifact.spec_id == "E1"
        assert artifact.parameters["epsilon"] == 0.3
        assert artifact.parameters["trials"] == 1
        assert artifact.parameters["sizes"] == [250, 500]
        assert artifact.execution["batch"] is True
        assert artifact.version
        # The loaded report renders exactly what the CLI printed.
        assert artifact.report.render() in captured.out
        assert str(destination) in captured.err
        # Strict JSON: a parser with no NaN/Infinity extension must accept it.
        json.loads((destination / "manifest.json").read_text(), parse_constant=_reject_constant)
        json.loads((destination / "report.json").read_text(), parse_constant=_reject_constant)

    def test_cli_e7_batch_artifact_has_identical_tables(self, tmp_path):
        """Acceptance differential: an E7 --batch artifact (NaN rows included)
        loads back with a bit-identical rendered table."""
        destination = tmp_path / "e7-run"
        exit_code = cli_main(
            [
                "experiment",
                "E7",
                "--batch",
                "--trials",
                "2",
                "--set",
                "n=250",
                "--set",
                "epsilons=(0.3,)",
                "--set",
                "voter_rounds=32",
                "--save",
                str(destination),
            ]
        )
        assert exit_code == 0
        loaded = load_run(destination)

        direct = run_experiment(
            "E7",
            config=ExecutionConfig(batch=True, trials=2),
            n=250,
            epsilons=(0.3,),
            voter_rounds=32,
        )
        assert loaded.report.render() == direct.report.render()
        # The short voter budget never converges: its NaN rounds cell must
        # survive the round-trip as NaN, not collapse to None.
        voter_rows = [row for row in loaded.report.rows if row["protocol"] == "noisy-voter"]
        assert voter_rows and math.isnan(voter_rows[0]["mean_rounds"])


class TestCliStoreCacheGate:
    """The store CI gate: the same CLI experiment twice with ``--store`` —
    the second invocation must be a cache hit with a byte-identical report
    (also an explicit CI step, see ``.github/workflows/ci.yml``)."""

    E1_ARGS = [
        "experiment",
        "E1",
        "--trials",
        "1",
        "--set",
        "epsilon=0.3",
        "--set",
        "sizes=(250, 400)",
    ]

    def test_second_cli_run_is_a_cache_hit_with_identical_report(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert cli_main([*self.E1_ARGS, "--store", str(store)]) == 0
        first = capsys.readouterr()
        assert "cache miss" in first.err

        assert cli_main([*self.E1_ARGS, "--store", str(store)]) == 0
        second = capsys.readouterr()
        assert "cache hit" in second.err
        assert second.out == first.out

        # Both runs print the same fingerprint, and --no-cache recomputes.
        assert first.err.split("fingerprint")[1] == second.err.split("fingerprint")[1]
        assert cli_main([*self.E1_ARGS, "--store", str(store), "--no-cache"]) == 0
        third = capsys.readouterr()
        assert "cache bypass" in third.err and third.out == first.out


class TestBackendSmoke:
    """The execution-backend CI gate: one toy sweep per backend, equal digests.

    A lighter-weight companion to the full differential in
    ``tests/unit/exec/test_remote_backend.py``: every ``--backend`` value —
    in-process, the persistent local pool, and the remote queue with two
    localhost workers — must produce the byte-identical artifact the default
    dispatch produces.
    """

    E8_TOY = dict(n=60, epsilon=0.3, set_sizes=(10,), biases=(0.2,), trials=2, base_seed=5)

    @pytest.mark.parametrize(
        "backend, options",
        [
            ("in-process", None),
            ("local", {"workers": 2}),
            ("remote", {"workers": 2, "chunk_size": 1}),
        ],
    )
    def test_backend_run_matches_the_default_digest(self, backend, options):
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        from _golden_grid import grid_digest

        reference = grid_digest("E8", False, self.E8_TOY)
        config = ExecutionConfig(backend=backend, backend_options=options)
        assert grid_digest("E8", False, self.E8_TOY, config=config) == reference


def _load_script(path: Path, module_name: str):
    """Import a benchmarks/ script by path (they are not a package)."""
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestStageBenchAndAggregatorSmoke:
    """The perf-trajectory tooling must *run*, not just import: the stage
    benchmark end to end at toy sizes, and the results aggregator over both
    payload shapes it understands."""

    def test_stage_batch_bench_measures_at_toy_sizes(self):
        module = _load_script(
            BENCHMARKS_DIR / "bench_stage_batch_speedup.py", "_smoke_stage_bench"
        )
        payload = module.measure(module.build_workloads(toy=True))
        assert set(payload["families"]) == {"E4", "E5", "E6", "E9", "E11"}
        for family, entry in payload["families"].items():
            assert entry["seconds"]["serial"] > 0, family
            assert entry["seconds"]["batch"] > 0, family
            assert "batch" in entry["speedup_vs_serial"], family

    def test_backend_dispatch_bench_measures_at_toy_sizes(self):
        module = _load_script(
            BENCHMARKS_DIR / "bench_backend_dispatch.py", "_smoke_backend_bench"
        )
        payload = module.measure(module.build_workloads(toy=True))
        assert payload["seconds"]["local_per_call"] > 0
        assert payload["seconds"]["local_reuse"] > 0
        assert payload["seconds"]["remote"] > 0
        assert "local_reuse_vs_per_call" in payload["speedup_vs_serial"]

    def test_store_cache_bench_measures_at_toy_sizes(self):
        module = _load_script(BENCHMARKS_DIR / "bench_store_cache.py", "_smoke_store_bench")
        payload = module.measure(module.build_workloads(toy=True))
        assert payload["seconds"]["cold"] > 0
        assert payload["seconds"]["warm"] > 0
        assert payload["workload"]["cross_jobs_hit"] is True
        # Every request after the cold one hit the store.
        assert payload["workload"]["hits"] == payload["workload"]["requests"] - 1
        assert "warm_vs_cold" in payload["speedup_vs_serial"]

    def test_service_load_bench_measures_at_toy_sizes(self):
        module = _load_script(
            BENCHMARKS_DIR / "bench_service_load.py", "_smoke_service_bench"
        )
        payload = module.measure(module.build_workloads(toy=True))
        assert payload["seconds"]["cold_phase"] > 0
        assert payload["seconds"]["warm_phase"] > 0
        assert payload["requests_per_second"]["warm"] > 0
        # Every warm request was a store hit, so the service's own metrics
        # must report a dominant hit rate.
        assert payload["workload"]["cache_hit_rate"] > 0.5
        assert "warm_vs_cold_rps" in payload["speedup_vs_serial"]

    def test_e12_fault_sweep_bench_measures_at_toy_sizes(self):
        module = _load_script(
            BENCHMARKS_DIR / "bench_e12_fault_sweep.py", "_smoke_e12_bench"
        )
        payload = module.measure(module.build_workloads(toy=True))
        assert set(payload["families"]) == {"crash", "byzantine"}
        for family, entry in payload["families"].items():
            assert entry["seconds"]["serial"] > 0, family
            assert entry["seconds"]["batch"] > 0, family
            assert "batch" in entry["speedup_vs_serial"], family
        module._assert_sweep_physics(payload["families"])

    def test_collect_results_aggregates_both_shapes(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "single.json").write_text(
            json.dumps(
                {
                    "workload": {"experiment": "single-style workload"},
                    "seconds": {"serial": 1.0, "batch": 0.5},
                    "speedup_vs_serial": {"batch": 2.0},
                }
            )
        )
        (results / "multi.json").write_text(
            json.dumps(
                {
                    "families": {
                        "E4": {
                            "description": "family-style workload",
                            "workload": {"n": 10},
                            "seconds": {"serial": 1.0, "batch": 0.4},
                            "speedup_vs_serial": {"batch": 2.5},
                        }
                    }
                }
            )
        )
        (results / "broken.json").write_text("not json {")
        module = _load_script(BENCHMARKS_DIR / "collect_results.py", "_smoke_collect")
        summary_path = tmp_path / "BENCH_SUMMARY.json"
        summary = module.collect(results_dir=results, summary_path=summary_path)
        assert [entry["source"] for entry in summary["entries"]] == [
            "multi.json#E4",
            "single.json",
        ]
        assert summary["skipped"] == ["broken.json"]
        reloaded = json.loads(summary_path.read_text(), parse_constant=_reject_constant)
        assert reloaded["entries"][1]["speedup_vs_serial"]["batch"] == 2.0

    def test_top_level_summary_is_committed_and_strict_json(self):
        summary_path = BENCHMARKS_DIR.parent / "BENCH_SUMMARY.json"
        payload = json.loads(summary_path.read_text(), parse_constant=_reject_constant)
        sources = [entry["source"] for entry in payload["entries"]]
        assert any(source.startswith("stage_batch_speedup.json#") for source in sources)


class TestBenchmarkScriptsImport:
    def test_benchmark_scripts_exist(self):
        assert len(BENCHMARK_SCRIPTS) >= 15, "benchmark suite unexpectedly shrank"

    @pytest.mark.parametrize(
        "script", BENCHMARK_SCRIPTS, ids=[script.stem for script in BENCHMARK_SCRIPTS]
    )
    def test_benchmark_script_imports_and_defines_tests(self, script):
        """Import the script (module-level code only — no benchmark runs) and
        check it still offers the harness at least one test function."""
        module_name = f"_bench_smoke_{script.stem}"
        spec = importlib.util.spec_from_file_location(module_name, script)
        module = importlib.util.module_from_spec(spec)
        try:
            sys.modules[module_name] = module
            spec.loader.exec_module(module)
            test_functions = [
                name
                for name in vars(module)
                if name.startswith("test_") and callable(getattr(module, name))
            ]
            assert test_functions, f"{script.name} defines no test_* function"
        finally:
            sys.modules.pop(module_name, None)


def _reject_constant(name: str):
    """parse_constant hook: fail on any NaN/Infinity token in saved JSON."""
    raise AssertionError(f"saved JSON contains a non-strict constant: {name}")
