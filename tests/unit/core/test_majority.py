"""Unit tests for repro.core.majority."""

import numpy as np
import pytest

from repro.core.majority import (
    MajorityInstance,
    NoisyMajorityConsensusProtocol,
    compute_start_phase,
    solve_noisy_majority_consensus,
)
from repro.core.parameters import ProtocolParameters
from repro.errors import ParameterError, SimulationError
from repro.substrate import SimulationEngine


class TestMajorityInstance:
    def test_generate_respects_size_and_bias(self, rng):
        instance = MajorityInstance.generate(n=500, size=100, bias=0.2, majority_opinion=1, rng=rng)
        assert instance.size == 100
        assert np.unique(instance.members).size == 100
        assert instance.majority_bias >= 0.2
        assert instance.majority_opinion == 1

    def test_generate_with_opinion_zero(self, rng):
        instance = MajorityInstance.generate(n=500, size=60, bias=0.1, majority_opinion=0, rng=rng)
        zeros = int(np.count_nonzero(instance.opinions == 0))
        assert zeros > instance.size / 2

    def test_generate_validations(self, rng):
        with pytest.raises(ParameterError):
            MajorityInstance.generate(n=10, size=20, bias=0.1, majority_opinion=1, rng=rng)
        with pytest.raises(ParameterError):
            MajorityInstance.generate(n=10, size=5, bias=-0.1, majority_opinion=1, rng=rng)

    def test_mismatched_members_opinions(self):
        with pytest.raises(ParameterError):
            MajorityInstance(
                members=np.asarray([1, 2]), opinions=np.asarray([1]), majority_opinion=1
            )


class TestComputeStartPhase:
    def test_matches_corollary_formula_in_range(self):
        parameters = ProtocolParameters.calibrated(50_000, 0.3, beta_override=8)
        # |A| = log n * (1/eps^2)^i  =>  i_A ~ i.
        log_n = np.log(50_000)
        set_size = int(log_n / (0.3**4))  # i = 2
        expected = round(np.log(set_size / log_n) / (2 * np.log(1 / 0.3)))
        assert compute_start_phase(parameters, set_size) == min(
            max(expected, 1), parameters.stage1.num_phases - 1
        )

    def test_small_sets_start_at_phase_one(self):
        parameters = ProtocolParameters.calibrated(2000, 0.25)
        assert compute_start_phase(parameters, 5) == 1

    def test_huge_sets_clamped_to_last_phase(self):
        parameters = ProtocolParameters.calibrated(2000, 0.25)
        assert compute_start_phase(parameters, 2000) == parameters.stage1.num_phases - 1

    def test_invalid_size(self):
        parameters = ProtocolParameters.calibrated(2000, 0.25)
        with pytest.raises(ParameterError):
            compute_start_phase(parameters, 0)


class TestSolveMajorityConsensus:
    def test_succeeds_above_threshold(self):
        result = solve_noisy_majority_consensus(
            n=400, epsilon=0.3, initial_set_size=120, majority_bias=0.25, seed=5
        )
        assert result.success
        assert result.final_correct_fraction == 1.0
        assert result.initial_set_size == 120
        assert result.initial_bias >= 0.25

    def test_converges_to_majority_zero(self):
        result = solve_noisy_majority_consensus(
            n=400, epsilon=0.3, initial_set_size=120, majority_bias=0.25, seed=7, majority_opinion=0
        )
        assert result.success
        assert result.majority_opinion == 0

    def test_complexity_accounting(self):
        result = solve_noisy_majority_consensus(
            n=400, epsilon=0.3, initial_set_size=120, majority_bias=0.25, seed=9
        )
        assert result.rounds == result.stage1.rounds + result.stage2.rounds
        assert result.messages_sent == result.stage1.messages_sent + result.stage2.messages_sent

    def test_reproducibility(self):
        kwargs = dict(n=300, epsilon=0.3, initial_set_size=80, majority_bias=0.2, seed=31)
        assert (
            solve_noisy_majority_consensus(**kwargs).messages_sent
            == solve_noisy_majority_consensus(**kwargs).messages_sent
        )

    def test_late_start_skips_early_phases(self):
        parameters = ProtocolParameters.calibrated(400, 0.3)
        broadcast_rounds = parameters.total_rounds
        result = solve_noisy_majority_consensus(
            n=400, epsilon=0.3, initial_set_size=150, majority_bias=0.25, seed=11, parameters=parameters
        )
        assert result.start_phase >= 1
        assert result.rounds < broadcast_rounds


class TestProtocolClass:
    def test_explicit_start_phase_override(self, rng):
        parameters = ProtocolParameters.calibrated(300, 0.3)
        engine = SimulationEngine.create(n=300, epsilon=0.3, seed=13, source=None)
        instance = MajorityInstance.generate(n=300, size=90, bias=0.25, majority_opinion=1, rng=rng)
        last_phase = parameters.stage1.num_phases - 1
        protocol = NoisyMajorityConsensusProtocol(parameters, start_phase=last_phase)
        result = protocol.run(engine, instance)
        assert result.start_phase == last_phase
        assert result.stage1.phases[0].phase == last_phase

    def test_rejects_mismatched_engine(self, rng):
        parameters = ProtocolParameters.calibrated(300, 0.3)
        engine = SimulationEngine.create(n=100, epsilon=0.3, seed=13, source=None)
        instance = MajorityInstance.generate(n=100, size=30, bias=0.2, majority_opinion=1, rng=rng)
        with pytest.raises(SimulationError):
            NoisyMajorityConsensusProtocol(parameters).run(engine, instance)
