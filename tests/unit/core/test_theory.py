"""Unit tests for repro.core.theory (closed-form predictions)."""

import math

import pytest

from repro.analysis.statistics import binomial_pmf
from repro.core import theory
from repro.errors import ParameterError


class TestComplexityBounds:
    def test_round_bound_formula(self):
        assert theory.broadcast_round_bound(1000, 0.2) == pytest.approx(math.log(1000) / 0.04)

    def test_message_bound_is_n_times_round_bound(self):
        assert theory.broadcast_message_bound(500, 0.1) == pytest.approx(
            500 * theory.broadcast_round_bound(500, 0.1)
        )

    def test_lower_bounds_match_upper_bound_shapes(self):
        assert theory.lower_bound_rounds(1000, 0.2) == theory.broadcast_round_bound(1000, 0.2)
        assert theory.lower_bound_messages(1000, 0.2) == theory.broadcast_message_bound(1000, 0.2)

    def test_clock_free_bound_adds_log_squared(self):
        base = theory.broadcast_round_bound(1000, 0.2)
        assert theory.clock_free_round_bound(1000, 0.2) == pytest.approx(base + math.log(1000) ** 2)

    def test_silent_wait_is_n_times_slower(self):
        assert theory.silent_wait_round_bound(100, 0.2) == pytest.approx(
            100 * theory.broadcast_round_bound(100, 0.2)
        )

    def test_two_party_channel_uses(self):
        assert theory.two_party_channel_uses(0.1) == pytest.approx(100.0)

    def test_majority_consensus_thresholds(self):
        assert theory.majority_consensus_min_set_size(1000, 0.2) == pytest.approx(
            math.log(1000) / 0.04
        )
        assert theory.majority_consensus_min_bias(100, 1000) == pytest.approx(
            math.sqrt(math.log(1000) / 100)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            theory.broadcast_round_bound(1, 0.2)
        with pytest.raises(ParameterError):
            theory.majority_consensus_min_bias(0, 100)


class TestHopDecay:
    def test_single_hop_bias_is_epsilon(self):
        assert theory.hop_bias(0.2, 1) == pytest.approx(0.2)

    def test_decay_factor_per_hop(self):
        for depth in range(1, 8):
            assert theory.hop_bias(0.2, depth + 1) == pytest.approx(0.4 * theory.hop_bias(0.2, depth))

    def test_correct_probability_approaches_half(self):
        assert theory.hop_correct_probability(0.1, 30) == pytest.approx(0.5, abs=1e-9)

    def test_depth_zero_is_perfect(self):
        assert theory.hop_correct_probability(0.2, 0) == 1.0

    def test_expected_relay_depth(self):
        assert theory.expected_relay_depth(1024) == pytest.approx(10.0)


class TestMajorityLemma:
    def test_lower_bound_regimes(self):
        assert theory.sample_majority_success_lower_bound(0.001) == pytest.approx(0.504)
        assert theory.sample_majority_success_lower_bound(0.2) == pytest.approx(0.51)

    def test_exact_probability_monotone_in_sample_quality(self):
        values = [theory.exact_majority_success_probability(21, p) for p in (0.5, 0.55, 0.6, 0.7, 0.9)]
        assert values == sorted(values)
        assert values[0] == pytest.approx(0.5)

    def test_exact_probability_monotone_in_gamma(self):
        small = theory.exact_majority_success_probability(11, 0.6)
        large = theory.exact_majority_success_probability(101, 0.6)
        assert large > small

    def test_exact_probability_even_gamma_ties_split(self):
        # For gamma=2 and p=0.5: P(majority correct) = P(2 correct) + 0.5 P(tie) = 0.25 + 0.25.
        assert theory.exact_majority_success_probability(2, 0.5) == pytest.approx(0.5)

    def test_extreme_probabilities(self):
        assert theory.exact_majority_success_probability(9, 1.0) == 1.0
        assert theory.exact_majority_success_probability(9, 0.0) == 0.0

    def test_stirling_bound_is_valid_lower_bound(self):
        # Claim 2.12: P(exactly r+i wrong among 2r+1 fair coins) > 1/(10 sqrt r) for i <= sqrt(r).
        for r in (4, 16, 64, 256):
            bound = theory.stirling_central_binomial_lower_bound(r)
            for i in (1, int(math.sqrt(r))):
                exact = binomial_pmf(r + i, 2 * r + 1, 0.5)
                assert exact > bound


class TestStageTwoRecursion:
    def test_amplifies_small_bias(self):
        # Well below the 1/800 cap the map multiplies by 1.7; near the cap it clips to it.
        assert theory.stage2_bias_recursion(0.0001) == pytest.approx(0.00017)
        assert theory.stage2_bias_recursion(0.001) == pytest.approx(1.0 / 800.0)

    def test_does_not_shrink_large_bias(self):
        assert theory.stage2_bias_recursion(0.2) >= 0.2

    def test_phases_needed(self):
        assert theory.stage2_phases_needed(1.0 / 800.0) == 0
        needed = theory.stage2_phases_needed(0.001, target_bias=1.0 / 800.0)
        assert needed == math.ceil(math.log((1 / 800) / 0.001) / math.log(1.7))

    def test_invalid_initial_bias(self):
        with pytest.raises(ParameterError):
            theory.stage2_phases_needed(0.0)
