"""Unit tests for repro.core.broadcast."""

import pytest

from repro.core.broadcast import NoisyBroadcastProtocol, solve_noisy_broadcast
from repro.core.parameters import ProtocolParameters
from repro.errors import SimulationError
from repro.substrate import SimulationEngine


@pytest.fixture(scope="module")
def small_result():
    """One shared small broadcast run (kept module-scoped for speed)."""
    return solve_noisy_broadcast(n=300, epsilon=0.3, seed=123)


class TestSolveNoisyBroadcast:
    def test_reaches_correct_consensus(self, small_result):
        assert small_result.success
        assert small_result.final_correct_fraction == 1.0
        assert small_result.n == 300
        assert small_result.epsilon == 0.3

    def test_complexity_accounting_is_consistent(self, small_result):
        assert small_result.rounds == small_result.stage1.rounds + small_result.stage2.rounds
        assert (
            small_result.messages_sent
            == small_result.stage1.messages_sent + small_result.stage2.messages_sent
        )
        assert small_result.bits_sent == small_result.messages_sent
        assert small_result.messages_per_agent == pytest.approx(small_result.messages_sent / 300)

    def test_rounds_match_parameter_schedule(self):
        parameters = ProtocolParameters.calibrated(300, 0.3)
        result = solve_noisy_broadcast(n=300, epsilon=0.3, seed=5, parameters=parameters)
        assert result.rounds == parameters.total_rounds

    def test_messages_bounded_by_agents_times_rounds(self, small_result):
        assert small_result.messages_sent <= 300 * small_result.rounds

    def test_reproducible_for_fixed_seed(self):
        first = solve_noisy_broadcast(n=200, epsilon=0.3, seed=77)
        second = solve_noisy_broadcast(n=200, epsilon=0.3, seed=77)
        assert first.rounds == second.rounds
        assert first.messages_sent == second.messages_sent
        assert first.stage1.final_bias == second.stage1.final_bias

    def test_different_seeds_differ(self):
        first = solve_noisy_broadcast(n=200, epsilon=0.3, seed=1)
        second = solve_noisy_broadcast(n=200, epsilon=0.3, seed=2)
        assert first.messages_sent != second.messages_sent or (
            first.stage1.final_bias != second.stage1.final_bias
        )

    def test_broadcast_of_opinion_zero(self):
        result = solve_noisy_broadcast(n=250, epsilon=0.3, seed=9, correct_opinion=0)
        assert result.success
        assert result.correct_opinion == 0

    def test_calibration_overrides_forwarded(self):
        result = solve_noisy_broadcast(n=250, epsilon=0.3, seed=3, extra_boost_phases=0, g0=1.0)
        smaller = result.rounds
        default = solve_noisy_broadcast(n=250, epsilon=0.3, seed=3).rounds
        assert smaller < default

    def test_time_series_recording(self):
        result = solve_noisy_broadcast(n=200, epsilon=0.3, seed=11, record_time_series=True)
        assert result.success


class TestNoisyBroadcastProtocol:
    def test_requires_source(self):
        parameters = ProtocolParameters.calibrated(100, 0.3)
        engine = SimulationEngine.create(n=100, epsilon=0.3, seed=1, source=None)
        with pytest.raises(SimulationError):
            NoisyBroadcastProtocol(parameters).run(engine)

    def test_rejects_mismatched_engine_size(self):
        parameters = ProtocolParameters.calibrated(100, 0.3)
        engine = SimulationEngine.create(n=200, epsilon=0.3, seed=1)
        with pytest.raises(SimulationError):
            NoisyBroadcastProtocol(parameters).run(engine)

    def test_stage_results_exposed(self, small_result):
        assert small_result.stage1.all_activated
        assert small_result.stage1.final_bias > 0
        assert small_result.stage2.consensus_reached
