"""Unit tests for repro.core.stage1 (the spreading stage)."""

import numpy as np
import pytest

from repro.core.parameters import StageOneParameters
from repro.core.stage1 import ReceptionAccumulator, execute_stage_one
from repro.errors import SimulationError
from repro.substrate import SimulationEngine
from repro.substrate.noise import PerfectChannel


def small_stage1_params():
    return StageOneParameters(beta_s=60, beta=20, beta_f=120, num_intermediate_phases=1)


class TestReceptionAccumulator:
    def test_counts_and_choice(self, rng):
        accumulator = ReceptionAccumulator(size=5)
        accumulator.observe(np.asarray([1, 2]), np.asarray([1, 0], dtype=np.int8), rng)
        accumulator.observe(np.asarray([1]), np.asarray([0], dtype=np.int8), rng)
        heard = accumulator.heard_anything()
        assert heard[1] and heard[2] and not heard[0]
        counts = accumulator.message_counts()
        assert counts[1] == 2 and counts[2] == 1
        # Agent 2 heard a single 0 message, so its choice is forced.
        assert accumulator.chosen_bits(np.asarray([2]))[0] == 0

    def test_choice_is_uniform_over_heard_messages(self, rng):
        """Reservoir sampling picks each of k messages with probability 1/k."""
        picks = []
        for _ in range(4000):
            accumulator = ReceptionAccumulator(size=1)
            accumulator.observe(np.asarray([0]), np.asarray([1], dtype=np.int8), rng)
            accumulator.observe(np.asarray([0]), np.asarray([0], dtype=np.int8), rng)
            accumulator.observe(np.asarray([0]), np.asarray([0], dtype=np.int8), rng)
            picks.append(int(accumulator.chosen_bits(np.asarray([0]))[0]))
        assert np.mean(picks) == pytest.approx(1 / 3, abs=0.03)

    def test_chosen_bits_for_silent_agent_raises(self, rng):
        accumulator = ReceptionAccumulator(size=3)
        with pytest.raises(SimulationError):
            accumulator.chosen_bits(np.asarray([0]))

    def test_reset(self, rng):
        accumulator = ReceptionAccumulator(size=2)
        accumulator.observe(np.asarray([0]), np.asarray([1], dtype=np.int8), rng)
        accumulator.reset()
        assert not accumulator.heard_anything().any()


class TestExecuteStageOne:
    def test_requires_an_opinionated_agent(self):
        engine = SimulationEngine.create(n=50, epsilon=0.25, seed=3)
        with pytest.raises(SimulationError):
            execute_stage_one(engine, small_stage1_params(), correct_opinion=1)

    def test_round_and_phase_accounting(self):
        engine = SimulationEngine.create(n=300, epsilon=0.25, seed=3)
        engine.population.set_source_opinion(1)
        params = small_stage1_params()
        result = execute_stage_one(engine, params, correct_opinion=1)
        assert result.rounds == params.total_rounds == engine.now
        assert [summary.phase for summary in result.phases] == [0, 1, 2]
        assert [summary.rounds for summary in result.phases] == [60, 20, 120]
        assert result.messages_sent == engine.metrics.messages_sent
        assert len(engine.metrics.phases_for("stage1")) == 3

    def test_phase0_only_source_speaks(self):
        engine = SimulationEngine.create(n=300, epsilon=0.25, seed=7)
        engine.population.set_source_opinion(1)
        result = execute_stage_one(engine, small_stage1_params(), correct_opinion=1)
        phase0 = result.phase(0)
        assert phase0.senders == 1
        assert phase0.messages_sent == 60
        # Source cannot activate more agents than it sent messages.
        assert phase0.newly_activated <= 60

    def test_activation_grows_and_covers_population(self):
        engine = SimulationEngine.create(n=300, epsilon=0.25, seed=11)
        engine.population.set_source_opinion(1)
        result = execute_stage_one(engine, small_stage1_params(), correct_opinion=1)
        totals = [summary.activated_total for summary in result.phases]
        assert totals == sorted(totals)
        assert result.all_activated
        assert engine.population.num_opinionated() == 300

    def test_noiseless_channel_gives_perfect_bias(self):
        engine = SimulationEngine.create(
            n=300, epsilon=0.5, seed=13, channel=PerfectChannel()
        )
        engine.population.set_source_opinion(1)
        result = execute_stage_one(engine, small_stage1_params(), correct_opinion=1)
        assert result.final_bias == pytest.approx(0.5)
        assert result.initially_correct == 300

    def test_noisy_channel_keeps_positive_bias(self):
        engine = SimulationEngine.create(n=400, epsilon=0.3, seed=17)
        engine.population.set_source_opinion(1)
        result = execute_stage_one(engine, small_stage1_params(), correct_opinion=1)
        assert 0.0 < result.final_bias < 0.5

    def test_symmetry_between_opinions(self):
        """The message pattern must not depend on which opinion is correct (Section 1.3.4)."""

        def run(correct_opinion):
            engine = SimulationEngine.create(n=200, epsilon=0.3, seed=23)
            engine.population.set_source_opinion(correct_opinion)
            result = execute_stage_one(engine, small_stage1_params(), correct_opinion=correct_opinion)
            return result.messages_sent, [s.activated_total for s in result.phases], result.final_bias

        messages_one, totals_one, bias_one = run(1)
        messages_zero, totals_zero, bias_zero = run(0)
        assert messages_one == messages_zero
        assert totals_one == totals_zero
        assert bias_one == pytest.approx(bias_zero)

    def test_start_phase_with_seeded_set(self):
        engine = SimulationEngine.create(n=300, epsilon=0.25, seed=29, source=None)
        members = np.arange(40)
        opinions = np.asarray([1] * 30 + [0] * 10, dtype=np.int8)
        engine.population.seed_opinionated_set(members, opinions, phase=0)
        params = small_stage1_params()
        result = execute_stage_one(engine, params, correct_opinion=1, start_phase=1)
        assert [summary.phase for summary in result.phases] == [1, 2]
        assert result.rounds == params.phase_length(1) + params.phase_length(2)
        assert result.all_activated

    def test_dormant_agents_never_send(self):
        """In every phase the number of senders equals the agents activated before it."""
        engine = SimulationEngine.create(n=300, epsilon=0.25, seed=31)
        engine.population.set_source_opinion(1)
        result = execute_stage_one(engine, small_stage1_params(), correct_opinion=1)
        previous_total = 1
        for summary in result.phases:
            assert summary.senders == previous_total
            previous_total = summary.activated_total
