"""Unit tests for repro.core.stage2 (the boosting stage)."""

import numpy as np
import pytest

from repro.core.majority import MajorityInstance
from repro.core.parameters import StageTwoParameters
from repro.core.stage2 import SampleAccumulator, execute_stage_two, majority_of_random_subset
from repro.substrate import SimulationEngine
from repro.substrate.noise import PerfectChannel


def small_stage2_params():
    return StageTwoParameters(gamma=15, num_boost_phases=4, final_phase_rounds=160)


def seeded_engine(n=400, epsilon=0.25, seed=1, bias=0.15, channel=None):
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed, source=None, channel=channel)
    instance = MajorityInstance.generate(
        n=n, size=n, bias=bias, majority_opinion=1, rng=engine.random.stream("seeding")
    )
    engine.population.seed_opinionated_set(instance.members, instance.opinions)
    return engine


class TestSampleAccumulator:
    def test_observe_and_reset(self):
        accumulator = SampleAccumulator(size=4)
        accumulator.observe(np.asarray([0, 1]), np.asarray([1, 0], dtype=np.int8))
        accumulator.observe(np.asarray([0]), np.asarray([1], dtype=np.int8))
        assert accumulator.totals[0] == 2 and accumulator.ones[0] == 2
        assert accumulator.totals[1] == 1 and accumulator.ones[1] == 0
        accumulator.reset()
        assert accumulator.totals.sum() == 0

    def test_empty_observation_is_noop(self):
        accumulator = SampleAccumulator(size=2)
        accumulator.observe(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int8))
        assert accumulator.totals.sum() == 0


class TestMajorityOfRandomSubset:
    def test_unanimous_samples(self, rng):
        totals = np.asarray([10, 10])
        ones = np.asarray([10, 0])
        result = majority_of_random_subset(totals, ones, subset_size=5, rng=rng)
        np.testing.assert_array_equal(result, [1, 0])

    def test_empty_input(self, rng):
        assert majority_of_random_subset(np.asarray([]), np.asarray([]), 3, rng).size == 0

    def test_odd_subset_never_ties_and_tracks_majority(self, rng):
        # 7 ones out of 10 samples, subsets of size 5: majority is 1 most of the time.
        totals = np.full(4000, 10)
        ones = np.full(4000, 7)
        results = majority_of_random_subset(totals, ones, subset_size=5, rng=rng)
        assert results.mean() > 0.75

    def test_even_subset_ties_broken_fairly(self, rng):
        # Exactly half ones: subsets of size 2 tie often; outcomes must stay balanced.
        totals = np.full(6000, 2)
        ones = np.full(6000, 1)
        results = majority_of_random_subset(totals, ones, subset_size=2, rng=rng)
        assert results.mean() == pytest.approx(0.5, abs=0.05)


class TestExecuteStageTwo:
    def test_round_and_phase_accounting(self):
        engine = seeded_engine(seed=5)
        params = small_stage2_params()
        result = execute_stage_two(engine, params, correct_opinion=1)
        assert result.rounds == params.total_rounds == engine.now
        assert [summary.phase for summary in result.phases] == [1, 2, 3, 4, 5]
        assert result.messages_sent == engine.metrics.messages_sent
        assert len(engine.metrics.phases_for("stage2")) == 5

    def test_boosts_bias_to_consensus(self):
        engine = seeded_engine(seed=7, bias=0.15)
        result = execute_stage_two(engine, small_stage2_params(), correct_opinion=1)
        assert result.consensus_reached
        assert result.final_correct_fraction == 1.0
        biases = [summary.bias_after for summary in result.phases]
        assert biases[-1] == pytest.approx(0.5)

    def test_strong_minority_start_converges_to_majority(self):
        """Starting from a clear majority of 0s, the population converges to 0 (symmetry)."""
        engine = seeded_engine(seed=9, bias=0.15)
        # The instance above is biased towards opinion 1; measure against 0 and
        # confirm the bias is negative and consensus settles on 1 (i.e. not 0).
        result = execute_stage_two(engine, small_stage2_params(), correct_opinion=0)
        assert result.final_bias == pytest.approx(-0.5)
        assert not result.consensus_reached

    def test_most_agents_successful_each_phase(self):
        engine = seeded_engine(seed=11)
        result = execute_stage_two(engine, small_stage2_params(), correct_opinion=1)
        for summary in result.phases:
            # Claim 2.9: at least n/2 successful agents per phase, w.h.p.
            assert summary.successful_agents >= engine.n / 2

    def test_noiseless_channel_converges_fast(self):
        engine = seeded_engine(seed=13, epsilon=0.5, channel=PerfectChannel(), bias=0.1)
        params = StageTwoParameters(gamma=9, num_boost_phases=3, final_phase_rounds=40)
        result = execute_stage_two(engine, params, correct_opinion=1)
        assert result.consensus_reached

    def test_unopinionated_population_gets_opinions_from_samples(self):
        """Agents without an opinion listen, and successful ones adopt the sample majority."""
        engine = SimulationEngine.create(n=200, epsilon=0.3, seed=17, source=None)
        members = np.arange(100)
        opinions = np.asarray([1] * 80 + [0] * 20, dtype=np.int8)
        engine.population.seed_opinionated_set(members, opinions)
        result = execute_stage_two(engine, small_stage2_params(), correct_opinion=1)
        assert engine.population.num_opinionated() == 200
        assert result.final_correct_fraction > 0.9

    def test_opinions_fixed_within_a_phase(self):
        """Messages sent during a phase carry the phase-start opinion (one update per phase)."""
        engine = seeded_engine(seed=19)
        params = StageTwoParameters(gamma=15, num_boost_phases=1, final_phase_rounds=30)
        before = engine.population.opinions.copy()
        result = execute_stage_two(engine, params, correct_opinion=1)
        # Opinions can only have been rewritten at the two phase boundaries, so the
        # number of distinct opinion vectors observed is at most phases + 1; here we
        # simply check the phase summaries expose exactly one bias change per phase.
        assert len(result.phases) == 2
        assert result.phases[0].bias_before == pytest.approx(
            (np.count_nonzero(before == 1) - np.count_nonzero(before == 0)) / (2 * engine.n)
        )
