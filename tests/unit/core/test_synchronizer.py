"""Unit tests for repro.core.synchronizer (Section 3: removing the global clock)."""

import numpy as np
import pytest

from repro.core.parameters import ProtocolParameters, StageOneParameters, StageTwoParameters
from repro.core.schedule import build_stage1_schedule
from repro.core.synchronizer import (
    ClockFreeBroadcastProtocol,
    default_guard,
    execute_stage_one_windowed,
    execute_stage_two_windowed,
    run_activation_phase,
    run_clock_free_broadcast,
    run_with_bounded_skew,
)
from repro.errors import ParameterError, SimulationError
from repro.substrate import SimulationEngine


def small_parameters(n=250, epsilon=0.3):
    return ProtocolParameters.calibrated(n, epsilon)


class TestDefaultGuard:
    def test_matches_two_log_n(self):
        assert default_guard(1024) == 20
        assert default_guard(1000) == 20

    def test_invalid_n(self):
        with pytest.raises(ParameterError):
            default_guard(1)


class TestActivationPhase:
    def test_informs_everyone_and_bounds_skew(self):
        engine = SimulationEngine.create(n=400, epsilon=0.3, seed=21)
        result = run_activation_phase(engine)
        assert result.all_informed
        assert result.offsets.shape == (400,)
        # The skew is bounded by the broadcast duration (2 log2 n), w.h.p.
        assert result.skew <= default_guard(400)
        # The source is the earliest agent to reset its clock.
        assert result.offsets[0] == result.offsets.min()

    def test_does_not_touch_protocol_state(self):
        engine = SimulationEngine.create(n=200, epsilon=0.3, seed=22)
        run_activation_phase(engine)
        assert engine.population.num_opinionated() == 0
        assert engine.population.num_activated() == 1  # just the source

    def test_requires_informed_agent(self):
        engine = SimulationEngine.create(n=100, epsilon=0.3, seed=23, source=None)
        with pytest.raises(SimulationError):
            run_activation_phase(engine)

    def test_explicit_initial_set(self):
        engine = SimulationEngine.create(n=200, epsilon=0.3, seed=24, source=None)
        result = run_activation_phase(engine, initially_informed=np.asarray([5, 9]))
        assert result.all_informed

    def test_invalid_durations(self):
        engine = SimulationEngine.create(n=100, epsilon=0.3, seed=25)
        with pytest.raises(ParameterError):
            run_activation_phase(engine, broadcast_duration=10, reset_delay=5)

    def test_message_count_bounded_by_n_times_duration(self):
        engine = SimulationEngine.create(n=300, epsilon=0.3, seed=26)
        duration = default_guard(300)
        result = run_activation_phase(engine, broadcast_duration=duration)
        assert result.messages_sent <= 300 * duration


class TestWindowedExecutors:
    def test_zero_skew_windowed_stage1_matches_synchronous_schedule(self):
        """With identical offsets the windowed executor behaves like the synchronous one."""
        stage1 = StageOneParameters(beta_s=40, beta=10, beta_f=80, num_intermediate_phases=1)
        engine = SimulationEngine.create(n=250, epsilon=0.3, seed=31)
        engine.population.set_source_opinion(1)
        offsets = np.zeros(250, dtype=np.int64)
        result = execute_stage_one_windowed(
            engine, stage1, correct_opinion=1, offsets=offsets, guard=0,
            schedule=build_stage1_schedule(stage1),
        )
        assert result.all_activated
        assert result.rounds == stage1.total_rounds
        assert result.final_bias > 0

    def test_windowed_stage1_with_skew_still_activates_everyone(self):
        stage1 = StageOneParameters(beta_s=40, beta=10, beta_f=80, num_intermediate_phases=1)
        engine = SimulationEngine.create(n=250, epsilon=0.3, seed=32)
        engine.population.set_source_opinion(1)
        skew = 12
        offsets = engine.random.stream("skew").integers(0, skew, size=250).astype(np.int64)
        result = execute_stage_one_windowed(
            engine, stage1, correct_opinion=1, offsets=offsets, guard=skew
        )
        assert result.all_activated
        # Guard gaps cost extra rounds on top of the base schedule.
        assert result.rounds >= stage1.total_rounds

    def test_guard_smaller_than_skew_rejected(self):
        stage1 = StageOneParameters(beta_s=10, beta=5, beta_f=10, num_intermediate_phases=0)
        engine = SimulationEngine.create(n=100, epsilon=0.3, seed=33)
        engine.population.set_source_opinion(1)
        offsets = np.zeros(100, dtype=np.int64)
        offsets[5] = 30
        with pytest.raises(ParameterError):
            execute_stage_one_windowed(engine, stage1, 1, offsets=offsets, guard=10)

    def test_windowed_stage2_boosts_bias(self):
        stage2 = StageTwoParameters(gamma=15, num_boost_phases=3, final_phase_rounds=120)
        engine = SimulationEngine.create(n=250, epsilon=0.3, seed=34, source=None)
        members = np.arange(250)
        opinions = np.asarray([1] * 160 + [0] * 90, dtype=np.int8)
        engine.population.seed_opinionated_set(members, opinions)
        skew = 9
        offsets = engine.random.stream("skew").integers(0, skew, size=250).astype(np.int64)
        result = execute_stage_two_windowed(
            engine, stage2, correct_opinion=1, offsets=offsets, guard=skew
        )
        assert result.final_correct_fraction > 0.95

    def test_offsets_shape_validated(self):
        stage1 = StageOneParameters(beta_s=10, beta=5, beta_f=10, num_intermediate_phases=0)
        engine = SimulationEngine.create(n=100, epsilon=0.3, seed=35)
        engine.population.set_source_opinion(1)
        with pytest.raises(ParameterError):
            execute_stage_one_windowed(engine, stage1, 1, offsets=np.zeros(5), guard=10)


class TestClockFreeProtocol:
    def test_full_run_reaches_consensus(self):
        result = run_clock_free_broadcast(n=250, epsilon=0.3, seed=41)
        assert result.success
        assert result.final_correct_fraction == 1.0
        assert result.activation is not None
        assert result.guard >= result.activation.skew

    def test_overhead_is_additive_and_bounded(self):
        parameters = small_parameters()
        clock_free = run_clock_free_broadcast(n=250, epsilon=0.3, seed=42, parameters=parameters)
        num_phases = parameters.stage1.num_phases + parameters.stage2.num_phases
        # Guards + window extensions + activation: at most ~3 guard-lengths per phase.
        assert clock_free.rounds <= parameters.total_rounds + 3 * clock_free.guard * (num_phases + 2)
        assert clock_free.rounds > parameters.total_rounds

    def test_bounded_skew_variant(self):
        result = run_with_bounded_skew(n=250, epsilon=0.3, max_skew=16, seed=43)
        assert result.success
        assert result.guard == 16
        assert result.activation is None

    def test_bounded_skew_validation(self):
        with pytest.raises(ParameterError):
            run_with_bounded_skew(n=100, epsilon=0.3, max_skew=0, seed=1)

    def test_protocol_requires_source(self):
        parameters = small_parameters(100)
        engine = SimulationEngine.create(n=100, epsilon=0.3, seed=44, source=None)
        with pytest.raises(SimulationError):
            ClockFreeBroadcastProtocol(parameters).run(engine)
