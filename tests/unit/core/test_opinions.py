"""Unit tests for repro.core.opinions."""

import numpy as np
import pytest

from repro.core.opinions import (
    bias_from_counts,
    bias_to_fraction,
    correct_probability_after_noise,
    counts_from_bias,
    fraction_to_bias,
    majority_from_counts,
    majority_opinion,
    opposite,
    validate_opinion,
)
from repro.errors import ParameterError


class TestBasics:
    def test_validate_opinion(self):
        assert validate_opinion(0) == 0
        assert validate_opinion(1) == 1
        with pytest.raises(ParameterError):
            validate_opinion(2)

    def test_opposite(self):
        assert opposite(0) == 1
        assert opposite(1) == 0


class TestMajority:
    def test_clear_majorities(self):
        assert majority_opinion([1, 1, 0]) == 1
        assert majority_opinion([0, 0, 1]) == 0
        assert majority_from_counts(zeros=5, ones=2) == 0

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            majority_opinion([])

    def test_tie_needs_rng(self):
        with pytest.raises(ParameterError):
            majority_from_counts(zeros=2, ones=2)

    def test_tie_break_is_roughly_fair(self, rng):
        outcomes = [majority_from_counts(3, 3, rng=rng) for _ in range(2000)]
        assert np.mean(outcomes) == pytest.approx(0.5, abs=0.05)

    def test_accepts_numpy_array(self):
        assert majority_opinion(np.asarray([1, 1, 1, 0])) == 1


class TestBiasAlgebra:
    def test_bias_from_counts(self):
        assert bias_from_counts(6, 4) == pytest.approx(0.1)
        assert bias_from_counts(4, 6) == pytest.approx(-0.1)
        assert bias_from_counts(0, 0) == 0.0

    def test_bias_matches_fraction_advantage(self):
        # The paper's majority-bias (A_B - A_notB)/(2|A|) equals the fraction
        # of correct agents minus 1/2 — the identity used throughout Section 2.
        correct, wrong = 70, 30
        assert bias_from_counts(correct, wrong) == pytest.approx(correct / 100 - 0.5)

    def test_counts_from_bias_round_trip(self):
        for total in (10, 33, 100):
            for bias in (0.0, 0.05, 0.2, 0.5):
                correct, wrong = counts_from_bias(total, bias)
                assert correct + wrong == total
                assert bias_from_counts(correct, wrong) >= bias - 1e-9 or correct == total

    def test_counts_from_bias_validation(self):
        with pytest.raises(ParameterError):
            counts_from_bias(10, 0.7)

    def test_fraction_conversions(self):
        assert fraction_to_bias(0.62) == pytest.approx(0.12)
        assert bias_to_fraction(0.12) == pytest.approx(0.62)


class TestNoiseIdentity:
    def test_matches_paper_formula(self):
        # (1/2+delta)(1/2+eps) + (1/2-delta)(1/2-eps) = 1/2 + 2 eps delta
        for delta in (0.0, 0.01, 0.1, 0.5):
            for eps in (0.05, 0.2, 0.5):
                direct = (0.5 + delta) * (0.5 + eps) + (0.5 - delta) * (0.5 - eps)
                assert correct_probability_after_noise(delta, eps) == pytest.approx(direct)

    def test_noiseless_channel_preserves_bias(self):
        assert correct_probability_after_noise(0.3, 0.5) == pytest.approx(0.8)

    def test_zero_bias_gives_coin_flip(self):
        assert correct_probability_after_noise(0.0, 0.2) == 0.5
