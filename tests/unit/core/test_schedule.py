"""Unit tests for repro.core.schedule."""

import pytest

from repro.core.parameters import StageOneParameters, StageTwoParameters
from repro.core.schedule import (
    PhaseInterval,
    PhaseSchedule,
    build_stage1_schedule,
    build_stage2_schedule,
)
from repro.errors import ParameterError, ScheduleError


@pytest.fixture
def stage1_params():
    return StageOneParameters(beta_s=20, beta=5, beta_f=30, num_intermediate_phases=2)


@pytest.fixture
def stage2_params():
    return StageTwoParameters(gamma=7, num_boost_phases=3, final_phase_rounds=40)


class TestPhaseInterval:
    def test_length_and_contains(self):
        interval = PhaseInterval(index=1, start=5, end=9)
        assert interval.length == 4
        assert interval.contains(5) and interval.contains(8)
        assert not interval.contains(9) and not interval.contains(4)

    def test_shifted(self):
        assert PhaseInterval(0, 2, 4).shifted(10) == PhaseInterval(0, 12, 14)

    def test_empty_interval_rejected(self):
        with pytest.raises(ScheduleError):
            PhaseInterval(index=0, start=5, end=5)


class TestStage1Schedule:
    def test_matches_paper_intervals(self, stage1_params):
        schedule = build_stage1_schedule(stage1_params)
        # Paper Section 2.1.2: phase 0 = [0, beta_s), phase i = [beta_s+(i-1)beta, beta_s+i beta),
        # phase T+1 = [beta_s+T beta, beta_s+T beta+beta_f).
        assert [(p.index, p.start, p.end) for p in schedule] == [
            (0, 0, 20),
            (1, 20, 25),
            (2, 25, 30),
            (3, 30, 60),
        ]
        assert schedule.total_rounds == stage1_params.total_rounds

    def test_start_round_offset(self, stage1_params):
        schedule = build_stage1_schedule(stage1_params, start_round=100)
        assert schedule.start == 100
        assert schedule.end == 100 + stage1_params.total_rounds

    def test_start_phase_skips_early_phases(self, stage1_params):
        schedule = build_stage1_schedule(stage1_params, start_phase=2)
        assert [phase.index for phase in schedule] == [2, 3]
        assert schedule.total_rounds == 5 + 30

    def test_invalid_start_phase(self, stage1_params):
        with pytest.raises(ParameterError):
            build_stage1_schedule(stage1_params, start_phase=4)

    def test_phase_at(self, stage1_params):
        schedule = build_stage1_schedule(stage1_params)
        assert schedule.phase_at(0).index == 0
        assert schedule.phase_at(22).index == 1
        assert schedule.phase_at(59).index == 3
        with pytest.raises(ScheduleError):
            schedule.phase_at(60)


class TestStage2Schedule:
    def test_phases_are_one_based_and_contiguous(self, stage2_params):
        schedule = build_stage2_schedule(stage2_params, start_round=7)
        assert [phase.index for phase in schedule] == [1, 2, 3, 4]
        assert schedule.start == 7
        assert all(
            later.start == earlier.end for earlier, later in zip(schedule.phases, schedule.phases[1:])
        )
        assert schedule.phases[-1].length == 40


class TestDilation:
    def test_dilated_inserts_guards(self, stage1_params):
        schedule = build_stage1_schedule(stage1_params)
        dilated = schedule.dilated(guard=10)
        assert len(dilated) == len(schedule)
        for original, shifted in zip(schedule, dilated):
            assert shifted.length == original.length
            assert shifted.index == original.index
        # Consecutive dilated phases are separated by exactly the guard.
        for earlier, later in zip(dilated.phases, dilated.phases[1:]):
            assert later.start - earlier.end == 10
        # Every phase is pushed back by one extra guard window.
        assert dilated.end == schedule.end + 10 * len(schedule)

    def test_zero_guard_returns_same_schedule(self, stage1_params):
        schedule = build_stage1_schedule(stage1_params)
        assert schedule.dilated(0) is schedule

    def test_negative_guard_rejected(self, stage1_params):
        with pytest.raises(ParameterError):
            build_stage1_schedule(stage1_params).dilated(-1)


class TestScheduleValidation:
    def test_overlapping_phases_rejected(self):
        with pytest.raises(ScheduleError):
            PhaseSchedule(stage="x", phases=(PhaseInterval(0, 0, 10), PhaseInterval(1, 5, 15)))

    def test_gaps_are_allowed(self):
        schedule = PhaseSchedule(stage="x", phases=(PhaseInterval(0, 0, 10), PhaseInterval(1, 20, 30)))
        assert schedule.total_rounds == 30

    def test_empty_schedule_rejected(self):
        with pytest.raises(ScheduleError):
            PhaseSchedule(stage="x", phases=())
