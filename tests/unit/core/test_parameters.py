"""Unit tests for repro.core.parameters."""

import math

import pytest

from repro.core.parameters import (
    ProtocolParameters,
    StageOneParameters,
    StageTwoParameters,
    compute_num_intermediate_phases,
    initial_bias_target,
    minimum_epsilon,
)
from repro.errors import ParameterError


class TestHelpers:
    def test_minimum_epsilon_decreases_with_n(self):
        assert minimum_epsilon(100) > minimum_epsilon(10_000)

    def test_minimum_epsilon_matches_formula(self):
        assert minimum_epsilon(10_000, eta=0.05) == pytest.approx(10_000 ** (-0.45))

    def test_initial_bias_target(self):
        assert initial_bias_target(1000) == pytest.approx(math.sqrt(math.log(1000) / 1000))

    def test_compute_T_respects_paper_bound(self):
        # beta_s * (beta+1)^T <= n/2 must hold for the returned T.
        for n in (1_000, 50_000, 1_000_000):
            for beta_s, beta in ((50, 10), (200, 30), (20, 4)):
                T = compute_num_intermediate_phases(n, beta_s, beta)
                assert beta_s * (beta + 1) ** T <= n / 2 or T == 0
                # T+1 would violate the bound (maximality), unless T is 0 anyway.
                if T > 0:
                    assert beta_s * (beta + 1) ** (T + 1) > n / 2

    def test_compute_T_small_population(self):
        assert compute_num_intermediate_phases(100, beta_s=100, beta=10) == 0


class TestStageOneParameters:
    def test_phase_lengths(self):
        stage1 = StageOneParameters(beta_s=100, beta=10, beta_f=200, num_intermediate_phases=3)
        assert stage1.num_phases == 5
        assert stage1.phase_length(0) == 100
        assert stage1.phase_length(1) == stage1.phase_length(3) == 10
        assert stage1.phase_length(4) == 200
        assert stage1.total_rounds == 100 + 3 * 10 + 200

    def test_phase_out_of_range(self):
        stage1 = StageOneParameters(beta_s=10, beta=5, beta_f=10, num_intermediate_phases=0)
        with pytest.raises(ParameterError):
            stage1.phase_length(2)

    def test_invalid_values_rejected(self):
        with pytest.raises(ParameterError):
            StageOneParameters(beta_s=0, beta=1, beta_f=1, num_intermediate_phases=0)
        with pytest.raises(ParameterError):
            StageOneParameters(beta_s=1, beta=1, beta_f=1, num_intermediate_phases=-1)


class TestStageTwoParameters:
    def test_derived_quantities(self):
        stage2 = StageTwoParameters(gamma=21, num_boost_phases=4, final_phase_rounds=100)
        assert stage2.r == 10
        assert stage2.boost_phase_rounds == 42
        assert stage2.num_phases == 5
        assert stage2.phase_length(1) == 42
        assert stage2.phase_length(5) == 100
        assert stage2.total_rounds == 4 * 42 + 100

    def test_gamma_must_be_odd(self):
        with pytest.raises(ParameterError):
            StageTwoParameters(gamma=20, num_boost_phases=1, final_phase_rounds=10)

    def test_phase_out_of_range(self):
        stage2 = StageTwoParameters(gamma=5, num_boost_phases=1, final_phase_rounds=10)
        with pytest.raises(ParameterError):
            stage2.phase_length(0)
        with pytest.raises(ParameterError):
            stage2.phase_length(3)


class TestCalibratedPreset:
    def test_functional_forms(self):
        params = ProtocolParameters.calibrated(4000, 0.2, s0=2.0, b0=3.0)
        assert params.stage1.beta_s == max(8, math.ceil(2.0 * math.log(4000) / 0.04))
        assert params.stage1.beta == math.ceil(3.0 / 0.04)
        assert params.stage2.gamma % 2 == 1

    def test_rounds_scale_with_inverse_eps_squared(self):
        low_noise = ProtocolParameters.calibrated(2000, 0.4)
        high_noise = ProtocolParameters.calibrated(2000, 0.1)
        ratio = high_noise.total_rounds / low_noise.total_rounds
        assert 8 <= ratio <= 24, "rounds should grow roughly like 1/eps^2 (16x from 0.4 to 0.1)"

    def test_rounds_scale_logarithmically_with_n(self):
        small = ProtocolParameters.calibrated(500, 0.25)
        large = ProtocolParameters.calibrated(50_000, 0.25)
        ratio = large.total_rounds / small.total_rounds
        assert ratio < 3.5, "a 100x larger population should cost well under 4x the rounds"

    def test_epsilon_bound_enforced(self):
        with pytest.raises(ParameterError):
            ProtocolParameters.calibrated(100, 0.01)
        # ... unless explicitly disabled.
        params = ProtocolParameters.calibrated(100, 0.01, enforce_epsilon_bound=False)
        assert params.epsilon == 0.01

    def test_beta_override(self):
        params = ProtocolParameters.calibrated(8000, 0.3, beta_override=8)
        assert params.stage1.beta == 8
        assert params.stage1.num_intermediate_phases >= 1

    def test_message_upper_bound(self):
        params = ProtocolParameters.calibrated(1000, 0.25)
        assert params.message_upper_bound == 1000 * params.total_rounds

    def test_with_stage_replacements(self):
        params = ProtocolParameters.calibrated(1000, 0.25)
        modified = params.with_stage1(beta_s=50).with_stage2(num_boost_phases=2)
        assert modified.stage1.beta_s == 50
        assert modified.stage2.num_boost_phases == 2
        # The original is untouched (immutability).
        assert params.stage1.beta_s != 50

    def test_describe_is_serialisable(self):
        description = ProtocolParameters.calibrated(1000, 0.25).describe()
        assert description["n"] == 1000
        assert description["total_rounds"] == (
            description["stage1"]["rounds"] + description["stage2"]["rounds"]
        )


class TestPaperPreset:
    def test_paper_constants_are_much_larger(self):
        paper = ProtocolParameters.paper(10_000, 0.1)
        calibrated = ProtocolParameters.calibrated(10_000, 0.1)
        assert paper.stage2.gamma > 100 * calibrated.stage2.gamma
        assert paper.stage1.beta_s > 10 * calibrated.stage1.beta_s

    def test_paper_r_formula(self):
        paper = ProtocolParameters.paper(1000, 0.25)
        assert paper.stage2.r == math.ceil(2**22 / 0.0625)

    def test_invalid_n(self):
        with pytest.raises(ParameterError):
            ProtocolParameters.calibrated(2, 0.25)
