"""In-suite import lint: no unused imports anywhere in the repository.

CI runs ``ruff check`` (see ``.github/workflows/ci.yml`` and ``.ruff.toml``)
with the pyflakes import rules; this test is the dependency-free tier-1
mirror of the F401 rule, so an unused import fails ``pytest tests`` locally
even where ruff is not installed.  The checker deliberately
*over-approximates* usage (any name occurrence, attribute roots, tokens
inside string constants — which covers ``__all__`` re-export lists, string
annotations and doctests), so everything it flags is a genuine dead import.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Tuple

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SCANNED_TREES = ("src", "tests", "benchmarks", "examples")


def _imported_names(tree: ast.AST) -> List[Tuple[int, str]]:
    """Every binding introduced by an import statement, with its line."""
    names: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.append((node.lineno, (alias.asname or alias.name).split(".")[0]))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.append((node.lineno, alias.asname or alias.name))
    return names


def _used_names(tree: ast.AST) -> set:
    """Over-approximated set of used names (see the module docstring)."""
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            for token in (
                node.value.replace("[", " ").replace("]", " ").replace("(", " ")
                .replace(")", " ").replace(",", " ").replace(".", " ").split()
            ):
                used.add(token.strip("\"'`"))
    return used


def unused_imports(path: Path) -> List[str]:
    """``file:line: name`` for every import the module never references."""
    tree = ast.parse(path.read_text(), filename=str(path))
    used = _used_names(tree)
    try:
        label = path.relative_to(REPO_ROOT)
    except ValueError:
        label = path.name
    return [
        f"{label}:{lineno}: unused import {name!r}"
        for lineno, name in _imported_names(tree)
        if name not in used
    ]


def _python_files() -> List[Path]:
    files: List[Path] = []
    for tree in SCANNED_TREES:
        files.extend(sorted((REPO_ROOT / tree).rglob("*.py")))
    assert files, "lint scan found no Python files — wrong repository layout?"
    return files


@pytest.mark.parametrize("path", _python_files(), ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_no_unused_imports(path):
    issues = unused_imports(path)
    assert not issues, "\n".join(issues)


def test_checker_detects_a_planted_unused_import(tmp_path):
    """Self-test: the scanner is actually capable of flagging dead imports."""
    planted = tmp_path / "planted.py"
    planted.write_text("import os\nimport sys\n\nprint(sys.argv)\n")
    issues = unused_imports(planted)
    assert len(issues) == 1 and "'os'" in issues[0]


def test_checker_respects_reexports_and_string_annotations(tmp_path):
    """__all__ re-exports, string annotations and attribute roots count as use."""
    clean = tmp_path / "clean.py"
    clean.write_text(
        "from typing import Optional\n"
        "import math\n"
        "from collections import OrderedDict\n"
        "__all__ = ['OrderedDict']\n"
        "def f(x: 'Optional[int]'):\n"
        "    return math.sqrt(2)\n"
    )
    assert unused_imports(clean) == []
