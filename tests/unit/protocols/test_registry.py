"""Unit tests for repro.protocols.registry and the shared result type."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.protocols import (
    BaselineProtocol,
    ImmediateForwardingBroadcast,
    available_protocols,
    consensus_round,
    make_protocol,
    register_protocol,
)
from repro.protocols.registry import _FACTORIES


class TestRegistry:
    def test_all_builtin_protocols_registered(self):
        names = available_protocols()
        assert "immediate-forwarding" in names
        assert "silent-wait" in names
        assert "direct-source-reference" in names
        assert "noisy-voter" in names
        assert "two-choices-majority" in names
        assert "three-state-majority" in names

    def test_make_protocol_returns_fresh_instances(self):
        first = make_protocol("immediate-forwarding")
        second = make_protocol("immediate-forwarding")
        assert isinstance(first, ImmediateForwardingBroadcast)
        assert first is not second

    def test_unknown_name_rejected_with_suggestions(self):
        with pytest.raises(ConfigurationError, match="available"):
            make_protocol("no-such-protocol")

    def test_register_custom_protocol(self):
        class Dummy(ImmediateForwardingBroadcast):
            name = "dummy-protocol"

        try:
            register_protocol("dummy-protocol", Dummy)
            assert isinstance(make_protocol("dummy-protocol"), Dummy)
            with pytest.raises(ConfigurationError):
                register_protocol("dummy-protocol", Dummy)
        finally:
            _FACTORIES.pop("dummy-protocol", None)

    def test_every_registered_factory_builds_a_baseline_protocol(self):
        for name in available_protocols():
            assert isinstance(make_protocol(name), BaselineProtocol)


class TestConsensusRound:
    def test_finds_first_hit(self):
        series = np.asarray([0.2, 0.5, 0.99, 1.0, 1.0])
        assert consensus_round(series) == 3
        assert consensus_round(series, threshold=0.9) == 2

    def test_returns_none_when_never_reached(self):
        assert consensus_round(np.asarray([0.1, 0.2, 0.3])) is None
