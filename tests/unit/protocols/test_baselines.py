"""Unit tests for the baseline protocols (repro.protocols.*)."""

import numpy as np
import pytest

from repro.core.majority import MajorityInstance
from repro.errors import SimulationError
from repro.protocols import (
    DirectSourceReference,
    ImmediateForwardingBroadcast,
    NoisyVoterBroadcast,
    SilentWaitBroadcast,
    ThreeStateApproximateMajority,
    TwoChoicesMajority,
    default_decision_threshold,
)
from repro.substrate import PerfectChannel, SimulationEngine


def broadcast_engine(n=400, epsilon=0.25, seed=1, channel=None):
    return SimulationEngine.create(n=n, epsilon=epsilon, seed=seed, channel=channel)


def opinionated_engine(n=400, epsilon=0.25, seed=1, bias=0.15, channel=None):
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed, source=None, channel=channel)
    instance = MajorityInstance.generate(
        n=n, size=n, bias=bias, majority_opinion=1, rng=engine.random.stream("inst")
    )
    engine.population.seed_opinionated_set(instance.members, instance.opinions)
    return engine


class TestImmediateForwarding:
    def test_spreads_to_everyone_but_stays_unreliable(self):
        result = ImmediateForwardingBroadcast().run(broadcast_engine(seed=2), correct_opinion=1)
        assert result.converged  # the rumor reaches everyone ...
        assert result.final_correct_fraction < 0.85  # ... but reliability is poor
        assert not result.success
        assert result.extra["all_informed_round"] is not None

    def test_noiseless_forwarding_is_perfect(self):
        result = ImmediateForwardingBroadcast().run(
            broadcast_engine(seed=3, channel=PerfectChannel()), correct_opinion=1
        )
        assert result.success

    def test_requires_source(self):
        engine = SimulationEngine.create(n=50, epsilon=0.25, seed=4, source=None)
        with pytest.raises(SimulationError):
            ImmediateForwardingBroadcast().run(engine)

    def test_round_budget_respected(self):
        result = ImmediateForwardingBroadcast(max_rounds=7).run(broadcast_engine(seed=5))
        assert result.rounds == 7


class TestSilentWait:
    def test_default_threshold_formula(self):
        threshold = default_decision_threshold(1000, 0.2)
        assert threshold % 2 == 1
        assert threshold >= 4 * np.log(1000) / 0.04

    def test_first_two_messages_take_about_sqrt_n_rounds(self):
        rounds = []
        for seed in range(5):
            engine = broadcast_engine(n=900, seed=seed)
            result = SilentWaitBroadcast(threshold=2, max_rounds=2000).run(engine)
            rounds.append(result.extra["first_round_with_two_messages"])
        mean_rounds = np.mean(rounds)
        # Birthday paradox: expected ~ sqrt(pi/2 * n) ~ 37 for n=900; allow a wide band.
        assert 8 <= mean_rounds <= 150

    def test_completes_with_small_threshold(self):
        engine = broadcast_engine(n=60, epsilon=0.4, seed=7)
        result = SilentWaitBroadcast(threshold=21, max_rounds=30_000).run(engine)
        assert result.converged
        assert result.extra["decided_fraction"] == 1.0
        assert result.final_correct_fraction > 0.9

    def test_only_source_ever_sends(self):
        engine = broadcast_engine(n=200, seed=8)
        result = SilentWaitBroadcast(threshold=3, max_rounds=500).run(engine)
        assert result.messages_sent == result.rounds


class TestDirectSourceReference:
    def test_everyone_correct_with_default_rounds(self):
        result = DirectSourceReference().run(broadcast_engine(seed=9), correct_opinion=1)
        assert result.success
        assert result.extra["first_all_correct_round"] is not None
        assert result.extra["first_all_correct_round"] <= result.rounds

    def test_messages_are_n_per_round(self):
        engine = broadcast_engine(n=100, seed=10)
        result = DirectSourceReference(rounds=25).run(engine)
        assert result.rounds == 25
        assert result.messages_sent == 2500

    def test_single_round_is_a_coin_flip_per_agent(self):
        engine = broadcast_engine(n=5000, epsilon=0.1, seed=11)
        result = DirectSourceReference(rounds=1).run(engine)
        assert result.final_correct_fraction == pytest.approx(0.6, abs=0.03)


class TestNoisyVoter:
    def test_does_not_converge_under_noise(self):
        result = NoisyVoterBroadcast(max_rounds=300).run(broadcast_engine(seed=12), correct_opinion=1)
        assert not result.success
        assert 0.3 < result.final_correct_fraction < 0.7

    def test_zealot_source_never_flips(self):
        engine = broadcast_engine(seed=13)
        NoisyVoterBroadcast(max_rounds=100).run(engine, correct_opinion=1)
        assert engine.population.opinions[engine.population.source] == 1

    def test_requires_source(self):
        engine = SimulationEngine.create(n=50, epsilon=0.25, seed=14, source=None)
        with pytest.raises(SimulationError):
            NoisyVoterBroadcast().run(engine)


class TestTwoChoices:
    def test_noiseless_converges_to_initial_majority(self):
        result = TwoChoicesMajority(noisy=False).run(opinionated_engine(seed=15), correct_opinion=1)
        assert result.success
        assert result.converged
        assert result.extra["consensus_opinion"] == 1

    def test_noisy_mode_stalls_below_consensus(self):
        result = TwoChoicesMajority(noisy=True, max_rounds=150).run(
            opinionated_engine(seed=16), correct_opinion=1
        )
        assert not result.success
        assert result.final_correct_fraction < 0.95

    def test_requires_opinionated_population(self):
        engine = SimulationEngine.create(n=50, epsilon=0.25, seed=17, source=None)
        with pytest.raises(SimulationError):
            TwoChoicesMajority().run(engine)

    def test_messages_counted_as_two_per_agent_per_round(self):
        engine = opinionated_engine(n=100, seed=18)
        result = TwoChoicesMajority(noisy=False, max_rounds=50).run(engine, correct_opinion=1)
        assert result.messages_sent == 2 * 100 * result.rounds


class TestThreeState:
    def test_noiseless_converges_to_initial_majority(self):
        engine = opinionated_engine(seed=19, bias=0.2, epsilon=0.5, channel=PerfectChannel())
        result = ThreeStateApproximateMajority(max_rounds=600).run(engine, correct_opinion=1)
        assert result.converged
        assert result.extra["consensus_opinion"] == 1

    def test_noise_breaks_reliability(self):
        """Under Flip-model noise the 3-state dynamics frequently fail (wrong or no consensus)."""
        outcomes = []
        for seed in range(6):
            engine = opinionated_engine(seed=20 + seed, bias=0.1, epsilon=0.15)
            result = ThreeStateApproximateMajority(max_rounds=400).run(engine, correct_opinion=1)
            outcomes.append(result.success)
        assert not all(outcomes)

    def test_requires_opinionated_population(self):
        engine = SimulationEngine.create(n=50, epsilon=0.25, seed=30, source=None)
        with pytest.raises(SimulationError):
            ThreeStateApproximateMajority().run(engine)
