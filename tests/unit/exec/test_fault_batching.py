"""Differential pins for the E12 batch rules (`repro.exec.fault_batching`).

Three contracts:

* ``run_faulty_broadcast_batch`` with :class:`NoFaults` is **bit-identical**
  to ``run_broadcast_batch`` (same stream labels, same code path);
* with an active fault model, batch and serial runs of the paper's protocol
  agree **statistically** (the standard batch-vs-serial scope of
  ``docs/ARCHITECTURE.md``), and forced crashes do not shift the batch main
  stream's consumption;
* the phased approximate-consensus comparator's batch rule matches the
  serial :class:`~repro.protocols.fault_tolerant.PhasedApproximateConsensus`
  **exactly** on phase budgets and statistically on outcomes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.broadcast import solve_noisy_broadcast
from repro.core.parameters import ProtocolParameters
from repro.errors import ExperimentError
from repro.exec.batching import run_broadcast_batch
from repro.exec.fault_batching import (
    run_consensus_comparator_batch,
    run_faulty_broadcast_batch,
)
from repro.exec.stage_batching import run_stage1_batch, source_batch_state
from repro.protocols.fault_tolerant import (
    PhasedApproximateConsensus,
    declared_fault_tolerance,
)
from repro.substrate.faults import (
    BurstNoise,
    ByzantineSenders,
    CrashStop,
    NoFaults,
    build_injector,
)
from repro.substrate.network import PushGossipNetwork
from repro.substrate.noise import BinarySymmetricChannel
from repro.substrate.rng import spawn_generator
from repro.substrate.topology import ChurnTopology


class TestNoFaultsBitIdentity:
    """`NoFaults` must reproduce `run_broadcast_batch` byte for byte."""

    @pytest.mark.parametrize("model", [None, NoFaults()], ids=["none", "NoFaults"])
    def test_bit_identical_to_plain_broadcast_batch(self, model):
        plain = run_broadcast_batch(150, 0.3, 5, base_seed=42)
        faulty = run_faulty_broadcast_batch(150, 0.3, 5, model=model, base_seed=42)
        assert np.array_equal(plain.success, faulty.success)
        assert np.array_equal(plain.final_correct_fraction, faulty.final_correct_fraction)
        assert np.array_equal(plain.messages_sent, faulty.messages_sent)
        assert np.array_equal(plain.stage1_bias, faulty.stage1_bias)
        assert plain.rounds == faulty.rounds
        assert (faulty.crashed == 0).all()
        assert np.array_equal(
            faulty.surviving_correct_fraction, plain.final_correct_fraction
        )

    def test_replicates_reproducible_from_base_seed(self):
        model = CrashStop(fraction=0.2, crash_probability=0.1, immune=(0,))
        first = run_faulty_broadcast_batch(120, 0.3, 4, model=model, base_seed=7)
        second = run_faulty_broadcast_batch(120, 0.3, 4, model=model, base_seed=7)
        assert np.array_equal(first.surviving_correct_fraction, second.surviving_correct_fraction)
        assert np.array_equal(first.crashed, second.crashed)

    def test_num_replicates_validated(self):
        with pytest.raises(ExperimentError):
            run_faulty_broadcast_batch(100, 0.3, 0)
        with pytest.raises(ExperimentError):
            run_consensus_comparator_batch(100, 0)


class TestBatchRngStability:
    """Forced crashes must not shift the batch main stream's consumption."""

    @staticmethod
    def _stage1_tail(model, n=40, num_replicates=3):
        network = PushGossipNetwork(size=n)
        channel = BinarySymmetricChannel(epsilon=0.3)
        rng = np.random.default_rng(11)
        injector = build_injector(model, n, np.random.default_rng(5), num_replicates=num_replicates)
        state = source_batch_state(n, num_replicates, 1)
        parameters = ProtocolParameters.calibrated(n, 0.3)
        run_stage1_batch(state, network, channel, rng, parameters.stage1, 1, faults=injector)
        return state, rng.random(16)

    def test_forced_crash_does_not_shift_main_stream(self):
        quiet_state, quiet_tail = self._stage1_tail(CrashStop(forced={}))
        crashed_state, crashed_tail = self._stage1_tail(CrashStop(forced={2: (1, 2, 3)}))
        assert np.array_equal(quiet_tail, crashed_tail)
        # The crashed run genuinely diverges in outcome, not in consumption.
        assert crashed_state.messages_sent.sum() < quiet_state.messages_sent.sum()

    def test_churn_topology_keeps_consumption_schedule_fixed(self):
        # Different churn rates change who participates, not how much the
        # *fault-free* main stream advances per round (positional draws).
        tails = []
        for probability in (0.05, 0.6):
            network = PushGossipNetwork(size=30)
            channel = BinarySymmetricChannel(epsilon=0.3)
            rng = np.random.default_rng(13)
            state = source_batch_state(30, 2, 1)
            parameters = ProtocolParameters.calibrated(30, 0.3)
            run_stage1_batch(
                state, network, channel, rng, parameters.stage1, 1,
                topology=ChurnTopology(offline_probability=probability),
            )
            tails.append(rng.random(8))
        assert np.array_equal(tails[0], tails[1])


class TestPaperProtocolDifferential:
    """Batch vs. serial statistical agreement per fault model."""

    N, EPSILON = 120, 0.3
    SERIAL_TRIALS, BATCH_REPLICATES = 6, 24

    def _serial_stats(self, model):
        fractions, successes = [], []
        for seed in range(self.SERIAL_TRIALS):
            result = solve_noisy_broadcast(self.N, self.EPSILON, seed=seed, faults=model)
            fractions.append(result.final_correct_fraction)
            successes.append(result.success)
        return np.mean(fractions), np.mean(successes)

    @pytest.mark.parametrize(
        "model",
        [
            CrashStop(fraction=0.2, crash_probability=0.05, immune=(0,)),
            ByzantineSenders(fraction=0.15, mode="random", immune=(0,)),
            BurstNoise(start_probability=0.1, stop_probability=0.3, flip_probability=0.5),
        ],
        ids=["crash", "byzantine", "burst"],
    )
    def test_batch_marginals_match_serial(self, model):
        serial_fraction, _ = self._serial_stats(model)
        batch = run_faulty_broadcast_batch(
            self.N, self.EPSILON, self.BATCH_REPLICATES, model=model, base_seed=17
        )
        assert batch.num_replicates == self.BATCH_REPLICATES
        assert abs(batch.final_correct_fraction.mean() - serial_fraction) < 0.15
        # Crash census matches the model's prone-set size bound.
        if isinstance(model, CrashStop):
            assert (batch.crashed <= int(model.fraction * self.N)).all()
        else:
            assert (batch.crashed == 0).all()

    def test_measurement_keys_superset_of_serial_trial(self):
        from repro.experiments.e12_faults import _paper_trial

        model = CrashStop(fraction=0.2, crash_probability=0.1, immune=(0,))
        serial_keys = set(_paper_trial(3, 0, n=self.N, epsilon=self.EPSILON, model=model))
        batch = run_faulty_broadcast_batch(self.N, self.EPSILON, 2, model=model, base_seed=3)
        assert serial_keys <= set(batch.measurements(0))


class TestConsensusComparatorDifferential:
    """The batched comparator versus the serial `PhasedApproximateConsensus`."""

    def test_phase_budget_matches_serial_exactly(self):
        algorithm = PhasedApproximateConsensus()
        for model in (
            None,
            CrashStop(fraction=0.1),
            ByzantineSenders(fraction=0.2),
            ByzantineSenders(fraction=0.45),
        ):
            batch = run_consensus_comparator_batch(100, 2, model=model, base_seed=1)
            assert batch.phases == algorithm.phase_budget(100, model)
            assert batch.num_faulty == declared_fault_tolerance(model, 100)

    def test_success_rate_matches_serial_statistically(self):
        model = ByzantineSenders(fraction=0.1)
        algorithm = PhasedApproximateConsensus()
        serial = [
            algorithm.run(
                80,
                model,
                spawn_generator(seed, "consensus", 80),
                spawn_generator(seed, "consensus-faults", 80),
            )
            for seed in range(30)
        ]
        batch = run_consensus_comparator_batch(80, 60, model=model, base_seed=9)
        serial_rate = np.mean([outcome.success for outcome in serial])
        assert abs(batch.success.mean() - serial_rate) < 0.25
        assert batch.phases == serial[0].phases

    def test_no_faults_reaches_agreement_in_one_phase(self):
        batch = run_consensus_comparator_batch(60, 8, model=None, base_seed=2)
        assert batch.phases == 1
        assert batch.success.all()
        assert (batch.spread <= 1e-9).all()

    def test_crash_model_tolerated_by_design(self):
        model = CrashStop(fraction=0.2, crash_probability=0.2)
        batch = run_consensus_comparator_batch(100, 10, model=model, base_seed=4)
        assert batch.success.mean() >= 0.8

    def test_measurements_shape(self):
        batch = run_consensus_comparator_batch(60, 3, model=ByzantineSenders(fraction=0.1), base_seed=6)
        measurement = batch.measurements(1)
        assert {"rounds", "success", "fraction", "spread", "num_faulty"} <= set(measurement)
        assert measurement["rounds"] == batch.phases
