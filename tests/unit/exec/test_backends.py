"""Unit tests for the execution-backend layer and its pool routing.

Covers the :class:`~repro.exec.backends.base.ExecutionBackend` contract
(ordered results, lifecycle, active-backend installation), the chunking pin
that closes the historical per-task-IPC gap, the labelled worker-failure
errors, and the adversarial ordering differential: a mock backend that
completes tasks in shuffled order must still produce a bit-identical E8
sweep.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ExperimentError
from repro.exec import pool
from repro.exec.backends import (
    InProcessBackend,
    LocalPoolBackend,
    Task,
    active_backend,
    chunksize_for,
    create_backend,
    run_task,
    task_failure_error,
    task_label,
    use_backend,
    validate_backend_spec,
)


def _add(a, b):
    return a + b


def _boom(_seed, _index):
    raise ValueError("exploding trial")


def _trial(seed, index):
    return {"value": seed + index}


class TestTask:
    def test_run_task_applies_args_and_kwargs(self):
        task = Task(fn=_add, args=(2,), kwargs={"b": 3})
        assert run_task(task) == 5

    def test_task_label_includes_the_context(self):
        task = Task(fn=_add, context=(("point", "E8[n=10]"), ("seed", 42)))
        assert task_label(task, 7) == "task 7 (point='E8[n=10]', seed=42)"
        assert task_label(Task(fn=_add), 0) == "task 0"

    def test_failure_error_names_task_index_point_and_seed(self):
        tasks = [Task(fn=_add, context=(("point", "p"), ("seed", 5)))]
        error = task_failure_error(tasks, 0, ValueError("dead"), where="local")
        assert "local execution failed" in str(error)
        assert "task 0 (point='p', seed=5)" in str(error)
        assert "ValueError: dead" in str(error)

    def test_failure_error_survives_an_out_of_range_index(self):
        error = task_failure_error([], 3, RuntimeError("x"), where="local")
        assert "task 3" in str(error)


class TestInProcessBackend:
    def test_results_come_back_in_task_order(self):
        tasks = [Task(fn=_add, args=(i, 1)) for i in range(5)]
        assert InProcessBackend().submit(tasks) == [1, 2, 3, 4, 5]

    def test_exceptions_propagate_raw(self):
        """Exactly the historical serial semantics: no wrapping."""
        with pytest.raises(ValueError, match="exploding"):
            InProcessBackend().submit([Task(fn=_boom, args=(1, 2))])


class TestLocalPoolBackend:
    def test_pool_is_created_once_and_reused_across_submits(self):
        tasks = [Task(fn=_add, args=(i, 0)) for i in range(4)]
        with LocalPoolBackend(jobs=2) as backend:
            first = backend.submit(tasks)
            pool_object = backend._pool
            second = backend.submit(tasks)
            assert backend._pool is pool_object  # no respawn between submits
        assert first == second == [0, 1, 2, 3]
        assert backend._pool is None  # close() tore it down

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExperimentError, match="positive integer"):
            LocalPoolBackend(jobs=0)

    def test_worker_failure_is_labelled_with_task_context(self):
        tasks = [
            Task(fn=_add, args=(0, 0), context=(("point", "ok"),)),
            Task(fn=_boom, args=(1, 2), context=(("point", "E8[x]"), ("seed", 99))),
        ]
        with LocalPoolBackend(jobs=2) as backend:
            with pytest.raises(ExperimentError) as excinfo:
                backend.submit(tasks)
        message = str(excinfo.value)
        assert "local execution failed" in message
        assert "task 1 (point='E8[x]', seed=99)" in message
        assert "exploding trial" in message

    def test_every_submission_is_chunked(self):
        """The chunking pin: submissions route through chunksize_for."""
        tasks = [Task(fn=_add, args=(i, 0)) for i in range(40)]
        with LocalPoolBackend(jobs=2) as backend:
            backend.submit(tasks)
            assert backend.last_chunksize == chunksize_for(40, 2) == 5
            backend.submit(tasks[:3])
            assert backend.last_chunksize == chunksize_for(3, 2) == 1


class TestChunksizeFor:
    def test_targets_four_chunks_per_worker(self):
        assert chunksize_for(80, 4) == 5
        assert chunksize_for(16, 2) == 2

    def test_never_below_one(self):
        assert chunksize_for(3, 8) == 1
        assert chunksize_for(0, 1) == 1


class TestActiveBackend:
    def test_no_backend_by_default(self):
        assert active_backend() is None

    def test_use_backend_installs_and_uninstalls(self):
        backend = InProcessBackend()
        with use_backend(backend) as installed:
            assert installed is backend
            assert active_backend() is backend
        assert active_backend() is None

    def test_nesting_is_rejected(self):
        with use_backend(InProcessBackend()):
            with pytest.raises(ExperimentError, match="cannot be nested"):
                with use_backend(InProcessBackend()):
                    pass  # pragma: no cover
        assert active_backend() is None

    def test_uninstalled_even_when_the_run_raises(self):
        with pytest.raises(RuntimeError):
            with use_backend(InProcessBackend()):
                raise RuntimeError("driver failed")
        assert active_backend() is None


class _RecordingBackend(InProcessBackend):
    """In-process execution that records every submitted task list."""

    def __init__(self):
        self.submissions = []

    def submit(self, tasks):
        self.submissions.append(list(tasks))
        return super().submit(tasks)


class TestPoolRouting:
    """Every pool helper funnels through the installed backend."""

    def test_run_trials_in_pool_routes_to_the_active_backend(self):
        backend = _RecordingBackend()
        with use_backend(backend):
            results = pool.run_trials_in_pool(_trial, [10, 20], jobs=4, name="exp")
        assert results == [{"value": 10}, {"value": 21}]
        (tasks,) = backend.submissions
        assert tasks[1].context == (("experiment", "exp"), ("trial", 1), ("seed", 20))

    def test_run_point_trials_in_pool_routes_and_labels_points(self):
        backend = _RecordingBackend()
        with use_backend(backend):
            results = pool.run_point_trials_in_pool(
                [(_trial, (5, 6)), (_trial, (7,))], jobs=4, names=["sweep[a]", "sweep[b]"]
            )
        assert results == [[{"value": 5}, {"value": 7}], [{"value": 7}]]
        (tasks,) = backend.submissions
        assert tasks[0].context == (("point", "sweep[a]"), ("first_seed", 5))
        assert tasks[1].context == (("point", "sweep[b]"), ("first_seed", 7))

    def test_run_tasks_in_pool_scrapes_context_from_kwargs(self):
        backend = _RecordingBackend()
        with use_backend(backend):
            results = pool.run_tasks_in_pool(
                [(_add, {"a": 1, "b": 2}), (_add, {"a": 3, "b": 4})], jobs=4
            )
        assert results == [3, 7]
        (tasks,) = backend.submissions
        assert tasks[0].context == (("position", 0),)

    def test_run_point_tasks_uses_the_backend_even_for_one_job(self):
        """An installed backend overrides the jobs<=1 in-process shortcut."""
        backend = _RecordingBackend()
        with use_backend(backend):
            results = pool.run_point_tasks([(_add, {"a": 1, "b": 1})], point_jobs=None)
        assert results == [2]
        assert len(backend.submissions) == 1

    def test_no_backend_falls_back_to_the_per_call_pool(self):
        """Historical semantics: jobs<=1 without a backend stays in-process."""
        results = pool.run_point_tasks([(_add, {"a": 1, "b": 1})], point_jobs=None)
        assert results == [2]


class _ShuffledBackend(InProcessBackend):
    """Adversarial completion order: executes tasks shuffled, returns ordered.

    Models what a remote fleet does — tasks finish in arbitrary order — while
    honouring the contract that ``submit`` returns results by task position.
    """

    name = "shuffled"

    def submit(self, tasks):
        order = list(range(len(tasks)))
        random.Random(1234).shuffle(order)
        results = [None] * len(tasks)
        for index in order:
            results[index] = run_task(tasks[index])
        return results


class TestOrderedAssemblyDifferential:
    def test_shuffled_completion_is_bit_identical_on_a_small_e8_grid(self):
        """Seeds derived in the parent + ordered assembly ⇒ backend-invariant."""
        from repro.api import ExecutionConfig, run_experiment

        kwargs = dict(
            n=60, epsilon=0.3, set_sizes=(10, 16), biases=(0.2,), trials=3, base_seed=11
        )
        serial = run_experiment("E8", config=ExecutionConfig(), **kwargs)
        with use_backend(_ShuffledBackend()):
            # Force the parallel path so the sweep actually dispatches tasks.
            shuffled = run_experiment("E8", config=ExecutionConfig(jobs=2), **kwargs)
        assert shuffled.report.rows == serial.report.rows
        assert shuffled.report.render() == serial.report.render()


class TestFactory:
    def test_validate_rejects_unknown_backend_and_options(self):
        with pytest.raises(ExperimentError, match="registered backends"):
            validate_backend_spec("threads")
        with pytest.raises(ExperimentError, match="no option"):
            validate_backend_spec("in-process", {"workers": 2})

    def test_jobs_fill_in_the_workers_option(self):
        backend = create_backend("local", jobs=3)
        assert isinstance(backend, LocalPoolBackend) and backend.jobs == 3

    def test_jobs_zero_means_one_worker_per_cpu(self):
        from repro.exec.backends import RemoteWorkerBackend, default_jobs

        backend = create_backend("remote", jobs=0)
        assert isinstance(backend, RemoteWorkerBackend)
        assert backend.workers == default_jobs()

    def test_explicit_zero_workers_on_remote_means_external_only(self):
        backend = create_backend("remote", {"workers": 0}, jobs=4)
        assert backend.workers == 0
