"""Unit tests for the batched execution path: gossip rounds and full protocol.

Pins both halves of the determinism contract in ``repro.exec.batching``'s
module docstring: exact equality wherever the model is deterministic
(channel semantics, round schedules, seed bookkeeping) and distributional
agreement with the per-engine path for the stochastic observables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.broadcast import solve_noisy_broadcast
from repro.core.majority import solve_noisy_majority_consensus
from repro.errors import ExperimentError, ParameterError, ProtocolError
from repro.exec.batching import (
    batch_to_experiment_result,
    run_broadcast_batch,
    run_broadcast_sweep_batched,
    run_majority_batch,
    run_sweep_batched,
)
from repro.exec.runner import trial_seed
from repro.substrate.network import PushGossipNetwork
from repro.substrate.noise import AdversarialFlipBudgetChannel, BinarySymmetricChannel, PerfectChannel


class TestTransmitBatch:
    def test_equals_per_engine_transmit_seed_for_seed(self):
        """transmit_batch is bit-identical to transmit on the masked values."""
        channel = BinarySymmetricChannel(epsilon=0.2)
        rng_batch = np.random.default_rng(13)
        rng_flat = np.random.default_rng(13)
        bits = np.asarray([[1, 0, 1, 1], [0, 0, 1, 0]], dtype=np.int8)
        mask = np.asarray([[True, False, True, True], [False, True, True, False]])

        batched = channel.transmit_batch(bits, mask, rng_batch)
        flat = channel.transmit(bits[mask], rng_flat)

        assert np.array_equal(batched[mask], flat)
        assert np.array_equal(batched[~mask], bits[~mask]), "unaccepted entries pass through"

    def test_stateful_channel_semantics_carry_over(self):
        """A budgeted adversarial channel spends its budget in batch order."""
        channel = AdversarialFlipBudgetChannel(epsilon=0.2, budget=3)
        rng = np.random.default_rng(0)
        bits = np.ones((2, 4), dtype=np.int8)
        mask = np.ones((2, 4), dtype=bool)
        out = channel.transmit_batch(bits, mask, rng)
        assert int((out == 0).sum()) == 3
        assert channel.remaining_budget == 0

    def test_shape_mismatch_rejected(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            PerfectChannel().transmit_batch(
                np.ones((2, 3), dtype=np.int8), np.ones((3, 2), dtype=bool), np.random.default_rng(0)
            )


class TestDeliverBatch:
    def test_single_sender_per_replicate_is_exact(self):
        """With one sender and no noise the model is deterministic: exactly one
        delivery per replicate, the sent bit survives, no self-delivery."""
        network = PushGossipNetwork(size=30)
        rng = np.random.default_rng(3)
        R = 16
        mask = np.zeros((R, 30), dtype=bool)
        mask[:, 4] = True
        bits = np.ones((R, 30), dtype=np.int8)
        report = network.deliver_batch(mask, bits, PerfectChannel(), rng)
        assert np.array_equal(report.messages_sent, np.ones(R, dtype=np.int64))
        assert np.array_equal(report.messages_delivered, np.ones(R, dtype=np.int64))
        rows, cols = np.nonzero(report.accepted)
        assert np.array_equal(rows, np.arange(R)), "exactly one acceptance per replicate"
        assert np.all(cols != 4), "no self-delivery"
        assert np.all(report.bits[rows, cols] == 1)
        assert np.all(report.senders[rows, cols] == 4)
        assert np.all(report.senders[~report.accepted] == -1)

    def test_statistics_match_per_engine_deliver(self):
        """Delivered fraction and flip rate agree with the per-engine path."""
        n, rounds = 400, 30
        channel = BinarySymmetricChannel(epsilon=0.2)
        senders = np.arange(n)
        bits = np.ones(n, dtype=np.int8)

        engine_rng = np.random.default_rng(1)
        engine_net = PushGossipNetwork(size=n)
        engine_delivered = engine_flipped = engine_total = 0
        for _ in range(rounds):
            report = engine_net.deliver(senders, bits, channel, engine_rng)
            engine_delivered += report.messages_delivered
            engine_flipped += int((report.bits == 0).sum())
            engine_total += report.recipients.size

        batch_rng = np.random.default_rng(2)
        batch_net = PushGossipNetwork(size=n)
        batch = batch_net.deliver_batch(
            np.ones((rounds, n), dtype=bool), np.ones((rounds, n), dtype=np.int8), channel, batch_rng
        )
        batch_delivered = int(batch.messages_delivered.sum())
        batch_flipped = int((batch.bits[batch.accepted] == 0).sum())

        engine_fraction = engine_delivered / (rounds * n)
        batch_fraction = batch_delivered / (rounds * n)
        assert engine_fraction == pytest.approx(1 - np.exp(-1), abs=0.02)
        assert batch_fraction == pytest.approx(engine_fraction, abs=0.02)
        assert batch_flipped / batch_delivered == pytest.approx(
            engine_flipped / engine_total, abs=0.02
        )

    def test_deterministic_for_fixed_seed(self):
        network = PushGossipNetwork(size=50)
        mask = np.ones((6, 50), dtype=bool)
        bits = np.ones((6, 50), dtype=np.int8)
        first = network.deliver_batch(mask, bits, BinarySymmetricChannel(0.25), np.random.default_rng(9))
        second = network.deliver_batch(mask, bits, BinarySymmetricChannel(0.25), np.random.default_rng(9))
        assert np.array_equal(first.accepted, second.accepted)
        assert np.array_equal(first.bits, second.bits)
        assert np.array_equal(first.senders, second.senders)

    def test_validation(self):
        network = PushGossipNetwork(size=10)
        rng = np.random.default_rng(0)
        channel = PerfectChannel()
        with pytest.raises(ProtocolError):
            network.deliver_batch(np.ones(10, dtype=bool), np.ones(10, dtype=np.int8), channel, rng)
        with pytest.raises(ProtocolError):
            network.deliver_batch(
                np.ones((2, 8), dtype=bool), np.ones((2, 8), dtype=np.int8), channel, rng
            )
        bad_bits = np.full((2, 10), 3, dtype=np.int8)
        with pytest.raises(ProtocolError):
            network.deliver_batch(np.ones((2, 10), dtype=bool), bad_bits, channel, rng)


class TestBatchedBroadcast:
    def test_round_schedule_exactly_matches_serial(self):
        """The paper's schedule is deterministic: batch rounds == serial rounds."""
        serial = solve_noisy_broadcast(n=250, epsilon=0.3, seed=0)
        batch = run_broadcast_batch(n=250, epsilon=0.3, num_replicates=4, base_seed=0)
        assert batch.rounds == serial.rounds

    def test_statistical_agreement_with_serial(self):
        n, epsilon, R = 300, 0.3, 6
        serial = [solve_noisy_broadcast(n=n, epsilon=epsilon, seed=seed) for seed in range(R)]
        batch = run_broadcast_batch(n=n, epsilon=epsilon, num_replicates=R, base_seed=0)
        assert batch.success.mean() >= 0.8
        assert np.mean([r.success for r in serial]) >= 0.8
        serial_messages = np.mean([r.messages_sent for r in serial])
        assert batch.messages_sent.mean() == pytest.approx(serial_messages, rel=0.05)
        assert batch.final_correct_fraction.mean() == pytest.approx(
            np.mean([r.final_correct_fraction for r in serial]), abs=0.05
        )

    def test_deterministic_for_fixed_base_seed(self):
        first = run_broadcast_batch(n=250, epsilon=0.3, num_replicates=5, base_seed=7)
        second = run_broadcast_batch(n=250, epsilon=0.3, num_replicates=5, base_seed=7)
        assert np.array_equal(first.success, second.success)
        assert np.array_equal(first.messages_sent, second.messages_sent)
        assert np.array_equal(first.final_correct_fraction, second.final_correct_fraction)
        different = run_broadcast_batch(n=250, epsilon=0.3, num_replicates=5, base_seed=8)
        assert not np.array_equal(first.messages_sent, different.messages_sent)

    def test_rejects_zero_replicates(self):
        with pytest.raises(ExperimentError):
            run_broadcast_batch(n=250, epsilon=0.3, num_replicates=0)

    def test_measurements_are_trial_compatible(self):
        batch = run_broadcast_batch(n=250, epsilon=0.3, num_replicates=3, base_seed=1)
        measurements = batch.measurements(0)
        assert {"rounds", "messages", "messages_per_agent", "success", "final_correct_fraction"} <= set(
            measurements
        )
        assert measurements["messages_per_agent"] == pytest.approx(measurements["messages"] / 250)


class TestBatchAdapters:
    def test_experiment_result_records_identifying_seeds(self):
        batch = run_broadcast_batch(n=250, epsilon=0.3, num_replicates=3, base_seed=5)
        result = batch_to_experiment_result("B", batch, base_seed=5, config={"n": 250})
        assert result.num_trials == 3
        assert [t.seed for t in result.trials] == [trial_seed(5, "B", i) for i in range(3)]
        assert result.mean("rounds") == batch.rounds

    def test_batched_sweep_mirrors_run_sweep_naming(self):
        sweep = run_broadcast_sweep_batched(
            name="S",
            points=[{"n": 250}, {"n": 350}],
            trials_per_point=2,
            base_seed=3,
            defaults={"epsilon": 0.3},
        )
        assert [point.as_dict()["n"] for point in sweep.points] == [250, 350]
        assert [result.name for result in sweep.results] == ["S[n=250]", "S[n=350]"]
        xs, ys = sweep.series("n", "rounds")
        assert xs == [250, 350]
        assert ys[1] > ys[0], "larger n needs more rounds"

    def test_sweep_requires_n_and_epsilon(self):
        with pytest.raises(ExperimentError):
            run_broadcast_sweep_batched(
                name="S", points=[{"n": 250}], trials_per_point=2, base_seed=0
            )


class TestBatchedMajority:
    def test_round_schedule_and_start_phase_exactly_match_serial(self):
        """Schedule and start phase are deterministic: batch == serial exactly."""
        serial = solve_noisy_majority_consensus(
            n=300, epsilon=0.3, initial_set_size=40, majority_bias=0.25, seed=0
        )
        batch = run_majority_batch(
            n=300, epsilon=0.3, num_replicates=4, initial_set_size=40, majority_bias=0.25
        )
        assert batch.rounds == serial.rounds
        assert batch.start_phase == serial.start_phase
        assert batch.initial_bias == pytest.approx(serial.initial_bias)

    def test_statistical_agreement_with_serial(self):
        n, epsilon, R = 300, 0.3, 6
        kwargs = dict(n=n, epsilon=epsilon, initial_set_size=50, majority_bias=0.3)
        serial = [solve_noisy_majority_consensus(seed=seed, **kwargs) for seed in range(R)]
        batch = run_majority_batch(num_replicates=R, base_seed=0, **kwargs)
        assert batch.success.mean() >= 0.8
        assert np.mean([r.success for r in serial]) >= 0.8
        serial_messages = np.mean([r.messages_sent for r in serial])
        assert batch.messages_sent.mean() == pytest.approx(serial_messages, rel=0.05)
        assert batch.final_correct_fraction.mean() == pytest.approx(
            np.mean([r.final_correct_fraction for r in serial]), abs=0.05
        )

    def test_deterministic_for_fixed_base_seed(self):
        kwargs = dict(
            n=250, epsilon=0.3, num_replicates=5, initial_set_size=30, majority_bias=0.3
        )
        first = run_majority_batch(base_seed=7, **kwargs)
        second = run_majority_batch(base_seed=7, **kwargs)
        assert np.array_equal(first.success, second.success)
        assert np.array_equal(first.messages_sent, second.messages_sent)
        assert np.array_equal(first.final_correct_fraction, second.final_correct_fraction)
        assert np.array_equal(first.stage1_bias, second.stage1_bias)
        different = run_majority_batch(base_seed=8, **kwargs)
        assert not np.array_equal(first.stage1_bias, different.stage1_bias)

    def test_start_phase_override_shortens_schedule(self):
        """A forced late start skips early Stage-I phases, exactly as serially."""
        base = dict(n=400, epsilon=0.25, num_replicates=2, initial_set_size=60, majority_bias=0.3)
        default = run_majority_batch(base_seed=1, **base)
        late = run_majority_batch(base_seed=1, start_phase=default.start_phase + 1, **base)
        assert late.start_phase == default.start_phase + 1
        assert late.rounds < default.rounds

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_majority_batch(
                n=250, epsilon=0.3, num_replicates=0, initial_set_size=30, majority_bias=0.3
            )
        with pytest.raises(ParameterError):
            run_majority_batch(
                n=250, epsilon=0.3, num_replicates=2, initial_set_size=0, majority_bias=0.3
            )
        with pytest.raises(ParameterError):
            run_majority_batch(
                n=250, epsilon=0.3, num_replicates=2, initial_set_size=30, majority_bias=-0.1
            )

    def test_measurements_are_e8_trial_compatible(self):
        """Batch measurements form a superset of the serial E8 trial keys."""
        batch = run_majority_batch(
            n=250, epsilon=0.3, num_replicates=3, initial_set_size=30, majority_bias=0.3
        )
        measurements = batch.measurements(0)
        assert {"success", "final_fraction", "rounds"} <= set(measurements)
        assert measurements["final_fraction"] == measurements["final_correct_fraction"]
        assert measurements["start_phase"] == batch.start_phase


class TestSweepDispatch:
    def test_forwards_calibration_overrides_regression(self):
        """Regression for the drop-through bug: a calibration override in
        ``defaults`` must reach the batch simulator, exactly as a serial
        ``run_sweep`` trial function receives the full point settings.  The
        round schedule is a deterministic function of the override, so the
        check is exact."""
        overridden_serial = solve_noisy_broadcast(n=250, epsilon=0.3, seed=0, s0=4.0)
        plain_serial = solve_noisy_broadcast(n=250, epsilon=0.3, seed=0)
        assert overridden_serial.rounds != plain_serial.rounds, "override must matter"

        sweep = run_broadcast_sweep_batched(
            name="S",
            points=[{"n": 250}],
            trials_per_point=2,
            base_seed=0,
            defaults={"epsilon": 0.3, "s0": 4.0},
        )
        assert sweep.results[0].mean("rounds") == overridden_serial.rounds

    def test_forwards_every_recognised_instance_setting(self, monkeypatch):
        """correct_opinion / allow_self_messages / overrides all reach the simulator."""
        captured = {}

        def fake_batch(**kwargs):
            captured.update(kwargs)
            return run_broadcast_batch(n=kwargs["n"], epsilon=kwargs["epsilon"], num_replicates=2)

        monkeypatch.setattr("repro.exec.batching.run_broadcast_batch", fake_batch)
        run_sweep_batched(
            name="S",
            points=[{"n": 250, "correct_opinion": 0}],
            trials_per_point=2,
            base_seed=0,
            defaults={"epsilon": 0.3, "allow_self_messages": True, "b0": 2.5},
        )
        assert captured["correct_opinion"] == 0
        assert captured["allow_self_messages"] is True
        assert captured["b0"] == 2.5

    def test_coerces_numeric_settings_like_serial_trials(self):
        """Float grid values the serial path accepts (int(point['set_size']))
        work identically batched."""
        sweep = run_sweep_batched(
            name="M",
            points=[{"set_size": 30.0, "bias": 0.3}],
            trials_per_point=2,
            base_seed=0,
            defaults={"n": 250.0, "epsilon": 0.3},
        )
        assert sweep.results[0].rate("success") >= 0.0  # ran without TypeError

    def test_point_alias_overrides_canonical_default(self):
        """Per-point settings win over defaults through either spelling."""
        sweep = run_sweep_batched(
            name="M",
            points=[{"set_size": 50, "bias": 0.3}],
            trials_per_point=2,
            base_seed=0,
            defaults={"n": 250, "epsilon": 0.3, "initial_set_size": 30},
        )
        assert sweep.results[0].trials[0].measurements["success"] in (True, False)

    def test_unrecognised_setting_raises(self):
        with pytest.raises(ExperimentError, match="unrecognised"):
            run_broadcast_sweep_batched(
                name="S",
                points=[{"n": 250, "turbo": True}],
                trials_per_point=2,
                base_seed=0,
                defaults={"epsilon": 0.3},
            )

    def test_auto_shape_detects_majority_points(self):
        sweep = run_sweep_batched(
            name="M",
            points=[{"set_size": 30, "bias": 0.3}],
            trials_per_point=2,
            base_seed=0,
            defaults={"n": 250, "epsilon": 0.3},
        )
        assert "start_phase" in sweep.results[0].trials[0].measurements
        # The grid keeps the driver's original grid keys.
        assert sweep.points[0].as_dict() == {"set_size": 30, "bias": 0.3}

    def test_alias_conflict_and_missing_settings_raise(self):
        with pytest.raises(ExperimentError, match="both"):
            run_sweep_batched(
                name="M",
                points=[{"set_size": 30, "initial_set_size": 30, "bias": 0.3}],
                trials_per_point=2,
                defaults={"n": 250, "epsilon": 0.3},
            )
        with pytest.raises(ExperimentError, match="must define"):
            run_sweep_batched(
                name="M",
                points=[{"set_size": 30}],
                trials_per_point=2,
                defaults={"n": 250, "epsilon": 0.3},
                shape="majority",
            )
        with pytest.raises(ExperimentError, match="shape"):
            run_sweep_batched(
                name="M", points=[{"n": 250}], trials_per_point=2, shape="gossip"
            )

    def test_majority_sweep_mirrors_run_sweep_naming(self):
        sweep = run_sweep_batched(
            name="M",
            points=[{"set_size": 30, "bias": 0.35}, {"set_size": 60, "bias": 0.35}],
            trials_per_point=2,
            base_seed=3,
            defaults={"n": 250, "epsilon": 0.3},
        )
        assert [result.name for result in sweep.results] == [
            "M[set_size=30, bias=0.35]",
            "M[set_size=60, bias=0.35]",
        ]
        xs, ys = sweep.rates("set_size", "success")
        assert xs == [30, 60]
        assert all(0.0 <= y <= 1.0 for y in ys)


class TestPointParallelBatchedSweep:
    def test_point_jobs_is_bit_identical_to_in_process(self):
        kwargs = dict(
            name="P",
            points=[{"n": 250}, {"n": 300}],
            trials_per_point=2,
            base_seed=5,
            defaults={"epsilon": 0.3},
        )
        in_process = run_broadcast_sweep_batched(**kwargs)
        pooled = run_broadcast_sweep_batched(point_jobs=2, **kwargs)
        assert [r.to_dict() for r in pooled.results] == [
            r.to_dict() for r in in_process.results
        ]

    def test_negative_point_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            run_broadcast_sweep_batched(
                name="P",
                points=[{"n": 250}],
                trials_per_point=2,
                defaults={"epsilon": 0.3},
                point_jobs=-1,
            )


class TestDriverBatchMode:
    def test_e1_batch_report_matches_serial_schedule(self):
        """E1 in batch mode reproduces the schedule-determined columns exactly."""
        from repro.experiments import e1_rounds_vs_n

        serial = e1_rounds_vs_n.run(sizes=(250, 400), epsilon=0.3, trials=2)
        batched = e1_rounds_vs_n.run(sizes=(250, 400), epsilon=0.3, trials=2, batch=True)
        assert [row["mean_rounds"] for row in batched.rows] == [
            row["mean_rounds"] for row in serial.rows
        ]
        assert all(row["success_rate"] >= 0.5 for row in batched.rows)

    def test_e8_batch_report_matches_serial_schedule(self):
        """E8 in batch mode is statistically equivalent to the serial driver:
        the schedule-determined columns match exactly and well-initialised
        points succeed on both paths."""
        from repro.experiments import e8_majority

        kwargs = dict(n=400, epsilon=0.3, set_sizes=(40, 100), biases=(0.3,), trials=2)
        serial = e8_majority.run(**kwargs)
        batched = e8_majority.run(batch=True, **kwargs)
        assert [row["mean_rounds"] for row in batched.rows] == [
            row["mean_rounds"] for row in serial.rows
        ]
        assert [row["set_size"] for row in batched.rows] == [
            row["set_size"] for row in serial.rows
        ]
        assert all(row["success_rate"] >= 0.5 for row in batched.rows)

    def test_e8_batch_point_jobs_identical(self):
        from repro.experiments import e8_majority

        kwargs = dict(n=300, epsilon=0.3, set_sizes=(40,), biases=(0.3, 0.35), trials=2)
        batched = e8_majority.run(batch=True, **kwargs)
        pooled = e8_majority.run(batch=True, point_jobs=2, **kwargs)
        assert batched.rows == pooled.rows

    def test_e8_serial_point_jobs_identical(self):
        """point_jobs is honoured on the non-batch path too (bit-identical)."""
        from repro.experiments import e8_majority

        kwargs = dict(n=300, epsilon=0.3, set_sizes=(40,), biases=(0.3, 0.35), trials=2)
        serial = e8_majority.run(**kwargs)
        pooled = e8_majority.run(point_jobs=2, **kwargs)
        assert serial.rows == pooled.rows

    def test_e10_batch_mode_statistically_equivalent(self):
        """E10's batched Monte-Carlo grid agrees with the per-delta loop."""
        from repro.experiments import e10_majority_lemma

        kwargs = dict(epsilon=0.25, deltas=(0.02, 0.1), monte_carlo_reps=20_000)
        serial = e10_majority_lemma.run(**kwargs)
        batched = e10_majority_lemma.run(batch=True, **kwargs)
        assert batched.config["batch"] is True
        for serial_row, batched_row in zip(serial.rows, batched.rows):
            assert batched_row["exact_majority_prob"] == serial_row["exact_majority_prob"]
            assert batched_row["monte_carlo_majority_prob"] == pytest.approx(
                serial_row["monte_carlo_majority_prob"], abs=0.02
            )
            assert batched_row["bound_satisfied"] == serial_row["bound_satisfied"]
