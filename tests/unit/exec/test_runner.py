"""Unit tests for repro.exec.runner: serial/parallel equality and fallbacks."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.exec.runner import (
    ParallelTrialRunner,
    SerialTrialRunner,
    resolve_runner,
    trial_seed,
    trial_seeds,
)
from repro.substrate.rng import derive_seed, spawn_generator


def _cheap_trial(seed, trial_index):
    """Deterministic module-level trial function (picklable for the pool)."""
    rng = spawn_generator(seed, "trial")
    draws = rng.random(16)
    return {
        "seed_echo": seed,
        "index_echo": trial_index,
        "mean_draw": float(draws.mean()),
        "heads": bool(draws[0] < 0.5),
    }


def _bad_trial(seed, trial_index):
    """A trial function that violates the mapping contract."""
    return [seed, trial_index]


def _sweep_trial(point, seed, index):
    """Deterministic module-level sweep trial (picklable through _PointBoundTrial)."""
    rng = spawn_generator(seed, "sweep")
    return {"value": float(rng.random()) * point["scale"], "index": index}


class TestSeedDerivation:
    def test_trial_seed_matches_historical_derivation(self):
        """Runners must use the same seeds run_trials always derived."""
        assert trial_seed(7, "E1", 3) == derive_seed(7, "E1", 3)

    def test_trial_seeds_vector_matches_scalar(self):
        assert trial_seeds(11, "X", 5) == [trial_seed(11, "X", i) for i in range(5)]


class TestSerialRunner:
    def test_result_structure_and_seeds(self):
        result = SerialTrialRunner().run("exp", _cheap_trial, 4, base_seed=9, config={"k": 1})
        assert result.num_trials == 4
        assert result.config == {"k": 1}
        for index, trial in enumerate(result.trials):
            assert trial.trial_index == index
            assert trial.seed == trial_seed(9, "exp", index)
            assert trial["seed_echo"] == trial.seed

    def test_rejects_zero_trials(self):
        with pytest.raises(ExperimentError):
            SerialTrialRunner().run("exp", _cheap_trial, 0)

    def test_rejects_non_mapping_measurements(self):
        with pytest.raises(ExperimentError, match="must return a mapping"):
            SerialTrialRunner().run("exp", _bad_trial, 1)


class TestParallelRunner:
    def test_identical_results_to_serial(self):
        """The acceptance criterion: equal ExperimentResults for equal seeds."""
        serial = SerialTrialRunner().run("par", _cheap_trial, 8, base_seed=4, config={"a": 2})
        runner = ParallelTrialRunner(jobs=3)
        parallel = runner.run("par", _cheap_trial, 8, base_seed=4, config={"a": 2})
        assert runner.last_fallback_reason is None, "expected the pool to be used"
        assert serial.to_dict() == parallel.to_dict()

    def test_unpicklable_trial_falls_back_to_serial_with_equal_results(self):
        captured = 3

        def closure_trial(seed, trial_index):
            return {"value": (seed + trial_index) % captured}

        runner = ParallelTrialRunner(jobs=2)
        parallel = runner.run("fb", closure_trial, 5, base_seed=1)
        assert runner.last_fallback_reason is not None
        assert "picklable" in runner.last_fallback_reason
        serial = SerialTrialRunner().run("fb", closure_trial, 5, base_seed=1)
        assert serial.to_dict() == parallel.to_dict()

    def test_single_job_short_circuits_without_pool(self):
        runner = ParallelTrialRunner(jobs=1)
        result = runner.run("one", _cheap_trial, 3, base_seed=2)
        assert runner.last_fallback_reason is not None
        assert result.num_trials == 3

    def test_more_jobs_than_trials_is_fine(self):
        runner = ParallelTrialRunner(jobs=64)
        result = runner.run("few", _cheap_trial, 2, base_seed=6)
        assert result.to_dict() == SerialTrialRunner().run("few", _cheap_trial, 2, base_seed=6).to_dict()

    def test_worker_exception_propagates(self):
        with pytest.raises(ExperimentError, match="must return a mapping"):
            ParallelTrialRunner(jobs=2).run("bad", _bad_trial, 4, base_seed=0)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            ParallelTrialRunner(jobs=-2)


class TestResolveRunner:
    def test_none_and_one_mean_serial(self):
        assert isinstance(resolve_runner(None), SerialTrialRunner)
        assert isinstance(resolve_runner(1), SerialTrialRunner)

    def test_zero_means_all_cpus(self):
        runner = resolve_runner(0)
        assert isinstance(runner, ParallelTrialRunner)
        assert runner.jobs is None
        assert runner.effective_jobs >= 1

    def test_explicit_worker_count(self):
        runner = resolve_runner(5)
        assert isinstance(runner, ParallelTrialRunner)
        assert runner.jobs == 5

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_runner(-1)


class TestRunTrialsIntegration:
    def test_run_trials_accepts_runner(self):
        """run_trials(runner=...) routes through the given runner."""
        from repro.analysis.experiments import run_trials

        default = run_trials("rt", _cheap_trial, 4, base_seed=5)
        parallel = run_trials("rt", _cheap_trial, 4, base_seed=5, runner=ParallelTrialRunner(jobs=2))
        assert default.to_dict() == parallel.to_dict()

    def test_run_sweep_accepts_runner(self):
        """run_sweep(runner=...) produces identical sweeps, through the real pool."""
        from repro.analysis.sweeps import run_sweep

        points = [{"scale": 1.0}, {"scale": 2.5}]
        serial = run_sweep("sw", points, _sweep_trial, trials_per_point=3, base_seed=8)
        runner = ParallelTrialRunner(jobs=2)
        parallel = run_sweep(
            "sw", points, _sweep_trial, trials_per_point=3, base_seed=8, runner=runner
        )
        assert runner.last_fallback_reason is None, "point-bound trials must be picklable"
        assert serial.to_dict() == parallel.to_dict()
