"""Differential tests for the batched baseline-protocol path (E7 family).

Pins the determinism contract of :func:`repro.exec.batching.run_baseline_batch`
against the serial protocol classes in :mod:`repro.protocols`: exact equality
wherever the model is deterministic (round budgets, sampling schedules,
noiseless dynamics) and distributional agreement for the stochastic
observables (success, final fraction, messages) — the batch consumes one
batch-level random stream instead of one stream tree per engine, which is the
documented RNG-consumption-order caveat.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.exec.batching import (
    batchable_baselines,
    run_baseline_batch,
    run_sweep_batched,
)
from repro.protocols.direct_source import DirectSourceReference
from repro.protocols.naive_forward import ImmediateForwardingBroadcast
from repro.protocols.noisy_voter import NoisyVoterBroadcast
from repro.substrate.engine import SimulationEngine
from repro.substrate.noise import PerfectChannel


def _serial_runs(protocol_factory, n, epsilon, seeds, channel=None):
    results = []
    for seed in seeds:
        engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed, channel=channel)
        results.append(protocol_factory().run(engine, correct_opinion=1))
    return results


class TestDispatch:
    def test_batchable_baselines_lists_the_e7_and_e11_family(self):
        assert batchable_baselines() == [
            "direct-source-reference",
            "immediate-forwarding",
            "noisy-voter",
            "silent-wait",
        ]

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ExperimentError, match="not a registered protocol"):
            run_baseline_batch("teleportation", n=100, epsilon=0.3, num_replicates=2)

    def test_registered_but_unbatched_protocol_rejected(self):
        """A real registry name without a step rule fails with a distinct message."""
        with pytest.raises(ExperimentError, match="no batched step rule"):
            run_baseline_batch("three-state-majority", n=100, epsilon=0.3, num_replicates=2)

    def test_unrecognised_option_rejected_per_protocol(self):
        """`rounds` belongs to the direct-source reference, not the voter."""
        with pytest.raises(ExperimentError, match="unrecognised option"):
            run_baseline_batch("noisy-voter", n=100, epsilon=0.3, num_replicates=2, rounds=5)

    def test_none_options_mean_protocol_default(self):
        batch = run_baseline_batch(
            "immediate-forwarding", n=100, epsilon=0.3, num_replicates=2, max_rounds=None
        )
        assert batch.rounds[0] == ImmediateForwardingBroadcast().run(
            SimulationEngine.create(n=100, epsilon=0.3, seed=0), correct_opinion=1
        ).rounds

    def test_rejects_zero_replicates(self):
        with pytest.raises(ExperimentError):
            run_baseline_batch("noisy-voter", n=100, epsilon=0.3, num_replicates=0)

    def test_deterministic_for_fixed_base_seed(self):
        kwargs = dict(n=150, epsilon=0.3, num_replicates=4, base_seed=9)
        first = run_baseline_batch("immediate-forwarding", **kwargs)
        second = run_baseline_batch("immediate-forwarding", **kwargs)
        assert np.array_equal(first.final_correct_fraction, second.final_correct_fraction)
        assert np.array_equal(first.messages_sent, second.messages_sent)
        different = run_baseline_batch("immediate-forwarding", n=150, epsilon=0.3, num_replicates=4, base_seed=10)
        assert not np.array_equal(first.messages_sent, different.messages_sent)


class TestForwardingDifferential:
    def test_round_budget_exactly_matches_serial(self):
        """The forwarding budget is fixed by n: batch rounds == serial rounds."""
        serial = _serial_runs(ImmediateForwardingBroadcast, 250, 0.3, range(3))
        batch = run_baseline_batch("immediate-forwarding", n=250, epsilon=0.3, num_replicates=3)
        assert {r.rounds for r in serial} == {int(batch.rounds[0])}
        assert np.all(batch.rounds == serial[0].rounds)

    def test_statistical_agreement_with_serial(self):
        """Success/final-fraction/messages agree with the serial protocol
        (same dynamics, different stream — the documented caveat)."""
        n, epsilon, R = 400, 0.2, 8
        serial = _serial_runs(ImmediateForwardingBroadcast, n, epsilon, range(R))
        batch = run_baseline_batch("immediate-forwarding", n=n, epsilon=epsilon, num_replicates=R)
        # Section 1.6: both paths hover near the coin flip, far from consensus.
        assert 0.3 < batch.final_correct_fraction.mean() < 0.8
        assert 0.3 < np.mean([r.final_correct_fraction for r in serial]) < 0.8
        assert batch.success.mean() == np.mean([r.success for r in serial]) == 0.0
        serial_messages = np.mean([r.messages_sent for r in serial])
        assert batch.messages_sent.mean() == pytest.approx(serial_messages, rel=0.1)
        # The rumor reaches everyone on both paths (reach is the easy part).
        assert batch.converged.all() and all(r.converged for r in serial)

    def test_noiseless_forwarding_is_all_correct(self):
        """With a perfect channel only correct bits circulate — exact equality."""
        serial = _serial_runs(
            ImmediateForwardingBroadcast, 120, 0.5, range(2), channel=PerfectChannel()
        )
        batch = run_baseline_batch(
            "immediate-forwarding", n=120, epsilon=0.5, num_replicates=4, channel=PerfectChannel()
        )
        assert batch.success.all() and all(r.success for r in serial)
        assert np.all(batch.final_correct_fraction == 1.0)


class TestVoterDifferential:
    def test_budget_exhaustion_matches_serial_under_noise(self):
        """Under noise the voter never converges: rounds == budget on both
        paths, and neither path fakes a convergence round."""
        n, epsilon, R, budget = 300, 0.2, 5, 80
        serial = _serial_runs(
            lambda: NoisyVoterBroadcast(max_rounds=budget), n, epsilon, range(R)
        )
        batch = run_baseline_batch(
            "noisy-voter", n=n, epsilon=epsilon, num_replicates=R, max_rounds=budget
        )
        assert all(r.rounds == budget and not r.converged for r in serial)
        assert np.all(batch.rounds == budget)
        assert not batch.converged.any()
        assert batch.measurements(0)["rounds_converged"] is None
        # The population bias sits at the noise floor on both paths.
        assert abs(batch.final_correct_fraction.mean() - 0.5) < 0.15
        assert abs(np.mean([r.final_correct_fraction for r in serial]) - 0.5) < 0.15

    def test_noiseless_voter_converges_on_both_paths(self):
        """Without noise only the zealot's bit circulates, so the dynamics
        lock onto it; both paths stop at a consensus check, not the budget."""
        n, R = 80, 4
        serial = _serial_runs(
            lambda: NoisyVoterBroadcast(max_rounds=2000), n, 0.5, range(R), channel=PerfectChannel()
        )
        batch = run_baseline_batch(
            "noisy-voter", n=n, epsilon=0.5, num_replicates=R, channel=PerfectChannel()
        )
        assert batch.converged.all() and all(r.converged for r in serial)
        assert batch.success.all() and all(r.success for r in serial)
        # Convergence is only detected on check_every boundaries, exactly as serially.
        assert np.all(batch.rounds % 16 == 0)
        assert all(r.rounds % 16 == 0 for r in serial)
        assert batch.rounds.mean() == pytest.approx(np.mean([r.rounds for r in serial]), rel=0.5)


class TestDirectSourceDifferential:
    def test_sampling_schedule_exactly_matches_serial(self):
        """The sampling budget is fixed by (n, epsilon): batch == serial."""
        serial = _serial_runs(DirectSourceReference, 250, 0.3, range(3))
        batch = run_baseline_batch("direct-source-reference", n=250, epsilon=0.3, num_replicates=3)
        assert np.all(batch.rounds == serial[0].rounds)
        assert np.all(batch.messages_sent == serial[0].messages_sent)

    def test_statistical_agreement_with_serial(self):
        n, epsilon, R = 300, 0.3, 6
        serial = _serial_runs(DirectSourceReference, n, epsilon, range(R))
        batch = run_baseline_batch("direct-source-reference", n=n, epsilon=epsilon, num_replicates=R)
        assert batch.success.all() and all(r.success for r in serial)
        serial_first = [r.extra["first_all_correct_round"] for r in serial]
        assert all(first is not None for first in serial_first)
        batch_first = batch.extra["rounds_to_all_correct"]
        assert not np.isnan(batch_first).any()
        assert batch_first.mean() == pytest.approx(np.mean(serial_first), rel=0.5)

    def test_never_converged_replicates_report_none_not_budget(self):
        """With a tiny sampling budget the running majority cannot go
        all-correct; the measurement is None, never the budget in disguise."""
        batch = run_baseline_batch(
            "direct-source-reference", n=200, epsilon=0.1, num_replicates=3, rounds=1
        )
        assert np.isnan(batch.extra["rounds_to_all_correct"]).all()
        measurements = batch.measurements(0)
        assert measurements["rounds_to_all_correct"] is None
        assert measurements["all_correct"] is False
        assert measurements["rounds"] == 1


class TestBaselineSweepShape:
    def test_auto_detects_baseline_points(self):
        sweep = run_sweep_batched(
            name="B",
            points=[{"protocol": "immediate-forwarding"}],
            trials_per_point=2,
            base_seed=0,
            defaults={"n": 150, "epsilon": 0.3},
        )
        measurements = sweep.results[0].trials[0].measurements
        assert {"rounds", "success", "converged", "fraction"} <= set(measurements)

    def test_forwards_protocol_options_and_coerces(self):
        sweep = run_sweep_batched(
            name="B",
            points=[{"protocol": "noisy-voter", "max_rounds": 32.0}],
            trials_per_point=2,
            base_seed=0,
            defaults={"n": 150, "epsilon": 0.3},
            shape="baseline",
        )
        assert sweep.results[0].mean("rounds") == 32

    def test_requires_protocol_when_forced_baseline(self):
        with pytest.raises(ExperimentError, match="must define"):
            run_sweep_batched(
                name="B",
                points=[{"n": 150}],
                trials_per_point=2,
                defaults={"epsilon": 0.3},
                shape="baseline",
            )

    def test_unrecognised_setting_raises(self):
        with pytest.raises(ExperimentError, match="unrecognised"):
            run_sweep_batched(
                name="B",
                points=[{"protocol": "noisy-voter", "turbo": True}],
                trials_per_point=2,
                defaults={"n": 150, "epsilon": 0.3},
            )

    def test_point_jobs_is_bit_identical_to_in_process(self):
        kwargs = dict(
            name="B",
            points=[{"protocol": "immediate-forwarding"}, {"protocol": "noisy-voter", "max_rounds": 24}],
            trials_per_point=2,
            base_seed=5,
            defaults={"n": 150, "epsilon": 0.3},
        )
        in_process = run_sweep_batched(**kwargs)
        pooled = run_sweep_batched(point_jobs=2, **kwargs)
        assert [r.to_dict() for r in pooled.results] == [
            r.to_dict() for r in in_process.results
        ]


class TestE7DriverBatchMode:
    def test_e7_batch_report_matches_serial_schedule(self):
        """E7 in batch mode reproduces the schedule-determined columns exactly
        and applies the same never-converged convention as the serial driver."""
        from repro.experiments import e7_baselines

        kwargs = dict(n=300, epsilons=(0.3,), trials=2, voter_rounds=48)
        serial = e7_baselines.run(**kwargs)
        batched = e7_baselines.run(batch=True, **kwargs)
        serial_rows = {row["protocol"]: row for row in serial.rows}
        batched_rows = {row["protocol"]: row for row in batched.rows}
        assert list(serial_rows) == list(batched_rows)
        # Schedule-fixed round columns are exactly equal.
        for protocol in ("breathe-before-speaking", "immediate-forwarding"):
            assert batched_rows[protocol]["mean_rounds"] == serial_rows[protocol]["mean_rounds"]
        # The voter exhausts its budget on both paths: NaN rounds, rate 0.
        for rows in (serial_rows, batched_rows):
            assert np.isnan(rows["noisy-voter"]["mean_rounds"])
            assert rows["noisy-voter"]["all_correct_rate"] == 0.0
            assert rows["direct-source-reference"]["all_correct_rate"] == 1.0

    def test_e7_batch_point_jobs_identical(self):
        from repro.experiments import e7_baselines

        kwargs = dict(n=250, epsilons=(0.3,), trials=2, voter_rounds=32, batch=True)
        in_process = e7_baselines.run(**kwargs)
        pooled = e7_baselines.run(point_jobs=2, **kwargs)
        assert _rows_equal(in_process.rows, pooled.rows)

    def test_e7_serial_point_jobs_identical(self):
        """point_jobs is honoured on the non-batch path too (bit-identical)."""
        from repro.experiments import e7_baselines

        kwargs = dict(n=250, epsilons=(0.3,), trials=2, voter_rounds=32)
        serial = e7_baselines.run(**kwargs)
        pooled = e7_baselines.run(point_jobs=2, **kwargs)
        assert _rows_equal(serial.rows, pooled.rows)


def _rows_equal(left_rows, right_rows):
    """Row-list equality that treats NaN cells as equal (NaN != NaN)."""
    if len(left_rows) != len(right_rows):
        return False
    for left, right in zip(left_rows, right_rows):
        if set(left) != set(right):
            return False
        for key in left:
            left_value, right_value = left[key], right[key]
            both_nan = (
                isinstance(left_value, float)
                and isinstance(right_value, float)
                and np.isnan(left_value)
                and np.isnan(right_value)
            )
            if not both_nan and left_value != right_value:
                return False
    return True
