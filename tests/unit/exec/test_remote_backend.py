"""Integration tests for the remote worker backend and ``python -m repro.worker``.

Exercises the real :class:`multiprocessing.managers` queue server three
ways: auto-spawned localhost worker subprocesses (the ``--backend remote``
convenience path), an in-thread :func:`repro.worker.run_worker` attached as
an external worker, and the cross-backend golden-digest differential that
pins the ISSUE's acceptance criterion — all three backends produce
bit-identical run artifacts for the same spec and seed.
"""

from __future__ import annotations

import math
import pathlib
import sys
import threading

import pytest

# The golden-grid helpers live one directory up (tests/unit is not a package).
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro.errors import ExperimentError
from repro.exec.backends import RemoteWorkerBackend, Task, run_task
from repro.exec.backends.remote import parse_endpoint
from repro.worker import build_parser, run_worker


def _hypot_tasks(count):
    """Tasks over a stdlib function: importable from spawned worker processes."""
    return [
        Task(fn=math.hypot, args=(i, 2 * i), context=(("point", f"p{i}"), ("seed", i)))
        for i in range(count)
    ]


def _raising_task(seed, index):
    raise ValueError(f"bad trial {index}")


class TestParseEndpoint:
    def test_parses_host_and_port(self):
        assert parse_endpoint("127.0.0.1:7777") == ("127.0.0.1", 7777)
        assert parse_endpoint("::1:0") == ("::1", 0)  # IPv6-ish host keeps colons

    def test_rejects_malformed_endpoints(self):
        with pytest.raises(ExperimentError, match="HOST:PORT"):
            parse_endpoint("7777")
        with pytest.raises(ExperimentError, match="integer"):
            parse_endpoint("host:abc")


class TestWorkerCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["--endpoint", "h:1"])
        assert args.endpoint == "h:1"
        assert args.authkey is None and args.worker_id is None
        assert args.heartbeat_interval == 2.0 and args.max_chunks is None

    def test_endpoint_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRemoteWorkerBackend:
    def test_spawned_workers_produce_ordered_results_across_submits(self):
        tasks = _hypot_tasks(10)
        expected = [run_task(task) for task in tasks]
        with RemoteWorkerBackend(workers=2, chunk_size=3, startup_timeout=30) as backend:
            assert backend.address is not None
            first = backend.submit(tasks)
            second = backend.submit(tasks)  # the queue server is reused
            summary = backend.describe()
        assert first == expected and second == expected
        assert summary["workers_spawned"] == 2
        assert summary["chunks_dispatched"] == 8  # 2 submits x ceil(10/3)

    def test_external_worker_attaches_via_run_worker(self):
        """The `python -m repro.worker` loop, run in-thread against a live server."""
        tasks = _hypot_tasks(4)
        expected = [run_task(task) for task in tasks]
        with RemoteWorkerBackend(workers=0, chunk_size=2, startup_timeout=30) as backend:
            executed = {}
            thread = threading.Thread(
                target=lambda: executed.setdefault(
                    "chunks",
                    run_worker(
                        backend.address,
                        authkey=backend.authkey,
                        worker_id="external-1",
                        heartbeat_interval=0.1,
                        max_chunks=2,
                        poll=0.05,
                    ),
                ),
                daemon=True,
            )
            thread.start()
            results = backend.submit(tasks)
            thread.join(timeout=10)
        assert results == expected
        assert executed["chunks"] == 2

    def test_task_error_on_a_worker_is_labelled_and_immediate(self):
        """An in-task exception aborts with the task's index, point and seed."""
        tasks = [
            Task(fn=math.hypot, args=(1.0, 1.0), context=(("point", "ok"),)),
            Task(
                fn=_raising_task,
                args=(7, 1),
                context=(("point", "E8[bad]"), ("seed", 7)),
            ),
        ]
        with RemoteWorkerBackend(workers=0, chunk_size=1, startup_timeout=30) as backend:
            thread = threading.Thread(
                target=run_worker,
                args=(backend.address,),
                kwargs={
                    "authkey": backend.authkey,
                    "worker_id": "w-err",
                    "max_chunks": 2,
                    "poll": 0.05,
                },
                daemon=True,
            )
            thread.start()
            with pytest.raises(ExperimentError) as excinfo:
                backend.submit(tasks)
            thread.join(timeout=10)
        message = str(excinfo.value)
        assert "task 1 (point='E8[bad]', seed=7)" in message
        assert "worker 'w-err'" in message
        assert "ValueError: bad trial 1" in message

    def test_negative_workers_rejected(self):
        with pytest.raises(ExperimentError, match="non-negative"):
            RemoteWorkerBackend(workers=-1)

    def test_authkey_is_random_per_backend_by_default(self):
        assert RemoteWorkerBackend().authkey != RemoteWorkerBackend().authkey
        assert RemoteWorkerBackend(authkey="pinned").authkey == "pinned"

    def test_non_loopback_endpoint_requires_an_explicit_authkey(self):
        with pytest.raises(ExperimentError, match="explicit authkey"):
            RemoteWorkerBackend(endpoint="0.0.0.0:7777")
        RemoteWorkerBackend(endpoint="0.0.0.0:7777", authkey="secret")  # ok

    def test_worker_requires_an_authkey(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKER_AUTHKEY", raising=False)
        with pytest.raises(ExperimentError, match="REPRO_WORKER_AUTHKEY"):
            run_worker("127.0.0.1:1")

    def test_close_stops_every_external_worker_cleanly(self):
        """Each attached worker gets a stop sentinel and exits without a crash."""
        with RemoteWorkerBackend(workers=0, chunk_size=1, startup_timeout=30) as backend:
            threads = [
                threading.Thread(
                    target=run_worker,
                    args=(backend.address,),
                    kwargs={
                        "authkey": backend.authkey,
                        "worker_id": f"fleet-{i}",
                        "poll": 0.05,
                    },
                    daemon=True,
                )
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            results = backend.submit(_hypot_tasks(6))
        assert results == [run_task(task) for task in _hypot_tasks(6)]
        for thread in threads:
            # close() enqueued one sentinel per worker seen (and workers
            # re-queue it on exit), so both loops end instead of blocking
            # or dying on the shut-down proxy connection.
            thread.join(timeout=10)
            assert not thread.is_alive()

    def test_submits_stay_bit_identical_while_workers_come_and_go(self):
        """Worker churn between submits must not leak state across dispatches.

        A short-lived worker drops out after one chunk; a steady one keeps
        stealing across both submits on the same reused queue pair — each
        submit is its own generation, so the second assembles exactly its
        own results.
        """
        tasks = _hypot_tasks(6)
        expected = [run_task(task) for task in tasks]
        with RemoteWorkerBackend(workers=0, chunk_size=1, startup_timeout=30) as backend:
            short_lived = threading.Thread(
                target=run_worker,
                args=(backend.address,),
                kwargs={
                    "authkey": backend.authkey,
                    "worker_id": "short-lived",
                    "heartbeat_interval": 0.1,
                    "max_chunks": 1,
                    "poll": 0.05,
                },
                daemon=True,
            )
            steady = threading.Thread(
                target=run_worker,
                args=(backend.address,),
                kwargs={
                    "authkey": backend.authkey,
                    "worker_id": "steady",
                    "heartbeat_interval": 0.1,
                    "poll": 0.05,
                },
                daemon=True,
            )
            short_lived.start()
            steady.start()
            first = backend.submit(tasks)
            second = backend.submit(tasks)
        # close() stopped the steady worker via its sentinel.
        short_lived.join(timeout=10)
        steady.join(timeout=10)
        assert not short_lived.is_alive() and not steady.is_alive()
        assert first == expected and second == expected

    def test_close_is_idempotent_and_start_rebinds(self):
        backend = RemoteWorkerBackend(workers=0)
        backend.close()  # never started: a no-op
        backend.start()
        first_address = backend.address
        backend.close()
        backend.close()
        assert backend.address is None
        backend.start()
        assert backend.address is not None and backend.address != first_address
        backend.close()


class TestCrossBackendGoldenDigest:
    """The acceptance pin: bit-identical artifacts on every backend."""

    E8_TOY = dict(n=60, epsilon=0.3, set_sizes=(10, 16), biases=(0.2,), trials=3, base_seed=11)

    def test_all_three_backends_match_the_serial_digest(self):
        from _golden_grid import grid_digest

        from repro.api import ExecutionConfig

        reference = grid_digest("E8", False, self.E8_TOY)
        configs = {
            "in-process": ExecutionConfig(backend="in-process"),
            "local": ExecutionConfig(backend="local", backend_options={"workers": 2}),
            "remote": ExecutionConfig(
                backend="remote", backend_options={"workers": 2, "chunk_size": 1}
            ),
        }
        digests = {
            name: grid_digest("E8", False, self.E8_TOY, config=config)
            for name, config in configs.items()
        }
        assert digests == {name: reference for name in configs}
