"""Differential tests for the instrumented stage kernels.

The contract (module docstring of :mod:`repro.exec.stage_batching`, and
``docs/ARCHITECTURE.md``): every *deterministic* observable of the serial
stage executors — the phase schedule, per-phase round counts, phase-0 sender
counts, schedule-fixed message counts, conservation identities, error
behaviour — is bit-identical between :func:`execute_stage_one` /
:func:`execute_stage_two` and their batched counterparts, for every seed and
``start_phase`` offset; the stochastic observables agree in distribution
(the batch consumes one batch-level stream).  Composition with the
protocol-level simulators is pinned bit-for-bit: ``run_broadcast_batch`` is
exactly ``source state -> run_stage1_batch -> run_stage2_batch`` on the same
stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.majority import MajorityInstance, compute_start_phase
from repro.core.parameters import ProtocolParameters, StageOneParameters
from repro.core.schedule import build_stage1_schedule, build_stage2_schedule
from repro.core.stage1 import ReceptionAccumulator, execute_stage_one
from repro.core.stage2 import SampleAccumulator, execute_stage_two
from repro.core.synchronizer import default_guard, run_with_bounded_skew
from repro.errors import SimulationError
from repro.exec.batching import run_baseline_batch, run_broadcast_batch
from repro.exec.stage_batching import (
    BatchState,
    population_bias_grid,
    run_bounded_skew_batch,
    run_clock_free_batch,
    run_stage1_batch,
    run_stage1_instrumented,
    run_stage2_batch,
    run_stage2_instrumented,
    seeded_batch_state,
    source_batch_state,
)
from repro.exec import stage_batching
from repro.protocols.silent_wait import SilentWaitBroadcast
from repro.substrate.engine import SimulationEngine
from repro.substrate.network import PushGossipNetwork
from repro.substrate.noise import BinarySymmetricChannel
from repro.substrate.population import NO_OPINION
from repro.substrate.rng import spawn_generator

N = 240
EPSILON = 0.3
SEEDS = range(12)


def _parameters(n: int = N, epsilon: float = EPSILON) -> ProtocolParameters:
    return ProtocolParameters.calibrated(n, epsilon)


def _serial_stage1(seed: int, parameters: StageOneParameters, n: int = N, epsilon: float = EPSILON):
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed)
    engine.population.set_source_opinion(1)
    return execute_stage_one(engine, parameters, correct_opinion=1)


class TestStageOneDifferential:
    def test_schedule_and_deterministic_observables_exactly_match_serial(self):
        """Phase indices, per-phase rounds, phase-0 senders and phase-0
        messages are deterministic given the parameters, so they must be
        bit-identical to the serial executor — for every seed."""
        parameters = _parameters().stage1
        serial = [_serial_stage1(seed, parameters) for seed in SEEDS]
        batch = run_stage1_instrumented(N, EPSILON, len(list(SEEDS)), base_seed=1, parameters=parameters)

        assert batch.rounds == serial[0].rounds
        assert [phase.phase for phase in batch.phases] == [
            summary.phase for summary in serial[0].phases
        ]
        assert [phase.rounds for phase in batch.phases] == [
            summary.rounds for summary in serial[0].phases
        ]
        # Phase 0: only the source speaks, in every replicate of both paths.
        phase0 = batch.phase(0)
        assert np.all(phase0.senders == 1)
        assert all(result.phase(0).senders == 1 for result in serial)
        assert np.all(phase0.messages_sent == parameters.beta_s)
        assert all(result.phase(0).messages_sent == parameters.beta_s for result in serial)

    def test_conservation_identities_hold_per_replicate(self):
        """X_i = X_{i-1} + Y_i and Z_i <= Y_i, exactly as serially."""
        parameters = _parameters().stage1
        batch = run_stage1_instrumented(N, EPSILON, 8, base_seed=3, parameters=parameters)
        previous = np.ones(8, dtype=np.int64)  # the source is activated up front
        for phase in batch.phases:
            assert np.all(phase.activated_total == previous + phase.newly_activated)
            assert np.all(phase.newly_correct <= phase.newly_activated)
            previous = phase.activated_total
        assert np.all(batch.phases[-1].activated_total <= N)

    def test_stochastic_observables_agree_with_serial_in_distribution(self):
        parameters = _parameters().stage1
        serial = [_serial_stage1(seed, parameters) for seed in range(20)]
        batch = run_stage1_instrumented(N, EPSILON, 20, base_seed=5, parameters=parameters)

        serial_x0 = np.mean([result.phase(0).activated_total for result in serial])
        batch_x0 = batch.phase(0).activated_total.mean()
        assert batch_x0 == pytest.approx(serial_x0, rel=0.25)

        serial_final = np.mean([result.final_bias for result in serial])
        assert batch.final_bias.mean() == pytest.approx(serial_final, abs=0.1)
        assert batch.all_activated.mean() == pytest.approx(
            np.mean([result.all_activated for result in serial]), abs=0.35
        )

    def test_messages_equal_senders_times_rounds_like_serial(self):
        parameters = _parameters().stage1
        batch = run_stage1_instrumented(N, EPSILON, 6, base_seed=11, parameters=parameters)
        total = np.zeros(6, dtype=np.int64)
        for phase in batch.phases:
            assert np.all(phase.messages_sent == phase.senders * phase.rounds)
            total += phase.messages_sent
        assert np.array_equal(batch.messages_sent, total)

    def test_repeatability_is_bit_identical(self):
        parameters = _parameters().stage1
        first = run_stage1_instrumented(N, EPSILON, 5, base_seed=7, parameters=parameters)
        second = run_stage1_instrumented(N, EPSILON, 5, base_seed=7, parameters=parameters)
        assert np.array_equal(first.final_bias, second.final_bias)
        assert np.array_equal(first.messages_sent, second.messages_sent)
        for phase_a, phase_b in zip(first.phases, second.phases):
            assert np.array_equal(phase_a.activated_total, phase_b.activated_total)
            assert np.array_equal(phase_a.bias_of_new, phase_b.bias_of_new)

    @pytest.mark.parametrize("initial_set_size", [20, 60])
    def test_start_phase_offsets_match_serial_exactly(self, initial_set_size):
        """Corollary 2.18: entering Stage I at phase i_A produces the same
        (shorter) phase schedule and round count as the serial executor."""
        parameters = _parameters()
        start_phase = compute_start_phase(parameters, initial_set_size)

        engine = SimulationEngine.create(n=N, epsilon=EPSILON, seed=3, source=None)
        instance = MajorityInstance.generate(
            n=N, size=initial_set_size, bias=0.2, majority_opinion=1,
            rng=engine.random.stream("seeding"),
        )
        engine.population.seed_opinionated_set(instance.members, instance.opinions)
        serial = execute_stage_one(
            engine, parameters.stage1, correct_opinion=1, start_phase=start_phase
        )

        rng = spawn_generator(9, "test-start-phase", N)
        state = seeded_batch_state(N, 4, initial_set_size, 0.2, 1, rng)
        network = PushGossipNetwork(size=N)
        channel = BinarySymmetricChannel(epsilon=EPSILON)
        batch = run_stage1_batch(
            state, network, channel, rng, parameters.stage1, 1, start_phase=start_phase
        )

        assert [phase.phase for phase in batch.phases] == [
            summary.phase for summary in serial.phases
        ]
        assert batch.rounds == serial.rounds

    def test_no_opinionated_agents_raises_the_serial_error(self):
        """The degenerate case raises the same SimulationError on both paths."""
        parameters = _parameters().stage1
        engine = SimulationEngine.create(n=N, epsilon=EPSILON, seed=0, source=None)
        with pytest.raises(SimulationError, match="at least one initially opinionated"):
            execute_stage_one(engine, parameters, correct_opinion=1)

        state = BatchState(
            opinions=np.full((3, N), NO_OPINION, dtype=np.int8),
            activated=np.zeros((3, N), dtype=bool),
            messages_sent=np.zeros(3, dtype=np.int64),
        )
        network = PushGossipNetwork(size=N)
        channel = BinarySymmetricChannel(epsilon=EPSILON)
        rng = spawn_generator(0, "test-empty", N)
        with pytest.raises(SimulationError, match="at least one initially opinionated"):
            run_stage1_batch(state, network, channel, rng, parameters, 1)

    def test_minimal_population_runs_on_both_paths(self):
        """n=2 (the smallest population the substrate admits) must not crash."""
        parameters = StageOneParameters(beta_s=4, beta=2, beta_f=2, num_intermediate_phases=1)
        serial = _serial_stage1(1, parameters, n=2, epsilon=0.3)
        batch = run_stage1_instrumented(2, 0.3, 4, base_seed=1, parameters=parameters)
        assert batch.rounds == serial.rounds
        assert np.all(batch.phase(0).activated_total <= 2)


def _serial_stage2(seed: int, initial_bias: float, parameters, n: int = N, epsilon: float = EPSILON):
    engine = SimulationEngine.create(n=n, epsilon=epsilon, seed=seed, source=None)
    instance = MajorityInstance.generate(
        n=n, size=n, bias=initial_bias, majority_opinion=1, rng=engine.random.stream("seeding")
    )
    engine.population.seed_opinionated_set(instance.members, instance.opinions)
    return execute_stage_two(engine, parameters, correct_opinion=1)


class TestStageTwoDifferential:
    INITIAL_BIAS = 0.15

    def test_schedule_and_message_counts_exactly_match_serial(self):
        """The Stage-II schedule is fixed by the parameters, and with a fully
        opinionated population every agent sends every round — rounds and
        messages are therefore bit-identical to the serial executor."""
        parameters = _parameters().stage2
        serial = [_serial_stage2(seed, self.INITIAL_BIAS, parameters) for seed in SEEDS]
        batch = run_stage2_instrumented(
            N, EPSILON, len(list(SEEDS)), initial_bias=self.INITIAL_BIAS,
            base_seed=2, parameters=parameters,
        )
        assert batch.rounds == serial[0].rounds
        assert [phase.phase for phase in batch.phases] == [
            summary.phase for summary in serial[0].phases
        ]
        assert [phase.rounds for phase in batch.phases] == [
            summary.rounds for summary in serial[0].phases
        ]
        for phase, summary in zip(batch.phases, serial[0].phases):
            assert np.all(phase.messages_sent == summary.messages_sent)
        assert np.all(
            batch.messages_sent == serial[0].messages_sent
        ), "fully opinionated population: message counts are schedule-fixed"

    def test_initial_bias_is_realised_before_the_first_phase(self):
        parameters = _parameters().stage2
        batch = run_stage2_instrumented(
            N, EPSILON, 6, initial_bias=self.INITIAL_BIAS, base_seed=4, parameters=parameters
        )
        serial = _serial_stage2(0, self.INITIAL_BIAS, parameters)
        # counts_from_bias makes the seeded split deterministic on both paths.
        assert np.all(batch.phase(1).bias_before == serial.phase(1).bias_before)

    def test_boosting_trajectory_agrees_with_serial_in_distribution(self):
        parameters = _parameters().stage2
        serial = [_serial_stage2(seed, self.INITIAL_BIAS, parameters) for seed in range(10)]
        batch = run_stage2_instrumented(
            N, EPSILON, 10, initial_bias=self.INITIAL_BIAS, base_seed=6, parameters=parameters
        )
        serial_success = np.mean([result.consensus_reached for result in serial])
        assert batch.consensus_reached.mean() == pytest.approx(serial_success, abs=0.35)
        serial_bias1 = np.mean([result.phase(1).bias_after for result in serial])
        assert batch.phase(1).bias_after.mean() == pytest.approx(serial_bias1, abs=0.08)
        # The boost is real on both paths: final bias far above the seed bias.
        assert batch.final_bias.mean() > 2 * self.INITIAL_BIAS

    def test_repeatability_is_bit_identical(self):
        parameters = _parameters().stage2
        runs = [
            run_stage2_instrumented(
                N, EPSILON, 4, initial_bias=0.2, base_seed=8, parameters=parameters
            )
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].final_correct_fraction, runs[1].final_correct_fraction)
        for phase_a, phase_b in zip(runs[0].phases, runs[1].phases):
            assert np.array_equal(phase_a.successful_agents, phase_b.successful_agents)
            assert np.array_equal(phase_a.bias_after, phase_b.bias_after)


class TestCompositionBitIdentity:
    def test_broadcast_batch_is_exactly_stage1_then_stage2(self):
        """run_broadcast_batch == source state -> stage1 -> stage2 on the
        same stream: the protocol-level simulator and the instrumented
        kernels can never drift apart."""
        protocol = run_broadcast_batch(N, EPSILON, 7, base_seed=13)

        parameters = _parameters()
        rng = spawn_generator(13, "batch-broadcast", N)
        network = PushGossipNetwork(size=N)
        channel = BinarySymmetricChannel(epsilon=EPSILON)
        state = source_batch_state(N, 7, 1)
        stage1 = run_stage1_batch(state, network, channel, rng, parameters.stage1, 1)
        stage2 = run_stage2_batch(state, network, channel, rng, parameters.stage2, 1)

        assert protocol.rounds == stage1.rounds + stage2.rounds
        assert np.array_equal(protocol.stage1_bias, stage1.final_bias)
        assert np.array_equal(protocol.final_correct_fraction, stage2.final_correct_fraction)
        assert np.array_equal(protocol.success, stage2.consensus_reached)
        assert np.array_equal(protocol.messages_sent, stage1.messages_sent + stage2.messages_sent)

    def test_population_bias_grid_matches_population_bias(self):
        engine = SimulationEngine.create(n=50, epsilon=0.3, seed=1, source=None)
        instance = MajorityInstance.generate(
            n=50, size=30, bias=0.1, majority_opinion=1, rng=engine.random.stream("seeding")
        )
        engine.population.seed_opinionated_set(instance.members, instance.opinions)
        grid = np.full((1, 50), NO_OPINION, dtype=np.int8)
        grid[0, instance.members] = instance.opinions
        assert population_bias_grid(grid, 1)[0] == pytest.approx(engine.population.bias(1))


class TestWindowedBatch:
    def test_skew_one_rounds_are_exact(self):
        """With max_skew=1 every offset is 0, so the guarded schedule is the
        whole story: rounds are bit-identical to the serial executor."""
        parameters = _parameters()
        serial = run_with_bounded_skew(N, EPSILON, max_skew=1, seed=5, parameters=parameters)
        batch = run_bounded_skew_batch(N, EPSILON, 4, max_skew=1, base_seed=5, parameters=parameters)
        assert np.all(batch.rounds == serial.rounds)

    def test_bounded_skew_rounds_formula_matches_the_serial_clock(self):
        """rounds = dilated-stage2-schedule end + max offset, per replicate."""
        parameters = _parameters()
        max_skew = 16
        batch = run_bounded_skew_batch(
            N, EPSILON, 6, max_skew=max_skew, base_seed=21, parameters=parameters
        )
        stage1_schedule = build_stage1_schedule(parameters.stage1).dilated(max_skew)
        stage2_schedule = build_stage2_schedule(
            parameters.stage2, start_round=stage1_schedule.end
        ).dilated(max_skew)
        assert np.all(batch.rounds >= stage2_schedule.end)
        assert np.all(batch.rounds < stage2_schedule.end + max_skew)
        assert np.all(batch.skew < max_skew)

    def test_bounded_skew_success_and_messages_agree_with_serial(self):
        parameters = _parameters()
        serial = [
            run_with_bounded_skew(N, EPSILON, max_skew=8, seed=seed, parameters=parameters)
            for seed in range(4)
        ]
        batch = run_bounded_skew_batch(N, EPSILON, 8, max_skew=8, base_seed=3, parameters=parameters)
        assert batch.success.mean() == pytest.approx(
            np.mean([result.success for result in serial]), abs=0.5
        )
        serial_messages = np.mean([result.messages_sent for result in serial])
        assert batch.messages_sent.mean() == pytest.approx(serial_messages, rel=0.05)

    def test_clock_free_batch_mirrors_the_serial_protocol_shape(self):
        parameters = _parameters()
        batch = run_clock_free_batch(N, EPSILON, 4, base_seed=17, parameters=parameters)
        sync_rounds = parameters.total_rounds
        assert np.all(batch.rounds > sync_rounds), "guards and activation are additive overhead"
        assert np.all(batch.guard >= default_guard(N))
        assert np.all(batch.guard >= batch.skew)
        assert np.all(batch.activation_rounds >= 1)
        assert batch.success.mean() >= 0.5
        measurements = batch.measurements(0)
        assert set(measurements) >= {"rounds", "messages", "success", "skew"}

    def test_windowed_batch_is_repeatable(self):
        parameters = _parameters()
        runs = [
            run_clock_free_batch(N, EPSILON, 3, base_seed=19, parameters=parameters)
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].rounds, runs[1].rounds)
        assert np.array_equal(runs[0].messages_sent, runs[1].messages_sent)
        assert np.array_equal(runs[0].skew, runs[1].skew)


class TestSilentWaitBatch:
    N = 60
    THRESHOLD = 9

    def _serial(self, seed, epsilon=0.45):
        engine = SimulationEngine.create(n=self.N, epsilon=epsilon, seed=seed)
        return SilentWaitBroadcast(threshold=self.THRESHOLD).run(engine, correct_opinion=1)

    def test_statistical_agreement_with_serial(self):
        serial = [self._serial(seed) for seed in range(6)]
        batch = run_baseline_batch(
            "silent-wait", n=self.N, epsilon=0.45, num_replicates=12,
            base_seed=3, threshold=self.THRESHOLD,
        )
        serial_rounds = np.mean([result.rounds for result in serial])
        assert batch.rounds.mean() == pytest.approx(serial_rounds, rel=0.3)
        # At eps=0.45 the 9-sample majority is almost surely correct.
        assert batch.success.mean() >= 0.5
        assert np.all(batch.converged)
        serial_double = np.mean(
            [result.extra["first_round_with_two_messages"] for result in serial]
        )
        batch_double = batch.extra["first_round_with_two_messages"]
        assert batch_double.mean() == pytest.approx(serial_double, rel=0.8)
        assert batch_double.mean() < 4 * np.sqrt(self.N) * 2

    def test_budget_exhaustion_reports_converged_false(self):
        batch = run_baseline_batch(
            "silent-wait", n=self.N, epsilon=0.45, num_replicates=3,
            base_seed=5, threshold=self.THRESHOLD, max_rounds=10,
        )
        assert np.all(~batch.converged)
        assert np.all(batch.rounds == 10)
        assert not np.any(batch.success)

    def test_allow_self_messages_matches_the_serial_target_distribution(self):
        """Regression: the batched rule must honour allow_self_messages like
        PushGossipNetwork._draw_targets — self-addressed pushes are wasted on
        the already-decided source, so runs are measurably slower, on both
        paths alike."""
        def serial_mean(allow_self: bool) -> float:
            rounds = []
            for seed in range(5):
                engine = SimulationEngine.create(
                    n=self.N, epsilon=0.45, seed=seed, allow_self_messages=allow_self
                )
                rounds.append(
                    SilentWaitBroadcast(threshold=self.THRESHOLD)
                    .run(engine, correct_opinion=1)
                    .rounds
                )
            return float(np.mean(rounds))

        def batch_mean(allow_self: bool) -> float:
            batch = run_baseline_batch(
                "silent-wait", n=self.N, epsilon=0.45, num_replicates=20,
                base_seed=11, threshold=self.THRESHOLD,
                allow_self_messages=allow_self,
            )
            return float(batch.rounds.mean())

        assert batch_mean(True) > batch_mean(False), "self-messages must slow the batch path"
        assert batch_mean(True) == pytest.approx(serial_mean(True), rel=0.3)

    def test_measurements_carry_the_serial_extras(self):
        batch = run_baseline_batch(
            "silent-wait", n=self.N, epsilon=0.45, num_replicates=2,
            base_seed=7, threshold=self.THRESHOLD,
        )
        measurements = batch.measurements(0)
        assert measurements["threshold"] == self.THRESHOLD
        assert set(measurements) >= {
            "rounds", "success", "converged", "decided_fraction",
            "first_round_with_two_messages",
        }


class TestScratchBufferHoisting:
    """The micro-perf pin: per-phase scratch grids are allocated once per
    batch (reset by fill), and the serial accumulators never reallocate their
    buffers across phases."""

    def test_batch_stage1_allocates_its_reservoir_exactly_once(self, monkeypatch):
        parameters = StageOneParameters(beta_s=8, beta=4, beta_f=8, num_intermediate_phases=2)
        assert parameters.num_phases >= 3, "need a multi-phase run for the pin to mean anything"
        constructions = []
        original = stage_batching._ReservoirScratch.__init__

        def counting_init(self, shape):
            constructions.append(shape)
            original(self, shape)

        monkeypatch.setattr(stage_batching._ReservoirScratch, "__init__", counting_init)
        run_stage1_instrumented(N, EPSILON, 4, base_seed=1, parameters=parameters)
        assert constructions == [(4, N)]

    def test_batch_stage2_allocates_its_sampler_exactly_once(self, monkeypatch):
        parameters = _parameters().stage2
        assert parameters.num_phases >= 3
        constructions = []
        original = stage_batching._SampleScratch.__init__

        def counting_init(self, shape):
            constructions.append(shape)
            original(self, shape)

        monkeypatch.setattr(stage_batching._SampleScratch, "__init__", counting_init)
        run_stage2_instrumented(N, EPSILON, 4, initial_bias=0.2, base_seed=1, parameters=parameters)
        assert constructions == [(4, N)]

    def test_scratch_reset_reuses_the_same_buffers(self):
        scratch = stage_batching._ReservoirScratch((3, 7))
        heard, chosen = scratch.heard_counts, scratch.chosen
        heard[1, 2] = 5
        scratch.reset()
        assert scratch.heard_counts is heard and scratch.chosen is chosen
        assert heard[1, 2] == 0 and np.all(chosen == NO_OPINION)

        sampler = stage_batching._SampleScratch((3, 7))
        totals, ones = sampler.totals, sampler.ones
        sampler.reset()
        assert sampler.totals is totals and sampler.ones is ones

    def test_serial_accumulators_never_reallocate_across_phases(self):
        rng = np.random.default_rng(0)
        reception = ReceptionAccumulator(16)
        counts, chosen = reception._counts, reception._chosen
        for _ in range(5):  # five "phases"
            reception.observe(np.array([1, 2, 3]), np.array([1, 0, 1], dtype=np.int8), rng)
            reception.reset()
            assert reception._counts is counts and reception._chosen is chosen

        samples = SampleAccumulator(16)
        totals, ones = samples._total, samples._ones
        for _ in range(5):
            samples.observe(np.array([4, 5]), np.array([1, 1], dtype=np.int8))
            samples.reset()
            assert samples._total is totals and samples._ones is ones
