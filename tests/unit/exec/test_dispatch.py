"""Unit tests for the work-stealing dispatch loop (queue-protocol level).

:func:`repro.exec.backends.dispatch.dispatch_chunks` is written against two
plain queue objects precisely so this file can drive its whole failure
surface in-process: scripted ``queue.Queue`` messages for the ordering and
protocol tests, fake worker threads for the retry/eviction races.  The
:class:`~repro.exec.backends.remote.RemoteWorkerBackend` integration on real
subprocesses lives in ``test_remote_backend.py``.
"""

from __future__ import annotations

import queue
import threading
import time

import pytest

from repro.errors import ExperimentError
from repro.exec.backends import DispatchSettings, Task, chunk_tasks, dispatch_chunks, run_task
from repro.testing import chaos


def _add(a, b):
    return a + b


def _make_tasks(count):
    return [
        Task(fn=_add, args=(i, 10 * i), context=(("point", f"p{i}"), ("seed", 100 + i)))
        for i in range(count)
    ]


def _expected(tasks):
    return [run_task(task) for task in tasks]


def _settings(**overrides):
    base = dict(
        chunk_size=1,
        chunk_timeout=5.0,
        heartbeat_timeout=5.0,
        max_attempts=2,
        startup_timeout=5.0,
        poll=0.005,
    )
    base.update(overrides)
    return DispatchSettings(**base)


def _preloaded(messages):
    """A result queue with a scripted message sequence already enqueued."""
    result_queue = queue.Queue()
    for message in messages:
        result_queue.put(message)
    return result_queue


class TestChunking:
    def test_chunk_tasks_slices_with_offsets(self):
        tasks = _make_tasks(5)
        chunks = chunk_tasks(tasks, 2)
        assert [start for start, _ in chunks] == [0, 2, 4]
        assert [len(chunk) for _, chunk in chunks] == [2, 2, 1]
        assert chunks[1][1] == tuple(tasks[2:4])

    def test_settings_reject_degenerate_values(self):
        with pytest.raises(ExperimentError, match="chunk_size"):
            DispatchSettings(chunk_size=0)
        with pytest.raises(ExperimentError, match="max_attempts"):
            DispatchSettings(max_attempts=0)

    def test_empty_task_list_is_a_no_op(self):
        assert dispatch_chunks([], queue.Queue(), queue.Queue(), _settings()) == []


class TestOrderedAssembly:
    def test_shuffled_completion_order_still_assembles_in_task_order(self):
        """The adversarial case: chunks complete in an arbitrary order."""
        tasks = _make_tasks(6)
        settings = _settings(chunk_size=2)  # chunks 0:(0,1) 1:(2,3) 2:(4,5)
        values = {
            chunk_id: [run_task(task) for task in chunk]
            for chunk_id, (_, chunk) in enumerate(chunk_tasks(tasks, 2))
        }
        result_queue = _preloaded(
            [
                ("hello", "w1"),
                ("done", 0, 2, "w1", values[2]),
                ("done", 0, 0, "w1", values[0]),
                ("done", 0, 1, "w1", values[1]),
            ]
        )
        results = dispatch_chunks(tasks, queue.Queue(), result_queue, settings)
        assert results == _expected(tasks)

    def test_duplicate_done_messages_are_deduplicated(self):
        """A requeued chunk's late duplicate must not double-count."""
        tasks = _make_tasks(2)
        settings = _settings(chunk_size=1)
        result_queue = _preloaded(
            [
                ("hello", "w1"),
                ("done", 0, 0, "w1", [run_task(tasks[0])]),
                ("done", 0, 0, "w2", [run_task(tasks[0])]),  # duplicate, ignored
                ("done", 0, 1, "w2", [run_task(tasks[1])]),
            ]
        )
        results = dispatch_chunks(tasks, queue.Queue(), result_queue, settings)
        assert results == _expected(tasks)

    def test_stale_generation_messages_are_discarded(self):
        """Late replies from a previous dispatch must not touch this one.

        The regression this pins: a backend reuses one queue pair across
        submits, so after a requeue the losing worker's `done` can arrive
        during the *next* dispatch, whose chunk ids it must not corrupt.
        """
        tasks = _make_tasks(2)
        settings = _settings(chunk_size=1)
        result_queue = _preloaded(
            [
                ("hello", "w1"),
                ("done", 6, 0, "zombie", ["wrong-value"]),  # previous dispatch
                ("task-error", 6, 1, "zombie", 0, "stale boom"),  # must not abort
                ("ack", 6, 999, "zombie"),  # stale id beyond this chunk list
                ("done", 7, 0, "w1", [run_task(tasks[0])]),
                ("done", 7, 1, "w1", [run_task(tasks[1])]),
            ]
        )
        seen = set()
        results = dispatch_chunks(
            tasks, queue.Queue(), result_queue, settings, generation=7, workers_seen=seen
        )
        assert results == _expected(tasks)
        # Stale messages still prove their worker exists (liveness/shutdown).
        assert seen == {"w1", "zombie"}

    def test_chunks_are_tagged_with_the_dispatch_generation(self):
        tasks = _make_tasks(2)
        task_queue = queue.Queue()
        result_queue = _preloaded(
            [
                ("done", 3, 0, "w1", [run_task(tasks[0])]),
                ("done", 3, 1, "w1", [run_task(tasks[1])]),
            ]
        )
        dispatch_chunks(tasks, task_queue, result_queue, _settings(), generation=3)
        queued = [task_queue.get_nowait() for _ in range(2)]
        assert [(kind, generation) for kind, generation, _, _ in queued] == [("chunk", 3)] * 2

    def test_in_generation_chunk_id_out_of_range_is_a_protocol_error(self):
        tasks = _make_tasks(1)
        result_queue = _preloaded([("done", 0, 5, "w1", ["x"])])
        with pytest.raises(ExperimentError, match="chunk 5 outside"):
            dispatch_chunks(tasks, queue.Queue(), result_queue, _settings())

    def test_unknown_message_kind_is_a_protocol_error(self):
        tasks = _make_tasks(1)
        result_queue = _preloaded([("gibberish", "w1")])
        with pytest.raises(ExperimentError, match="unknown message 'gibberish'"):
            dispatch_chunks(tasks, queue.Queue(), result_queue, _settings())


class TestFailureTaxonomy:
    def test_in_task_error_aborts_with_the_global_task_label(self):
        """Deterministic failures are not retried; the error names the task."""
        tasks = _make_tasks(4)
        settings = _settings(chunk_size=2)
        result_queue = _preloaded(
            [
                ("hello", "w1"),
                ("task-error", 0, 1, "w1", 1, "ValueError: boom"),  # global index 3
            ]
        )
        with pytest.raises(ExperimentError) as excinfo:
            dispatch_chunks(tasks, queue.Queue(), result_queue, settings)
        message = str(excinfo.value)
        assert "task 3" in message
        assert "point='p3'" in message and "seed=103" in message
        assert "worker 'w1'" in message and "ValueError: boom" in message

    def test_abort_drains_orphaned_chunks_from_the_task_queue(self):
        """Workers must not keep pulling chunks of a dispatch that failed."""
        tasks = _make_tasks(4)
        settings = _settings(chunk_size=1)
        task_queue = queue.Queue()
        result_queue = _preloaded(
            [
                ("hello", "w1"),
                ("task-error", 0, 0, "w1", 0, "ValueError: boom"),
            ]
        )
        with pytest.raises(ExperimentError):
            dispatch_chunks(tasks, task_queue, result_queue, settings)
        assert task_queue.empty()  # chunks 1..3 were drained on abort

    def test_chunk_timeout_exhausting_attempts_names_the_chunk(self):
        """An acked chunk overrunning the opt-in budget is requeued; attempts cap."""
        tasks = _make_tasks(2)
        settings = _settings(chunk_size=2, chunk_timeout=0.02, max_attempts=1, poll=0.002)
        result_queue = _preloaded([("hello", "w1"), ("ack", 0, 0, "w1")])
        with pytest.raises(ExperimentError) as excinfo:
            dispatch_chunks(tasks, queue.Queue(), result_queue, settings)
        message = str(excinfo.value)
        assert "chunk 0" in message and "tasks 0..1" in message
        assert "timed out" in message and "exhausted its 1 attempts" in message
        assert "point='p0'" in message  # first task of the chunk is labelled

    def test_chunk_timeout_is_opt_in_and_off_by_default(self):
        """A slow-but-alive worker must never be preempted by a wall clock.

        With the default ``chunk_timeout=None`` the only requeue trigger is
        a stale heartbeat, so a chunk that takes arbitrarily long on a
        worker that keeps heartbeating executes exactly once.
        """
        assert DispatchSettings().chunk_timeout is None
        tasks = _make_tasks(1)
        settings = _settings(chunk_timeout=None, heartbeat_timeout=0.03, poll=0.002)
        task_queue, result_queue = queue.Queue(), queue.Queue()

        def slow_but_alive():
            _, generation, chunk_id, chunk = task_queue.get(timeout=1.0)
            result_queue.put(("ack", generation, chunk_id, "slow"))
            for _ in range(6):  # much longer than heartbeat_timeout, stay alive
                time.sleep(0.02)
                result_queue.put(("heartbeat", "slow"))
            result_queue.put(
                ("done", generation, chunk_id, "slow", [run_task(task) for task in chunk])
            )

        thread = threading.Thread(target=slow_but_alive, daemon=True)
        result_queue.put(("hello", "slow"))
        thread.start()
        results = dispatch_chunks(tasks, task_queue, result_queue, settings)
        thread.join(timeout=2)
        assert results == _expected(tasks)
        assert task_queue.empty()  # never requeued

    def test_startup_stall_raises_a_pointer_to_the_worker_command(self):
        tasks = _make_tasks(1)
        settings = _settings(startup_timeout=0.02, poll=0.002)
        with pytest.raises(ExperimentError, match="python -m repro.worker"):
            dispatch_chunks(tasks, queue.Queue(), queue.Queue(), settings)


class _FakeWorker(threading.Thread):
    """An in-process worker servicing the task queue with a scripted behaviour.

    ``behaviour(chunk_id, attempt) -> "complete" | "die"`` — ``die`` means
    "ack the chunk, then go silent forever" (the mid-chunk crash the
    dispatcher must recover from via heartbeat eviction).
    """

    def __init__(self, worker_id, task_queue, result_queue, behaviour, start_delay=0.0):
        super().__init__(daemon=True)
        self.worker_id = worker_id
        self.task_queue = task_queue
        self.result_queue = result_queue
        self.behaviour = behaviour
        self.start_delay = start_delay
        self.attempts_seen = {}
        self.completed = []

    def run(self):
        time.sleep(self.start_delay)
        while True:
            try:
                message = self.task_queue.get(timeout=1.0)
            except queue.Empty:
                return
            if message[0] == "stop":
                return
            _, generation, chunk_id, tasks = message
            attempt = self.attempts_seen.get(chunk_id, 0) + 1
            self.attempts_seen[chunk_id] = attempt
            self.result_queue.put(("ack", generation, chunk_id, self.worker_id))
            action = self.behaviour(chunk_id, attempt)
            if action == "die":
                return  # acked but never completes, never heartbeats again
            self.result_queue.put(
                ("done", generation, chunk_id, self.worker_id, [run_task(task) for task in tasks])
            )
            self.completed.append(chunk_id)


class TestRetryAndEviction:
    def test_worker_death_mid_chunk_requeues_once_and_results_are_identical(self):
        """The flaky worker acks chunk 0 and dies; the steady one steals it."""
        tasks = _make_tasks(4)
        settings = _settings(chunk_size=2, heartbeat_timeout=0.05, poll=0.005)
        task_queue, result_queue = queue.Queue(), queue.Queue()

        flaky = _FakeWorker(
            "flaky", task_queue, result_queue, lambda chunk_id, attempt: "die"
        )
        # The steady worker wakes only after the flaky one has grabbed (and
        # is sitting on) the first chunk, so the death/steal is deterministic.
        steady = _FakeWorker(
            "steady",
            task_queue,
            result_queue,
            lambda chunk_id, attempt: "complete",
            start_delay=0.03,
        )
        result_queue.put(("hello", "flaky"))
        result_queue.put(("hello", "steady"))
        flaky.start()
        steady.start()

        results = dispatch_chunks(tasks, task_queue, result_queue, settings)
        assert results == _expected(tasks)
        task_queue.put(("stop",))
        flaky.join(timeout=2)
        steady.join(timeout=2)
        # The flaky worker consumed exactly one chunk (then died); the steady
        # worker executed the other chunk plus the requeued copy.
        assert sum(flaky.attempts_seen.values()) == 1
        assert sorted(steady.completed) == [0, 1]

    def test_chaos_dropped_done_is_requeued_and_converges(self):
        """A completion lost in transport (chaos ``dispatch.done:drop``) is
        recovered by the chunk-timeout requeue and the recomputed result is
        identical — the remote-worker half of the crash-safety story."""
        tasks = _make_tasks(2)
        settings = _settings(chunk_size=2, chunk_timeout=0.05, max_attempts=3, poll=0.002)
        task_queue, result_queue = queue.Queue(), queue.Queue()
        worker = _FakeWorker(
            "steady", task_queue, result_queue, lambda chunk_id, attempt: "complete"
        )
        result_queue.put(("hello", "steady"))
        worker.start()
        with chaos.inject("dispatch.done", action="drop", times=1):
            results = dispatch_chunks(tasks, task_queue, result_queue, settings)
        assert results == _expected(tasks)
        task_queue.put(("stop",))
        worker.join(timeout=2)
        # The one chunk was executed twice: original (dropped) + requeue.
        assert worker.attempts_seen == {0: 2}

    def test_heartbeats_keep_a_slow_worker_alive(self):
        """A busy worker that heartbeats is not evicted even past the timeout."""
        tasks = _make_tasks(1)
        settings = _settings(chunk_size=1, heartbeat_timeout=0.05, chunk_timeout=5.0)
        task_queue, result_queue = queue.Queue(), queue.Queue()

        def slow_worker():
            message = task_queue.get(timeout=1.0)
            _, generation, chunk_id, chunk = message
            result_queue.put(("ack", generation, chunk_id, "slow"))
            for _ in range(4):  # work for ~4x the heartbeat timeout
                time.sleep(0.05)
                result_queue.put(("heartbeat", "slow"))
            result_queue.put(
                ("done", generation, chunk_id, "slow", [run_task(task) for task in chunk])
            )

        thread = threading.Thread(target=slow_worker, daemon=True)
        result_queue.put(("hello", "slow"))
        thread.start()
        results = dispatch_chunks(tasks, task_queue, result_queue, settings)
        thread.join(timeout=2)
        assert results == _expected(tasks)
