"""Unit tests for repro.analysis.statistics."""

import math

import numpy as np
import pytest

from repro.analysis.statistics import (
    are_negatively_correlated,
    binomial_pmf,
    central_binomial_tail,
    chernoff_deviation_for_confidence,
    chernoff_lower_tail,
    chernoff_upper_tail,
    empirical_bias,
    hoeffding_sample_size,
    summarize_bernoulli,
    wilson_interval,
)
from repro.errors import ParameterError


class TestChernoff:
    def test_formulas_match_paper_equations(self):
        assert chernoff_upper_tail(expectation=100, delta=0.1) == pytest.approx(math.exp(-100 * 0.01 / 3))
        assert chernoff_lower_tail(expectation=100, delta=0.1) == pytest.approx(math.exp(-100 * 0.01 / 2))

    def test_bounds_shrink_with_expectation(self):
        assert chernoff_lower_tail(1000, 0.1) < chernoff_lower_tail(100, 0.1)

    def test_bounds_are_actual_bounds_on_binomials(self):
        """The Chernoff expressions upper-bound exact binomial tails."""
        n, p = 400, 0.5
        expectation = n * p
        for delta in (0.1, 0.2, 0.3):
            exact_upper = central_binomial_tail(n, p, math.ceil((1 + delta) * expectation))
            assert exact_upper <= chernoff_upper_tail(expectation, delta) + 1e-12

    def test_deviation_for_confidence_inverts_lower_tail(self):
        delta = chernoff_deviation_for_confidence(expectation=200, failure_probability=1e-3)
        assert chernoff_lower_tail(200, min(delta, 0.999)) == pytest.approx(1e-3, rel=0.05)

    def test_validation(self):
        with pytest.raises(ParameterError):
            chernoff_upper_tail(10, 1.5)
        with pytest.raises(ParameterError):
            chernoff_lower_tail(-1, 0.5)


class TestSampleSizes:
    def test_hoeffding_sample_size(self):
        size = hoeffding_sample_size(half_width=0.05, failure_probability=0.05)
        assert size == math.ceil(math.log(2 / 0.05) / (2 * 0.0025))

    def test_tighter_estimates_need_more_samples(self):
        assert hoeffding_sample_size(0.01, 0.05) > hoeffding_sample_size(0.1, 0.05)


class TestWilson:
    def test_interval_contains_point_estimate(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high

    def test_extreme_rates_stay_in_unit_interval(self):
        low, high = wilson_interval(100, 100)
        assert 0.9 < low < 1.0 and high >= 0.999
        low, high = wilson_interval(0, 100)
        assert low == 0.0 and 0.0 < high < 0.1

    def test_more_trials_narrow_the_interval(self):
        narrow = wilson_interval(800, 1000)
        wide = wilson_interval(8, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_summarize_bernoulli(self):
        summary = summarize_bernoulli([True] * 9 + [False])
        assert summary.trials == 10
        assert summary.successes == 9
        assert summary.rate == pytest.approx(0.9)
        assert summary.ci_low < 0.9 < summary.ci_high
        assert summary.as_dict()["successes"] == 9

    def test_summarize_empty_rejected(self):
        with pytest.raises(ParameterError):
            summarize_bernoulli([])


class TestBinomialHelpers:
    def test_pmf_sums_to_one(self):
        total = sum(binomial_pmf(k, 20, 0.3) for k in range(21))
        assert total == pytest.approx(1.0)

    def test_pmf_degenerate_probabilities(self):
        assert binomial_pmf(0, 10, 0.0) == 1.0
        assert binomial_pmf(10, 10, 1.0) == 1.0
        assert binomial_pmf(3, 10, 0.0) == 0.0

    def test_tail_edge_cases(self):
        assert central_binomial_tail(10, 0.5, 0) == 1.0
        assert central_binomial_tail(10, 0.5, 11) == 0.0
        assert central_binomial_tail(10, 0.5, 5) > 0.5

    def test_empirical_bias(self):
        assert empirical_bias(60, 100) == pytest.approx(0.1)
        with pytest.raises(ParameterError):
            empirical_bias(5, 0)


class TestNegativeCorrelation:
    def test_sampling_without_replacement_is_negatively_correlated(self, rng):
        """The paper's key example: indicators of sampling without replacement."""
        observations = []
        for _ in range(3000):
            drawn = rng.choice(6, size=3, replace=False)
            indicators = np.zeros(6)
            indicators[drawn] = 1
            observations.append(indicators)
        assert are_negatively_correlated(np.asarray(observations), tolerance=0.02)

    def test_positively_correlated_variables_detected(self, rng):
        shared = rng.integers(0, 2, size=(3000, 1))
        observations = np.hstack([shared, shared])
        assert not are_negatively_correlated(observations, tolerance=0.02)

    def test_shape_validation(self):
        with pytest.raises(ParameterError):
            are_negatively_correlated(np.zeros(5))
