"""Unit tests for repro.analysis.estimators, .scaling and .convergence."""

import math

import numpy as np
import pytest

from repro.analysis.convergence import (
    crossover_round,
    final_plateau,
    first_hitting_round,
    sustained_convergence_round,
)
from repro.analysis.estimators import (
    average_trajectories,
    quantiles,
    ratio_of_means,
    success_rate,
    summarize_scalar,
)
from repro.analysis.scaling import (
    fit_inverse_square_epsilon,
    fit_linear,
    fit_log_n_scaling,
    fit_power_law,
)
from repro.errors import ParameterError


class TestEstimators:
    def test_summarize_scalar(self):
        summary = summarize_scalar([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.ci_low < 2.5 < summary.ci_high
        assert summary.as_dict()["count"] == 4

    def test_single_observation_has_zero_spread(self):
        summary = summarize_scalar([7.0])
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            summarize_scalar([])

    def test_success_rate(self):
        assert success_rate([True, True, False, True]).rate == pytest.approx(0.75)

    def test_quantiles(self):
        values = list(range(101))
        result = quantiles(values, probabilities=(0.1, 0.5, 0.9))
        assert result[0.5] == pytest.approx(50)
        assert result[0.1] == pytest.approx(10)

    def test_average_trajectories_handles_uneven_lengths(self):
        averaged = average_trajectories([[1.0, 2.0, 3.0], [3.0, 4.0]])
        assert averaged == [2.0, 3.0, 3.0]

    def test_ratio_of_means(self):
        assert ratio_of_means([2.0, 4.0], [1.0, 3.0]) == pytest.approx(1.5)
        with pytest.raises(ParameterError):
            ratio_of_means([1.0], [0.0])


class TestScalingFits:
    def test_linear_fit_recovers_exact_line(self):
        x = np.linspace(0, 10, 20)
        fit = fit_linear(x, 3 * x + 2)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(4) == pytest.approx(14.0)

    def test_power_law_fit_recovers_exponent(self):
        x = np.asarray([10, 20, 40, 80, 160], dtype=float)
        y = 5.0 * x**1.5
        fit = fit_power_law(x, y)
        assert fit.slope == pytest.approx(1.5, abs=1e-6)
        assert math.exp(fit.intercept) == pytest.approx(5.0, rel=1e-6)

    def test_log_n_fit(self):
        n_values = [100, 1000, 10_000, 100_000]
        y = [7.0 * math.log(n) + 3.0 for n in n_values]
        fit = fit_log_n_scaling(n_values, y)
        assert fit.slope == pytest.approx(7.0)
        assert fit.intercept == pytest.approx(3.0)

    def test_inverse_square_epsilon_fit(self):
        eps = [0.1, 0.2, 0.3, 0.4]
        y = [2.5 / e**2 + 10.0 for e in eps]
        fit = fit_inverse_square_epsilon(eps, y)
        assert fit.slope == pytest.approx(2.5)
        assert fit.intercept == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            fit_linear([1.0], [2.0])
        with pytest.raises(ParameterError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])
        with pytest.raises(ParameterError):
            fit_linear([1.0, 2.0], [1.0])


class TestConvergence:
    def test_first_hitting_round(self):
        assert first_hitting_round([0.1, 0.4, 0.9, 1.0], threshold=0.9) == 2
        assert first_hitting_round([0.1, 0.2], threshold=0.9) is None

    def test_sustained_convergence(self):
        series = [0.2, 0.95, 0.4, 0.96, 0.97, 0.98, 0.99]
        # The spike at index 1 does not count; the sustained run starts at index 3.
        assert sustained_convergence_round(series, threshold=0.9, window=3) == 3
        assert sustained_convergence_round(series, threshold=0.9, window=5) is None

    def test_crossover_round(self):
        slow_but_steady = [0.1, 0.3, 0.62, 0.9, 1.0]
        fast_then_flat = [0.5, 0.55, 0.58, 0.6, 0.6]
        # The slow series durably overtakes the fast one at index 2 (0.62 >= 0.58).
        assert crossover_round(slow_but_steady, fast_then_flat) == 2
        assert crossover_round(fast_then_flat, slow_but_steady) is None

    def test_crossover_when_always_ahead(self):
        assert crossover_round([1.0, 1.0], [0.5, 0.5]) == 0

    def test_final_plateau(self):
        series = [0.0] * 10 + [1.0] * 20
        assert final_plateau(series, window=20) == pytest.approx(1.0)
        assert final_plateau(series, window=30) == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ParameterError):
            first_hitting_round([], 0.5)
        with pytest.raises(ParameterError):
            final_plateau([1.0], window=0)
