"""Unit tests for repro.analysis.experiments, .sweeps, .tables and persistence."""

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentResult, TrialResult, run_trials
from repro.store import (
    load_result,
    load_sweep,
    save_result,
    save_sweep,
    to_jsonable,
)
from repro.analysis.sweeps import (
    SweepPoint,
    SweepResult,
    parameter_grid,
    run_sweep,
    sweep_point_names,
)
from repro.analysis.tables import format_cell, render_kv, render_table
from repro.errors import ExperimentError, ParameterError


def _double_trial(point, seed, index):
    """Module-level sweep trial (picklable, for the point-parallel tests)."""
    return {"double": point["x"] * 2.0, "ok": True, "seed": seed}


def _seed_echo_trial(point, seed, index):
    """Module-level sweep trial echoing its seed (for the collision tests)."""
    return {"seed": seed, "index": index}


class TestRunTrials:
    def test_collects_all_trials_with_distinct_seeds(self):
        seen_seeds = []

        def trial(seed, index):
            seen_seeds.append(seed)
            return {"value": index * 2.0, "flag": index % 2 == 0}

        result = run_trials("demo", trial, num_trials=5, base_seed=9)
        assert result.num_trials == 5
        assert len(set(seen_seeds)) == 5
        assert result.values("value") == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert result.rate("flag") == pytest.approx(3 / 5)
        assert result.mean("value") == pytest.approx(4.0)

    def test_seeds_are_reproducible(self):
        def trial(seed, index):
            return {"seed": seed}

        first = run_trials("demo", trial, num_trials=3, base_seed=1)
        second = run_trials("demo", trial, num_trials=3, base_seed=1)
        assert first.values("seed") == second.values("seed")

    def test_missing_measurement_raises(self):
        result = run_trials("demo", lambda seed, index: {"a": 1.0}, num_trials=2)
        with pytest.raises(ExperimentError):
            result.values("b")

    def test_non_mapping_return_rejected(self):
        with pytest.raises(ExperimentError):
            run_trials("demo", lambda seed, index: 42, num_trials=1)

    def test_zero_trials_rejected(self):
        with pytest.raises(ExperimentError):
            run_trials("demo", lambda seed, index: {}, num_trials=0)

    def test_round_trip_through_dict(self):
        result = run_trials("demo", lambda seed, index: {"x": float(index)}, num_trials=3)
        clone = ExperimentResult.from_dict(result.to_dict())
        assert clone.name == "demo"
        assert clone.values("x") == result.values("x")

    def test_trial_result_accessors(self):
        trial = TrialResult(trial_index=0, seed=1, measurements={"a": 3})
        assert trial["a"] == 3
        assert trial.get("missing", "default") == "default"


class TestSweeps:
    def test_parameter_grid_is_cartesian_product(self):
        grid = parameter_grid(n=[1, 2], eps=[0.1, 0.2, 0.3])
        assert len(grid) == 6
        assert {"n": 2, "eps": 0.3} in grid

    def test_parameter_grid_requires_axes(self):
        with pytest.raises(ExperimentError):
            parameter_grid()

    def test_run_sweep_collects_per_point_results(self):
        def trial(point, seed, index):
            return {"double": point["x"] * 2.0, "ok": True}

        sweep = run_sweep("demo", [{"x": 1}, {"x": 5}], trial, trials_per_point=3, base_seed=4)
        assert len(sweep) == 2
        xs, doubles = sweep.series("x", "double")
        assert xs == [1, 5]
        assert doubles == [2.0, 10.0]
        xs, rates = sweep.rates("x", "ok")
        assert rates == [1.0, 1.0]

    def test_series_with_unknown_parameter_raises(self):
        sweep = run_sweep("demo", [{"x": 1}], lambda p, s, i: {"y": 1.0}, trials_per_point=1)
        with pytest.raises(ExperimentError, match="has no parameter 'missing'"):
            sweep.series("missing", "y")

    def test_rates_with_unknown_parameter_raises(self):
        """``rates`` guards a missing parameter exactly like ``series`` does
        (it used to leak a raw ``KeyError``)."""
        sweep = run_sweep("demo", [{"x": 1}], lambda p, s, i: {"ok": True}, trials_per_point=1)
        with pytest.raises(ExperimentError, match="has no parameter 'missing'"):
            sweep.rates("missing", "ok")

    def test_run_sweep_point_jobs_bit_identical(self):
        """The shared-pool point-parallel mode returns the same sweep as serial."""
        serial = run_sweep(
            "demo", [{"x": 1}, {"x": 5}], _double_trial, trials_per_point=3, base_seed=4
        )
        pooled = run_sweep(
            "demo",
            [{"x": 1}, {"x": 5}],
            _double_trial,
            trials_per_point=3,
            base_seed=4,
            point_jobs=2,
        )
        assert [r.to_dict() for r in pooled.results] == [r.to_dict() for r in serial.results]

    def test_run_sweep_point_jobs_falls_back_for_unpicklable_trials(self):
        """A closure cannot cross a process boundary; the sweep still runs."""
        offset = 3.0
        sweep = run_sweep(
            "demo",
            [{"x": 1}],
            lambda p, s, i: {"y": p["x"] + offset},
            trials_per_point=2,
            point_jobs=2,
        )
        assert sweep.results[0].mean("y") == pytest.approx(4.0)

    def test_run_sweep_point_jobs_falls_back_for_unpicklable_point_values(self):
        """The point parameters cross the process boundary too: an
        unpicklable point value triggers the same graceful serial fallback
        as an unpicklable trial function."""
        import threading

        points = [{"x": 1, "tag": threading.Lock()}, {"x": 5, "tag": None}]
        sweep = run_sweep("demo", points, _double_trial, trials_per_point=2, point_jobs=2)
        _, doubles = sweep.series("x", "double")
        assert doubles == [2.0, 10.0]

    def test_run_sweep_negative_point_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            run_sweep("demo", [{"x": 1}], _double_trial, trials_per_point=1, point_jobs=-2)

    def test_sweep_point_label(self):
        point = SweepPoint.from_mapping({"n": 100, "eps": 0.1})
        assert point.label() == "n=100, eps=0.1"
        assert point.as_dict() == {"n": 100, "eps": 0.1}


class TestTables:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(0.123456) == "0.123"
        assert format_cell(1234567.0) == "1.235e+06"
        assert format_cell("text") == "text"

    def test_render_table_markdown_shape(self):
        table = render_table([{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}], title="demo")
        lines = table.splitlines()
        assert lines[0] == "### demo"
        assert lines[2].startswith("| a")
        assert len(lines) == 6

    def test_render_table_missing_keys_become_dashes(self):
        table = render_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in table.splitlines()[2]

    def test_render_empty_rejected(self):
        with pytest.raises(ParameterError):
            render_table([])

    def test_render_kv(self):
        block = render_kv({"rounds": 12, "ok": True})
        assert "rounds : 12" in block
        assert "ok" in block


class TestResultsIO:
    def test_to_jsonable_handles_numpy(self):
        payload = to_jsonable({"a": np.int64(3), "b": np.float64(0.5), "c": np.asarray([1, 2]), "d": np.bool_(True)})
        assert payload == {"a": 3, "b": 0.5, "c": [1, 2], "d": True}

    def test_save_and_load_round_trip(self, tmp_path):
        result = run_trials("demo", lambda seed, index: {"x": float(index)}, num_trials=2)
        path = save_result(result, tmp_path / "result.json")
        loaded = load_result(path)
        assert loaded.name == "demo"
        assert loaded.values("x") == result.values("x")

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_result(tmp_path / "absent.json")

    def test_save_sweep(self, tmp_path):
        sweep = run_sweep("demo", [{"x": 1}], lambda p, s, i: {"y": 1.0}, trials_per_point=1)
        path = save_sweep(sweep, tmp_path / "sweep.json")
        assert path.exists()
        assert "demo" in path.read_text()


class TestMeanOr:
    def test_skips_none_and_defaults_when_empty(self):
        result = ExperimentResult(name="demo")
        result.trials.append(TrialResult(0, 1, {"rounds": 4, "maybe": None}))
        result.trials.append(TrialResult(1, 2, {"rounds": 6, "maybe": 10}))
        assert result.mean_or("maybe") == 10.0
        result_without = ExperimentResult(name="empty")
        result_without.trials.append(TrialResult(0, 1, {"maybe": None}))
        assert np.isnan(result_without.mean_or("maybe"))
        assert result_without.mean_or("maybe", default=-1.0) == -1.0

    def test_unrecorded_key_still_raises(self):
        """A key no trial recorded is a caller bug, not "no data": it must
        fail loudly instead of degrading to the default."""
        result = ExperimentResult(name="demo")
        result.trials.append(TrialResult(0, 1, {"rounds": 4}))
        with pytest.raises(ExperimentError):
            result.mean_or("rouns")  # typo'd key


class TestSweepPointNames:
    def test_unique_labels_keep_historical_names(self):
        points = [SweepPoint.from_mapping({"n": 100}), SweepPoint.from_mapping({"n": 200})]
        assert sweep_point_names("S", points) == ["S[n=100]", "S[n=200]"]

    def test_repeat_occurrences_get_index_suffixes(self):
        """The first occurrence keeps its historical name (appending points —
        even duplicates — never reseeds earlier points); repeats get the
        point index."""
        points = [SweepPoint.from_mapping({"n": 100})] * 3 + [SweepPoint.from_mapping({"n": 200})]
        assert sweep_point_names("S", points) == [
            "S[n=100]",
            "S[n=100]#1",
            "S[n=100]#2",
            "S[n=200]",
        ]

    def test_duplicate_points_run_independent_trials(self):
        """Regression: duplicate grid points must not share seed lists (and
        therefore byte-identical trials)."""
        sweep = run_sweep(
            "S", [{"x": 1}, {"x": 1}], _seed_echo_trial, trials_per_point=3, base_seed=7
        )
        first_seeds = [trial.seed for trial in sweep.results[0].trials]
        second_seeds = [trial.seed for trial in sweep.results[1].trials]
        assert first_seeds != second_seeds
        assert sweep.results[0].values("seed") != sweep.results[1].values("seed")

    def test_serial_and_point_jobs_agree_on_duplicates(self):
        kwargs = dict(
            name="S",
            points=[{"x": 1}, {"x": 1}],
            trial_fn=_seed_echo_trial,
            trials_per_point=2,
            base_seed=5,
        )
        serial = run_sweep(**kwargs)
        pooled = run_sweep(point_jobs=2, **kwargs)
        assert [r.to_dict() for r in serial.results] == [r.to_dict() for r in pooled.results]

    def test_batched_sweep_agrees_on_duplicate_seed_derivation(self):
        """The batched dispatcher derives per-point batch seeds from the same
        disambiguated names, so duplicate points get independent batches."""
        from repro.exec.batching import run_sweep_batched

        sweep = run_sweep_batched(
            name="S",
            points=[{"n": 250}, {"n": 250}],
            trials_per_point=2,
            base_seed=3,
            defaults={"epsilon": 0.3},
            shape="broadcast",
        )
        assert sweep.results[0].name == "S[n=250]"
        assert sweep.results[1].name == "S[n=250]#1"
        first = sweep.results[0].values("final_correct_fraction")
        second = sweep.results[1].values("final_correct_fraction")
        messages = (sweep.results[0].values("messages"), sweep.results[1].values("messages"))
        assert (first, messages[0]) != (second, messages[1])


class TestStrictJsonPersistence:
    def test_non_finite_floats_become_null(self):
        payload = to_jsonable(
            {"nan": float("nan"), "inf": np.float64("inf"), "neg": float("-inf"), "ok": 0.5}
        )
        assert payload == {"nan": None, "inf": None, "neg": None, "ok": 0.5}

    def test_saved_files_are_strict_json(self, tmp_path):
        """A NaN measurement (e.g. "no trial converged") must produce a file
        any strict parser accepts — no bare NaN tokens."""
        result = ExperimentResult(name="demo")
        result.trials.append(TrialResult(0, 1, {"rounds": float("nan"), "ok": True}))
        path = save_result(result, tmp_path / "nan.json")
        text = path.read_text()
        assert "NaN" not in text and "Infinity" not in text
        loaded = load_result(path)
        assert loaded.trials[0].measurements["rounds"] is None

    def test_sweep_round_trip(self, tmp_path):
        sweep = run_sweep(
            "demo", [{"x": 1}, {"x": 2}], _double_trial, trials_per_point=2, base_seed=3
        )
        path = save_sweep(sweep, tmp_path / "sweep.json")
        loaded = load_sweep(path)
        assert loaded.name == sweep.name
        assert [p.as_dict() for p in loaded.points] == [p.as_dict() for p in sweep.points]
        assert [r.to_dict() for r in loaded.results] == [r.to_dict() for r in sweep.results]

    def test_load_sweep_missing_file_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_sweep(tmp_path / "absent.json")

    def test_from_dict_rejects_mismatched_lengths(self):
        with pytest.raises(ExperimentError):
            SweepResult.from_dict({"name": "bad", "points": [{"x": 1}], "results": []})
