"""Unit tests for the service job queue (scripted runs, no HTTP, no sims).

The queue's contract — deterministic ids, the ``queued → running →
done/failed/cancelled`` life cycle, fingerprint-keyed duplicate
coalescing, per-job manifests, clean shutdown — is pinned here with
injected ``run`` callables, so every race is scripted with events instead
of timing.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import ExecutionConfig
from repro.errors import ExperimentError
from repro.experiments.report import ExperimentReport
from repro.service import JobQueue, JobState
from repro.store import RunArtifact

FP_A = "a1" * 32
FP_B = "b2" * 32


def _artifact(spec_id: str = "E1", cache: str = "miss") -> RunArtifact:
    """A stub artifact a scripted run callable can return."""
    report = ExperimentReport(experiment_id=spec_id, title="t", claim="c", rows=[{"x": 1}])
    return RunArtifact(spec_id=spec_id, execution={"cache": cache}, report=report)


def _config(tmp_path) -> ExecutionConfig:
    return ExecutionConfig.for_service(tmp_path / "store", {"trials": 1})


@pytest.fixture
def gate():
    """An event pair: the run callable blocks until the test releases it."""
    started = threading.Event()
    release = threading.Event()

    def run(spec_id, config=None, **overrides):
        started.set()
        assert release.wait(timeout=30), "test forgot to release the gate"
        return _artifact(spec_id)

    run.started = started
    run.release = release
    return run


def _wait_terminal(queue: JobQueue, job_id: str, timeout: float = 10.0) -> str:
    """Spin until a job reaches a terminal state; return that state."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = queue.get(job_id).state
        if state in JobState.TERMINAL:
            return state
        time.sleep(0.005)
    raise AssertionError(f"job {job_id} never finished: {queue.get(job_id).state}")


class TestSubmission:
    def test_job_ids_are_deterministic_sequence_plus_fingerprint(self, tmp_path, gate):
        queue = JobQueue(tmp_path / "store", workers=1, run=gate)
        try:
            job_a, created_a = queue.submit("E1", FP_A, {"n": 1}, config=_config(tmp_path))
            job_b, created_b = queue.submit("E2", FP_B, {"n": 2}, config=_config(tmp_path))
            assert (created_a, created_b) == (True, True)
            assert job_a.job_id == f"000001-{FP_A[:12]}"
            assert job_b.job_id == f"000002-{FP_B[:12]}"
        finally:
            gate.release.set()
            queue.close()

    def test_duplicate_in_flight_submission_joins_the_existing_job(self, tmp_path, gate):
        queue = JobQueue(tmp_path / "store", workers=1, run=gate)
        try:
            first, created = queue.submit("E1", FP_A, {}, config=_config(tmp_path))
            assert created
            gate.started.wait(timeout=10)  # first is now *running*
            again, created_again = queue.submit("E1", FP_A, {}, config=_config(tmp_path))
            assert not created_again and again.job_id == first.job_id
            gate.release.set()
            assert _wait_terminal(queue, first.job_id) == JobState.DONE
            # Finished jobs release the fingerprint: a new submission is new.
            fresh, created_fresh = queue.submit("E1", FP_A, {}, config=_config(tmp_path))
            assert created_fresh and fresh.job_id != first.job_id
        finally:
            gate.release.set()
            queue.close()

    def test_submit_after_close_raises(self, tmp_path):
        queue = JobQueue(tmp_path / "store", workers=1, run=lambda *a, **k: _artifact())
        queue.close()
        queue.close()  # idempotent
        with pytest.raises(ExperimentError, match="shut down"):
            queue.submit("E1", FP_A, {}, config=_config(tmp_path))


class TestLifeCycle:
    def test_done_job_records_artifact_and_cache_outcome(self, tmp_path):
        queue = JobQueue(tmp_path / "store", workers=1, run=lambda s, config=None, **o: _artifact(s, "miss"))
        try:
            job, _ = queue.submit("E8", FP_A, {"n": 3}, config=_config(tmp_path))
            assert _wait_terminal(queue, job.job_id) == JobState.DONE
            manifest = queue.manifest(job.job_id)
            assert manifest["cache"] == "miss"
            assert manifest["fingerprint"] == FP_A
            assert manifest["spec_id"] == "E8"
            assert manifest["parameters"] == {"n": 3}
            assert manifest["error"] is None
            assert manifest["started_at"] >= manifest["submitted_at"]
            assert manifest["finished_at"] >= manifest["started_at"]
            assert queue.get(job.job_id).artifact is not None
        finally:
            queue.close()

    def test_failed_job_records_error_and_releases_fingerprint(self, tmp_path):
        def explode(spec_id, config=None, **overrides):
            raise ExperimentError("boom: bad driver state")

        queue = JobQueue(tmp_path / "store", workers=1, run=explode)
        try:
            job, _ = queue.submit("E1", FP_A, {}, config=_config(tmp_path))
            assert _wait_terminal(queue, job.job_id) == JobState.FAILED
            manifest = queue.manifest(job.job_id)
            assert "boom" in manifest["error"] and "ExperimentError" in manifest["error"]
            assert manifest["cache"] is None
            retry, created = queue.submit("E1", FP_A, {}, config=_config(tmp_path))
            assert created and retry.job_id != job.job_id
        finally:
            queue.close()

    def test_on_finish_callback_sees_every_terminal_job(self, tmp_path):
        finished = []
        queue = JobQueue(
            tmp_path / "store",
            workers=1,
            run=lambda s, config=None, **o: _artifact(s),
            on_finish=lambda job: finished.append((job.job_id, job.state)),
        )
        try:
            job, _ = queue.submit("E1", FP_A, {}, config=_config(tmp_path))
            _wait_terminal(queue, job.job_id)
        finally:
            queue.close()
        assert (job.job_id, JobState.DONE) in finished


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path, gate):
        queue = JobQueue(tmp_path / "store", workers=1, run=gate)
        try:
            blocker, _ = queue.submit("E1", FP_A, {}, config=_config(tmp_path))
            gate.started.wait(timeout=10)
            victim, _ = queue.submit("E2", FP_B, {}, config=_config(tmp_path))
            assert queue.depth() == 1 and queue.running() == 1
            assert queue.cancel(victim.job_id) is True
            assert queue.get(victim.job_id).state == JobState.CANCELLED
            # Cancelled jobs release their fingerprint for resubmission.
            again, created = queue.submit("E2", FP_B, {}, config=_config(tmp_path))
            assert created and again.job_id != victim.job_id
            gate.release.set()
            assert _wait_terminal(queue, blocker.job_id) == JobState.DONE
            assert _wait_terminal(queue, again.job_id) == JobState.DONE
        finally:
            gate.release.set()
            queue.close()

    def test_running_and_terminal_jobs_are_not_cancellable(self, tmp_path, gate):
        queue = JobQueue(tmp_path / "store", workers=1, run=gate)
        try:
            job, _ = queue.submit("E1", FP_A, {}, config=_config(tmp_path))
            gate.started.wait(timeout=10)
            assert queue.cancel(job.job_id) is False  # running
            gate.release.set()
            _wait_terminal(queue, job.job_id)
            assert queue.cancel(job.job_id) is False  # done
        finally:
            gate.release.set()
            queue.close()

    def test_cancel_unknown_job_raises(self, tmp_path):
        queue = JobQueue(tmp_path / "store", workers=1, run=lambda *a, **k: _artifact())
        try:
            with pytest.raises(ExperimentError, match="unknown job id"):
                queue.cancel("nope")
        finally:
            queue.close()

    def test_cancelled_job_is_skipped_by_workers(self, tmp_path, gate):
        ran = []

        def tracking_gate(spec_id, config=None, **overrides):
            ran.append(spec_id)
            return gate(spec_id, config=config, **overrides)

        queue = JobQueue(tmp_path / "store", workers=1, run=tracking_gate)
        try:
            queue.submit("E1", FP_A, {}, config=_config(tmp_path))
            gate.started.wait(timeout=10)
            victim, _ = queue.submit("E2", FP_B, {}, config=_config(tmp_path))
            queue.cancel(victim.job_id)
            gate.release.set()
        finally:
            queue.close()
        assert ran == ["E1"]  # the cancelled E2 never reached the run callable
