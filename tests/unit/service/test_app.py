"""Handler tests for the experiment service, driven through the client.

A real ``ThreadingHTTPServer`` on an ephemeral port, exercised exactly the
way external traffic would be — through
:class:`repro.service.client.ServiceClient` — covering the tentpole's
acceptance criteria: submit/poll/cancel, unknown spec → 404, bad param →
400, the immediate-200 store-hit path with a byte-identical report, and
duplicate concurrent submissions computing once.  Real simulations are
kept to toy E1 sweeps; every scripted race uses injected run callables.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ExperimentError
from repro.experiments.report import ExperimentReport
from repro.service import JobState, ServiceClient, ServiceError, create_server
from repro.store import RunArtifact, RunStore

E1_TOY = {"sizes": [60, 90], "epsilon": 0.3, "trials": 1}


@pytest.fixture
def server_factory(tmp_path):
    """Build ephemeral-port servers that are torn down with the test."""
    servers = []

    def build(run=None, workers=2):
        server = create_server(tmp_path / "store", port=0, workers=workers, run=run)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        return server, ServiceClient(port=server.server_address[1])

    yield build
    for server in servers:
        server.shutdown()
        server.server_close()
        server.service.close()


def _stub_artifact(spec_id: str = "E1", cache: str = "miss") -> RunArtifact:
    """A scripted run's return value (valid report, no simulation)."""
    report = ExperimentReport(experiment_id=spec_id, title="t", claim="c", rows=[{"x": 1}])
    return RunArtifact(spec_id=spec_id, execution={"cache": cache}, report=report)


class TestSubmitPollCancel:
    def test_submit_poll_result_and_store_hit_round_trip(self, server_factory, tmp_path):
        server, client = server_factory()
        submission = client.submit("E1", params=E1_TOY)
        assert submission["status"] == JobState.QUEUED
        assert submission["deduplicated"] is False
        assert len(submission["fingerprint"]) == 64

        final = client.result(submission)
        assert final["status"] == JobState.DONE
        assert final["cache"] == "miss"
        rendered = final["result"]["rendered"]
        assert "E1" in rendered

        # Second identical submission: immediate 200 from the store, no job,
        # byte-identical report — the tentpole acceptance criterion.
        again = client.submit("E1", params=E1_TOY)
        assert again["status"] == JobState.DONE
        assert again["cache"] == "hit"
        assert again["job_id"] is None
        assert again["result"]["rendered"] == rendered
        assert again["result"]["fingerprint"] == submission["fingerprint"]

        # The artifact is also addressable through the store resource.
        stored = client.store(submission["fingerprint"][:12])
        assert stored["result"]["rendered"] == rendered

        metrics = client.metrics()
        assert metrics["cache"]["hit"] == 1
        assert metrics["cache"]["miss"] == 1
        assert metrics["cache"]["hit_rate"] == 0.5
        assert metrics["latency_seconds"]["E1"]["count"] == 2

    def test_cancel_queued_job_and_409_on_done(self, server_factory, tmp_path):
        started = threading.Event()
        release = threading.Event()

        def gated_run(spec_id, config=None, **overrides):
            started.set()
            assert release.wait(timeout=30)
            return _stub_artifact(spec_id)

        server, client = server_factory(run=gated_run, workers=1)
        blocker = client.submit("E1", params=E1_TOY)
        assert started.wait(timeout=10)
        victim = client.submit("E2", params={"n": 80, "trials": 1})
        assert victim["status"] == JobState.QUEUED

        cancelled = client.cancel(victim["job_id"])
        assert cancelled["status"] == JobState.CANCELLED
        assert client.status(victim["job_id"])["status"] == JobState.CANCELLED

        release.set()
        final = client.wait(blocker["job_id"])
        assert final["status"] == JobState.DONE
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(blocker["job_id"])
        assert excinfo.value.status == 409
        assert "only queued jobs" in excinfo.value.payload["error"]

        states = {job["job_id"]: job["state"] for job in client.jobs()}
        assert states[victim["job_id"]] == JobState.CANCELLED
        assert states[blocker["job_id"]] == JobState.DONE

    def test_duplicate_concurrent_submissions_compute_once(self, server_factory):
        run_count = {"E2": 0}
        count_lock = threading.Lock()
        started = threading.Event()
        release = threading.Event()

        def gated_counting_run(spec_id, config=None, **overrides):
            if spec_id == "E1":
                started.set()
                assert release.wait(timeout=30)
                return _stub_artifact("E1")
            with count_lock:
                run_count["E2"] += 1
            return _stub_artifact("E2", "miss")

        server, client = server_factory(run=gated_counting_run, workers=1)
        client.submit("E1", params=E1_TOY)  # occupies the single worker
        assert started.wait(timeout=10)

        first = client.submit("E2", params={"n": 80, "trials": 1})
        second = client.submit("E2", params={"n": 80, "trials": 1})
        assert first["job_id"] == second["job_id"]
        assert second["deduplicated"] is True

        release.set()
        final = client.wait(first["job_id"])
        assert final["status"] == JobState.DONE
        assert run_count["E2"] == 1  # the joined submission never re-ran

        metrics = client.metrics()
        assert metrics["cache"]["deduplicated"] == 1

    def test_failed_job_reports_error_text(self, server_factory):
        def explode(spec_id, config=None, **overrides):
            raise RuntimeError("simulated driver crash")

        server, client = server_factory(run=explode)
        submission = client.submit("E1", params=E1_TOY)
        final = client.wait(submission["job_id"])
        assert final["status"] == JobState.FAILED
        assert "simulated driver crash" in final["error"]
        with pytest.raises(ExperimentError, match="ended failed"):
            client.result(submission)  # result() raises on failed jobs


class TestValidationAndErrors:
    def test_unknown_experiment_is_404(self, server_factory):
        server, client = server_factory()
        with pytest.raises(ServiceError) as excinfo:
            client.submit("E99")
        assert excinfo.value.status == 404
        assert "E1" in excinfo.value.payload["experiments"]

    def test_bad_parameter_is_400_with_settable_listing(self, server_factory):
        server, client = server_factory()
        with pytest.raises(ServiceError) as excinfo:
            client.submit("E1", params={"not_a_param": 1})
        assert excinfo.value.status == 400
        assert "settable parameters" in excinfo.value.payload["error"]

    def test_forbidden_execution_option_is_400(self, server_factory):
        server, client = server_factory()
        with pytest.raises(ServiceError) as excinfo:
            client.submit("E1", execution={"store_path": "/tmp/elsewhere"})
        assert excinfo.value.status == 400
        assert "store_path" in excinfo.value.payload["error"]

    def test_double_specified_trials_is_400(self, server_factory):
        # ``trials`` may arrive as a parameter override or an execution
        # option, but not both — plan resolution rejects it at POST time.
        server, client = server_factory()
        with pytest.raises(ServiceError) as excinfo:
            client.submit("E1", params={"trials": 2}, execution={"trials": 3})
        assert excinfo.value.status == 400
        assert "trials" in excinfo.value.payload["error"]

    def test_unknown_job_and_resource_are_404(self, server_factory):
        server, client = server_factory()
        for call in (lambda: client.status("000099-abcdef012345"),
                     lambda: client.request("GET", "/v1/nope")):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_malformed_json_body_is_400(self, server_factory):
        import http.client

        server, client = server_factory()
        connection = http.client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            connection.request(
                "POST", "/v1/runs", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()

    def test_store_prefix_404_and_409(self, server_factory, tmp_path):
        server, client = server_factory()
        with pytest.raises(ServiceError) as excinfo:
            client.store("deadbeef")
        assert excinfo.value.status == 404

        store = RunStore(tmp_path / "store")
        for index in range(2):
            artifact = _stub_artifact()
            artifact.fingerprint = "ef" * 5 + format(index, "054x")
            store.put(artifact)
        with pytest.raises(ServiceError) as excinfo:
            client.store("ef" * 5)
        assert excinfo.value.status == 409
        assert "ambiguous" in excinfo.value.payload["error"]
        assert "extend the prefix" in excinfo.value.payload["error"]


class TestDiscoveryAndHealth:
    def test_experiments_listing_matches_registry(self, server_factory):
        from repro.api import experiment_ids, get_spec

        server, client = server_factory()
        listing = client.experiments()
        assert [entry["id"] for entry in listing] == list(experiment_ids())
        e1 = next(entry for entry in listing if entry["id"] == "E1")
        spec = get_spec("E1")
        assert e1["title"] == spec.title
        assert [p["name"] for p in e1["parameters"]] == list(spec.parameter_names)
        assert e1["supports_batch"] == spec.supports_batch

    def test_healthz_reports_queue_gauges(self, server_factory):
        server, client = server_factory()
        health = client.health()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert health["workers"] == 2
        assert "store" in health

    def test_metrics_counts_requests_per_route(self, server_factory):
        server, client = server_factory()
        client.health()
        client.health()
        metrics = client.metrics()
        route_counts = {
            route: count
            for route, count in metrics["requests"].items()
            if "healthz" in route
        }
        assert sum(route_counts.values()) == 2
        assert metrics["queue"] == {"depth": 0, "running": 0}
