"""Crash-safety tests: journal replay, backpressure, degraded mode, retries.

The chaos harness (:mod:`repro.testing.chaos`) drives the failure
scenarios the serving stack must survive: a worker thread dying with a job
mid-flight, a store that stops accepting writes, a journal that cannot
append, a queue shedding load at its bound — plus the systems-level
``kill -9`` test that murders a real ``repro-flip serve`` subprocess
mid-job and asserts a restart against the same store replays the journal
to the *identical* artifact under the original job id.  The in-process
tests cover the same recovery machinery deterministically (no subprocess,
no signals) so failures localise.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import ExecutionConfig, resolve_run_inputs, run_experiment
from repro.errors import ExperimentError
from repro.experiments.report import ExperimentReport
from repro.service import (
    ExperimentService,
    JobJournal,
    JobQueue,
    JobState,
    QueueSaturated,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    create_server,
)
from repro.store import RunArtifact
from repro.testing import chaos

E1_TOY = {"sizes": [60, 90], "epsilon": 0.3, "trials": 1}


@pytest.fixture(autouse=True)
def _clean_chaos():
    """No fault leaks between tests: the registry is process-global."""
    chaos.reset()
    yield
    chaos.reset()


@pytest.fixture
def server_factory(tmp_path):
    """Build ephemeral-port servers over one shared store directory."""
    servers = []

    def build(run=None, workers=2, max_queued=None, retry=None):
        server = create_server(
            tmp_path / "store", port=0, workers=workers, run=run, max_queued=max_queued
        )
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        return server, ServiceClient(port=server.server_address[1], retry=retry)

    yield build
    for server in servers:
        server.shutdown()
        server.server_close()
        server.service.close()


def _stub_artifact(spec_id: str = "E1", cache: str = "miss") -> RunArtifact:
    """A scripted run's return value (valid report, no simulation)."""
    report = ExperimentReport(experiment_id=spec_id, title="t", claim="c", rows=[{"x": 1}])
    return RunArtifact(spec_id=spec_id, execution={"cache": cache}, report=report)


class TestChaosRegistry:
    def test_unknown_point_or_action_is_rejected(self):
        with pytest.raises(ExperimentError, match="unknown chaos fault point"):
            chaos.ChaosFault("store.frobnicate", "raise", exception=OSError())
        with pytest.raises(ExperimentError, match="unknown chaos action"):
            chaos.ChaosFault("store.put", "explode")

    def test_inject_fires_boundedly_and_disarms_on_exit(self):
        with chaos.inject("store.put", raises=OSError("disk full"), times=2):
            for _ in range(2):
                with pytest.raises(OSError, match="disk full"):
                    chaos.fire("store.put", fingerprint="abc")
            assert chaos.fire("store.put") is None  # exhausted after 2
        assert chaos.active_faults() == []
        assert chaos.fire("store.put") is None  # disarmed outside the block

    def test_raised_faults_carry_their_call_site_context(self):
        with chaos.inject("journal.append", raises=OSError("no space")):
            with pytest.raises(OSError) as excinfo:
                chaos.fire("journal.append", event="submit", job_id="j1")
        assert excinfo.value.chaos_context == {"event": "submit", "job_id": "j1"}

    def test_install_from_env_parses_every_clause_shape(self):
        installed = chaos.install_from_env(
            {"REPRO_CHAOS": "store.put:raise:oserror:1, queue.worker:sleep:0.01, dispatch.done:drop:2"}
        )
        by_point = {fault.point: fault for fault in installed}
        assert isinstance(by_point["store.put"].exception, OSError)
        assert by_point["store.put"].times == 1
        assert by_point["queue.worker"].seconds == 0.01
        assert by_point["dispatch.done"].action == "drop"
        assert by_point["dispatch.done"].times == 2

    def test_install_from_env_rejects_malformed_clauses(self):
        with pytest.raises(ExperimentError, match="malformed REPRO_CHAOS"):
            chaos.install_from_env({"REPRO_CHAOS": "just-a-word"})
        with pytest.raises(ExperimentError, match="sleep action needs seconds"):
            chaos.install_from_env({"REPRO_CHAOS": "queue.worker:sleep"})
        assert chaos.install_from_env({"REPRO_CHAOS": ""}) == []


class TestJournal:
    def test_replay_folds_last_event_wins_and_orders_pending(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("submit", "000002-bbbb", spec_id="E2", fingerprint="b" * 64,
                       params={"n": 80}, execution={})
        journal.record("submit", "000001-aaaa", spec_id="E1", fingerprint="a" * 64,
                       params={}, execution={})
        journal.record("start", "000001-aaaa")
        journal.record("submit", "000003-cccc", spec_id="E3", fingerprint="c" * 64,
                       params={}, execution={})
        journal.record("start", "000003-cccc")
        journal.record("finish", "000003-cccc", cache="miss")
        replay = journal.replay()
        assert [record.job_id for record in replay.pending] == ["000001-aaaa", "000002-bbbb"]
        assert replay.pending[1].params == {"n": 80}
        assert replay.terminal == 1
        assert replay.max_sequence == 3

    def test_torn_tail_from_a_crashed_writer_is_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record("submit", "000001-aaaa", spec_id="E1", fingerprint="a" * 64,
                       params={}, execution={})
        with open(journal.path, "a", encoding="utf-8") as stream:
            stream.write('{"event": "finish", "job_id": "000001-aa')  # crash mid-write
        replay = journal.replay()
        assert [record.job_id for record in replay.pending] == ["000001-aaaa"]

    def test_checkpoint_compacts_to_pending_submissions_only(self, tmp_path):
        journal = JobJournal(tmp_path)
        for sequence, outcome in enumerate(("finish", "fail", None), start=1):
            job_id = f"{sequence:06d}-{'ab' * 6}"
            journal.record("submit", job_id, spec_id="E1", fingerprint="ab" * 32,
                           params={"trials": sequence}, execution={})
            journal.record("start", job_id)
            if outcome:
                journal.record(outcome, job_id)
        assert journal.checkpoint() == 1
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1 and '"event":"submit"' in lines[0].replace(" ", "")
        replay = journal.replay()
        assert [record.job_id for record in replay.pending] == ["000003-abababababab"]
        assert replay.pending[0].params == {"trials": 3}
        assert replay.max_sequence == 3  # sequence survives compaction

    def test_append_failure_disarms_journal_and_reports_once(self, tmp_path):
        reasons = []
        journal = JobJournal(tmp_path, on_error=reasons.append)
        with chaos.inject("journal.append", raises=OSError("read-only filesystem")):
            assert journal.record("submit", "000001-aaaa") is False
            assert journal.record("submit", "000002-bbbb") is False  # already disarmed
        assert journal.disabled_reason is not None
        assert "read-only filesystem" in journal.disabled_reason
        assert len(reasons) == 1  # reported exactly once, then silent


class TestRecovery:
    def test_worker_death_mid_job_is_replayed_by_the_next_service(self, server_factory, tmp_path):
        chaos.install(chaos.ChaosFault("queue.worker", "die", times=1))
        server1, client1 = server_factory(workers=1)
        submission = client1.submit("E1", params=E1_TOY)
        job_id = submission["job_id"]

        deadline = time.monotonic() + 10
        while chaos.active_faults() and time.monotonic() < deadline:
            time.sleep(0.01)  # fault consumed == worker thread is dead
        assert chaos.active_faults() == []
        assert client1.status(job_id)["status"] == JobState.RUNNING  # stuck forever

        # "Restart": a second service over the same store replays the journal.
        server2, client2 = server_factory(workers=1)
        final = client2.wait(job_id, timeout=120)
        assert final["status"] == JobState.DONE
        assert final["recovered"] is True
        assert final["fingerprint"] == submission["fingerprint"]
        assert final["result"]["rendered"]

        health = client2.health()
        assert health["status"] == "ok"
        assert health["recovery"] == {"replayed": 1, "already_stored": 0, "failed": 0}
        # The artifact is durable and byte-identical through the store resource.
        stored = client2.store(submission["fingerprint"][:12])
        assert stored["result"]["rendered"] == final["result"]["rendered"]

    def test_crash_after_persist_recovers_as_store_hit(self, tmp_path):
        root = tmp_path / "store"
        config = ExecutionConfig.for_service(root, {})
        overrides = {"sizes": (60, 90), "epsilon": 0.3, "trials": 1}
        resolved = resolve_run_inputs("E1", config=config, **overrides)
        artifact = run_experiment("E1", config=config, **overrides)  # persists

        # The predecessor journaled submit+start but died before `finish`.
        journal = JobJournal(root)
        job_id = f"000005-{resolved.fingerprint[:12]}"
        journal.record("submit", job_id, spec_id="E1", fingerprint=resolved.fingerprint,
                       params=dict(E1_TOY), execution={})
        journal.record("start", job_id)

        service = ExperimentService(root)
        try:
            assert service.recovery.already_stored == [job_id]
            assert service.recovery.replayed == []
            status, body = service.job_status(job_id)
            assert status == 200
            assert body["status"] == JobState.DONE
            assert body["cache"] == "hit"
            assert body["recovered"] is True
            assert body["result"]["rendered"] == artifact.report.render()
            # No duplicate compute: the hit is the only cache event.
            assert service.metrics.snapshot(0, 0)["cache"]["miss"] == 0
            # The id sequence continues past the journaled job.
            status, body = service.submit_run(
                {"experiment": "E2", "params": {"n": 80, "trials": 1}}
            )
            assert status == 202
            assert body["job_id"].startswith("000006-")
        finally:
            service.close()

    def test_unresolvable_journal_entry_fails_without_crashing_startup(self, tmp_path):
        root = tmp_path / "store"
        journal = JobJournal(root)
        journal.record("submit", "000001-deadbeefdead", spec_id="E1",
                       fingerprint="de" * 32, params={"not_a_param": 1}, execution={})
        service = ExperimentService(root)
        try:
            assert service.recovery.failed == ["000001-deadbeefdead"]
            status, body = service.job_status("000001-deadbeefdead")
            assert status == 200
            assert body["status"] == JobState.FAILED
            assert "not_a_param" in body["error"]
        finally:
            service.close()

    def test_sigterm_drain_leaves_queued_jobs_journaled_for_successor(self, tmp_path):
        root = tmp_path / "store"
        release = threading.Event()
        started = threading.Event()
        ran = []

        def gated_run(spec_id, config=None, **overrides):
            started.set()
            assert release.wait(timeout=30)
            ran.append(spec_id)
            return _stub_artifact(spec_id)

        first = JobQueue(root, workers=1, run=gated_run, journal=JobJournal(root))
        running, _ = first.submit("E1", "a" * 64, {}, config=ExecutionConfig(),
                                  raw_params=dict(E1_TOY), raw_execution={})
        assert started.wait(timeout=10)
        waiting, _ = first.submit("E2", "b" * 64, {}, config=ExecutionConfig(),
                                  raw_params={"n": 80, "trials": 1}, raw_execution={})

        closer = threading.Thread(target=lambda: first.close(timeout=30, finish_queued=False))
        closer.start()
        while not first._closed:  # drain flag is set before the release
            time.sleep(0.005)
        release.set()
        closer.join(timeout=30)
        assert ran == ["E1"]  # the running job finished; the queued one did not
        assert first.get(waiting.job_id).state == JobState.QUEUED

        runs = []

        def recording_run(spec_id, config=None, **overrides):
            runs.append(spec_id)
            return _stub_artifact(spec_id)

        second = JobQueue(root, workers=1, run=recording_run, journal=JobJournal(root))
        report = second.recover()
        assert report.replayed == [waiting.job_id]
        deadline = time.monotonic() + 10
        while second.get(waiting.job_id).state != JobState.DONE:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        second.close()
        assert runs == ["E2"]  # only the abandoned job re-ran


class TestBackpressure:
    def test_saturated_queue_sheds_with_429_and_retry_after(self, server_factory):
        started = threading.Event()
        release = threading.Event()

        def gated_run(spec_id, config=None, **overrides):
            started.set()
            assert release.wait(timeout=30)
            return _stub_artifact(spec_id)

        server, client = server_factory(
            run=gated_run, workers=1, max_queued=1, retry=RetryPolicy(attempts=1)
        )
        blocker = client.submit("E1", params=E1_TOY)
        assert started.wait(timeout=10)
        queued = client.submit("E2", params={"n": 80, "trials": 1})
        assert queued["status"] == JobState.QUEUED

        with pytest.raises(ServiceError) as excinfo:
            client.submit("E3", params={"trials": 1})
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is not None  # from the Retry-After header
        assert excinfo.value.payload["max_queued"] == 1
        assert "saturated" in excinfo.value.payload["error"]

        # Joining an in-flight duplicate adds no work and is never shed.
        joined = client.submit("E2", params={"n": 80, "trials": 1})
        assert joined["deduplicated"] is True

        release.set()
        assert client.wait(blocker["job_id"])["status"] == JobState.DONE
        assert client.wait(queued["job_id"])["status"] == JobState.DONE
        assert client.metrics()["cache"]["shed"] == 1

    def test_queue_saturated_carries_the_shed_numbers(self, tmp_path):
        release = threading.Event()
        started = threading.Event()

        def gated_run(spec_id, config=None, **overrides):
            started.set()
            assert release.wait(timeout=30)
            return _stub_artifact(spec_id)

        queue = JobQueue(tmp_path, workers=1, run=gated_run, max_queued=2, retry_after=7.5)
        try:
            queue.submit("E1", "a" * 64, {}, config=ExecutionConfig())
            assert started.wait(timeout=10)
            queue.submit("E2", "b" * 64, {}, config=ExecutionConfig())
            queue.submit("E3", "c" * 64, {}, config=ExecutionConfig())
            with pytest.raises(QueueSaturated) as excinfo:
                queue.submit("E4", "d" * 64, {}, config=ExecutionConfig())
            assert excinfo.value.depth == 2
            assert excinfo.value.max_queued == 2
            assert excinfo.value.retry_after == 7.5
        finally:
            release.set()
            queue.close()


class TestDegradedMode:
    def test_store_write_failure_degrades_to_compute_only(self, server_factory):
        server, client = server_factory()
        with chaos.inject("store.put", raises=OSError("disk full"), times=1):
            submission = client.submit("E1", params=E1_TOY)
            final = client.wait(submission["job_id"], timeout=120)
        # The simulation succeeded and the result is served...
        assert final["status"] == JobState.DONE
        assert final["result"]["rendered"]
        assert "disk full" in final["result"]["execution"]["store_error"]
        # ...but nothing persisted, and the service says so on /healthz (200).
        with pytest.raises(ServiceError) as excinfo:
            client.store(submission["fingerprint"][:12])
        assert excinfo.value.status == 404
        health = client.health()
        assert health["status"] == "degraded"
        assert "disk full" in health["degraded_reason"]
        assert client.metrics()["service"]["status"] == "degraded"

    def test_journal_failure_degrades_but_serving_continues(self, server_factory):
        server, client = server_factory()
        with chaos.inject("journal.append", raises=OSError("no space left")):
            submission = client.submit("E1", params=E1_TOY)
            final = client.wait(submission["job_id"], timeout=120)
        assert final["status"] == JobState.DONE  # the job still ran and served
        health = client.health()
        assert health["status"] == "degraded"
        assert "no space left" in health["degraded_reason"]
        assert health["journal"] is False  # durability lost, visibly


class TestRetryingClient:
    def test_delay_is_deterministic_capped_and_honours_retry_after(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, multiplier=2.0)
        delays = [policy.delay(attempt) for attempt in (1, 2, 3, 4, 5)]
        assert delays == [policy.delay(attempt) for attempt in (1, 2, 3, 4, 5)]
        assert all(0.05 <= delay <= 1.0 for delay in delays)  # jitter in [0.5, 1.0]x
        assert policy.delay(1, retry_after=3.0) == 3.0  # the server's hint wins

    def test_connection_errors_retry_until_success(self):
        client = ServiceClient(retry=RetryPolicy(attempts=4, base_delay=0.001, max_delay=0.002))
        calls = []

        def flaky(method, path, payload=None):
            calls.append(path)
            if len(calls) < 3:
                raise ConnectionRefusedError("service restarting")
            return {"ok": True}

        client._request_once = flaky
        assert client.request("GET", "/healthz") == {"ok": True}
        assert len(calls) == 3

    def test_retryable_status_backs_off_then_exhausts(self):
        client = ServiceClient(retry=RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.002))
        calls = []

        def always_shedding(method, path, payload=None):
            calls.append(path)
            raise ServiceError(429, {"error": "saturated"}, retry_after=0.001)

        client._request_once = always_shedding
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/runs", {})
        assert excinfo.value.status == 429
        assert len(calls) == 3  # every configured attempt was used

    def test_client_errors_never_retry(self):
        client = ServiceClient(retry=RetryPolicy(attempts=5, base_delay=0.001))
        calls = []

        def not_found(method, path, payload=None):
            calls.append(path)
            raise ServiceError(404, {"error": "unknown job"})

        client._request_once = not_found
        with pytest.raises(ServiceError):
            client.request("GET", "/v1/runs/nope")
        assert len(calls) == 1

    def test_deadline_stops_retrying_early(self):
        client = ServiceClient(
            retry=RetryPolicy(attempts=10, base_delay=0.5, max_delay=0.5, deadline=0.01)
        )
        calls = []

        def down(method, path, payload=None):
            calls.append(path)
            raise ConnectionRefusedError("down")

        client._request_once = down
        with pytest.raises(ConnectionRefusedError):
            client.request("GET", "/healthz")
        assert len(calls) == 1  # the first backoff would overrun the deadline

    def test_wait_backs_off_polling_up_to_the_cap(self, monkeypatch):
        client = ServiceClient(retry=RetryPolicy(attempts=1))
        polls = []
        sleeps = []

        def scripted_status(job_id):
            polls.append(job_id)
            state = JobState.DONE if len(polls) >= 6 else JobState.RUNNING
            return {"status": state, "job_id": job_id}

        client.status = scripted_status
        monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
        body = client.wait("000001-abc", timeout=60, poll_interval=0.05, max_poll_interval=0.2)
        assert body["status"] == JobState.DONE
        assert sleeps == pytest.approx([0.05, 0.075, 0.1125, 0.16875, 0.2])  # 1.5x, capped


class TestKillDashNine:
    """The systems-level acceptance test: ``kill -9`` a real served process."""

    _LISTENING = re.compile(r"listening on http://[\d.]+:(\d+)")

    def _spawn(self, store, extra_env=None):
        repo_src = str(Path(__file__).resolve().parents[3] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        env.update(extra_env or {})
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--store", str(store), "--port", "0", "--quiet"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            match = self._LISTENING.search(line or "")
            if match:
                return process, int(match.group(1))
            if process.poll() is not None:
                break
        process.kill()
        raise AssertionError("service subprocess never reported its port")

    def test_kill9_mid_job_then_restart_replays_to_identical_artifact(self, tmp_path):
        store = tmp_path / "store"
        # The chaos sleep parks the worker *after* the job is journaled as
        # started, guaranteeing the SIGKILL lands mid-job.
        first, port1 = self._spawn(store, {"REPRO_CHAOS": "queue.worker:sleep:45:1"})
        second = None
        try:
            client1 = ServiceClient(port=port1)
            submission = client1.submit("E1", params=E1_TOY)
            assert submission["status"] == JobState.QUEUED
            first.kill()  # SIGKILL: no drain, no checkpoint, no goodbye
            first.wait(timeout=30)

            second, port2 = self._spawn(store)
            client2 = ServiceClient(port=port2)
            final = client2.wait(submission["job_id"], timeout=180)
            assert final["status"] == JobState.DONE
            assert final["recovered"] is True
            assert final["fingerprint"] == submission["fingerprint"]

            stored = client2.store(submission["fingerprint"][:12])
            assert stored["result"]["rendered"] == final["result"]["rendered"]
            health = client2.health()
            assert health["status"] == "ok"
            assert health["recovery"]["replayed"] == 1
            metrics = client2.metrics()
            assert metrics["cache"]["miss"] == 1  # computed exactly once
        finally:
            for process in (first, second):
                if process is not None and process.poll() is None:
                    process.terminate()
                    process.wait(timeout=30)
