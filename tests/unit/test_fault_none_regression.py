"""Determinism regression: no-fault runs are bit-identical to the seed revision.

The fault-injection layer threads ``faults=`` / ``topology=`` keywords
through the network, engine, stage kernels and batch rules.  The contract
(``repro.substrate.faults`` module docstring) is that with no fault model —
``FaultModel.NONE`` / ``None`` — every one of those code paths is
byte-for-byte the pre-fault code.  This test pins that claim: the digests
below were captured from the E1–E11 drivers (batch and serial) *before* the
fault layer landed, on the tiny configurations of
``tests/unit/_golden_grid.py``; any RNG-consumption change in a default path
shifts a digest and fails the pin.

E12 is deliberately absent: it did not exist at the seed revision.  Its
f=0 column is covered by the exec-level bit-identity pin in
``tests/unit/exec/test_fault_batching.py`` instead.
"""

from __future__ import annotations

import pytest

from _golden_grid import GRID, grid_digest

#: sha256 digests of the full rendered reports, captured pre-fault-layer.
GOLDEN_DIGESTS = {
    ("E1", True): "7277c4516bb021408d823754caba3f00600991cebe0395733b7302b558ea8083",
    ("E2", True): "fb9331478ed10ecf7f15a8da95ebd8d28b8cd6d2f3e4604f9bc913ed7cabe2b5",
    ("E3", True): "d6fc0f7c64bc0351960a805ac68087efec0123e146492fc96eb209f77ec2c3c9",
    ("E4", True): "19ce8bfb3dc6a9b1a478ebe989f63730a7c51410e1e3292c2c12745db97044cd",
    ("E5", True): "6a4fb9681522c94f4da3c4c924bc35adb8f4a6c727c39cb31eb950ecb29a14f2",
    ("E6", True): "f401f1ee2b8a04f459f2dbb0eb2030ec61a1368d153c4ee3df05719dbfbb8400",
    ("E7", True): "7a2feaade512eaf9bad9e6f670e1f95eba4aa3cdc841c919163c081a1b588378",
    ("E8", True): "a0ced1302356d6fe6d2aae3ef5204d34271d6f09163ec60ad419f36fa68ad973",
    ("E9", True): "4457a4937aa6910dec3cae0ba8af4f99ad10e74b77b16e7b97605803134e26fb",
    ("E10", True): "a8404987d8eddf1df071e1968fd876669c58afc2b34b4042dfd71b08661443e6",
    ("E11", True): "759b20f21afb0039a497d33b9021f4f768a3c972ed37b315359c809e4bbef205",
    ("E1", False): "7277c4516bb021408d823754caba3f00600991cebe0395733b7302b558ea8083",
    ("E7", False): "af9b952690e864bb5628f38a3f147655ecfa7fe97b7d36c2368a5b0e757d0db5",
    ("E9", False): "0d15a43f921d88c53a56b7582b92d40e8811d6a20126b8bca32251742965da52",
}


def test_grid_covers_every_pre_fault_driver():
    """All eleven pre-fault drivers are pinned, plus serial spot checks."""
    batched = {experiment_id for experiment_id, batch, _ in GRID if batch}
    assert batched == {f"E{i}" for i in range(1, 12)}
    assert {(e, b) for e, b, _ in GRID} == set(GOLDEN_DIGESTS)


@pytest.mark.parametrize(
    "experiment_id, batch, overrides",
    GRID,
    ids=[f"{e}-{'batch' if b else 'serial'}" for e, b, _ in GRID],
)
def test_no_fault_path_matches_pre_fault_golden(experiment_id, batch, overrides):
    """Each driver's no-fault output is bit-identical to the seed revision."""
    assert grid_digest(experiment_id, batch, overrides) == GOLDEN_DIGESTS[(experiment_id, batch)]
