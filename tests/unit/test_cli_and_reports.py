"""Unit tests for the CLI and the experiment report structure."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments import DRIVERS
from repro.experiments.report import ExperimentReport


class TestExperimentReport:
    def test_rows_and_rendering(self):
        report = ExperimentReport(experiment_id="EX", title="demo", claim="something holds")
        report.add_row(n=10, value=0.5)
        report.add_row(n=20, value=0.25)
        report.add_note("a remark")
        text = report.render()
        assert "EX: demo" in text
        assert "paper claim: something holds" in text
        assert "note: a remark" in text
        assert report.columns() == ["n", "value"]
        assert report.row_values("n") == [10, 20]

    def test_empty_report_rejected_at_render(self):
        report = ExperimentReport(experiment_id="EX", title="demo", claim="c")
        with pytest.raises(ExperimentError):
            report.render()


class TestDriverRegistry:
    def test_all_twelve_experiments_registered(self):
        assert sorted(DRIVERS, key=lambda key: int(key[1:])) == [f"E{i}" for i in range(1, 13)]

    def test_every_driver_exposes_run(self):
        for driver in DRIVERS.values():
            assert callable(driver.run)
            assert driver.__doc__


class TestCli:
    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["broadcast", "--n", "50", "--epsilon", "0.3"])
        assert args.command == "broadcast" and args.n == 50
        args = parser.parse_args(["majority", "--set-size", "10"])
        assert args.command == "majority" and args.set_size == 10
        args = parser.parse_args(["experiment", "E10"])
        assert args.experiment_id == "E10"

    def test_broadcast_command_runs_and_reports_success(self, capsys):
        exit_code = main(["broadcast", "--n", "250", "--epsilon", "0.3", "--seed", "3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "success" in captured and "rounds" in captured

    def test_majority_command_runs(self, capsys):
        exit_code = main(
            ["majority", "--n", "250", "--epsilon", "0.3", "--set-size", "80", "--bias", "0.25"]
        )
        assert exit_code == 0
        assert "majority-consensus" in capsys.readouterr().out

    def test_experiment_command_prints_report(self, capsys):
        exit_code = main(["experiment", "E10"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "E10" in out and "Lemma 2.11" in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out and "E11:" in out
        # The listing comes from the registry: titles, parameters, capabilities.
        assert "parameters:" in out and "--batch" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "E99"])

    def test_batch_help_text_derives_from_spec_flags(self, capsys):
        """--batch help names the batchable ids straight from the registry.

        Every registered experiment is batchable since the stage kernels
        landed, so the former can't-batch CLI error is unreachable through a
        real id (ExecutionConfig still guards it — see
        tests/unit/api/test_execution_config.py); what remains CLI-visible is
        the registry-derived help text.
        """
        from repro.api import batchable_experiment_ids
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--help"])
        # argparse wraps help to the terminal width; normalise before matching.
        help_text = " ".join(capsys.readouterr().out.split())
        assert batchable_experiment_ids() == "E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12"
        assert "E4, E5, E6" in help_text and "E9, E10, E11, E12" in help_text

    def test_batch_runs_a_stage_level_experiment_from_the_cli(self, capsys):
        exit_code = main(
            ["experiment", "E4", "--batch", "--trials", "2",
             "--set", "n=250", "--set", "epsilons=(0.3,)"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "x0_bound_rate" in out

    def test_trials_override_rejected_where_not_declared(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "E10", "--trials", "2"])
        assert "no 'trials' parameter" in capsys.readouterr().err

    def test_set_rejects_unknown_parameters(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "E10", "--set", "bogus=1"])
        assert "settable parameters are" in capsys.readouterr().err

    def test_set_rejects_reserved_names_with_the_same_message(self, capsys):
        # "config" is run_experiment's own keyword; it must fail like any
        # other undeclared parameter, not crash with a keyword collision.
        with pytest.raises(SystemExit):
            main(["experiment", "E10", "--set", "config=1"])
        assert "settable parameters are" in capsys.readouterr().err

    def test_set_rejects_malformed_overrides(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "E10", "--set", "epsilon"])
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_set_and_seed_flow_into_the_run(self, capsys):
        exit_code = main(
            [
                "experiment",
                "E10",
                "--seed",
                "7",
                "--set",
                "deltas=(0.01, 0.1)",
                "--set",
                "monte_carlo_reps=2000",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "E10" in out and "0.010" in out
