"""Unit tests for repro.substrate.population."""

import numpy as np
import pytest

from repro.errors import ParameterError, SimulationError
from repro.substrate.population import Population


class TestConstruction:
    def test_initial_state_with_source(self):
        population = Population(size=10, source=3)
        assert population.num_activated() == 1
        assert population.activated[3]
        assert population.activation_phase[3] == 0
        assert population.num_opinionated() == 0

    def test_initial_state_without_source(self):
        population = Population(size=10, source=None)
        assert population.num_activated() == 0
        assert population.num_dormant() == 10

    def test_too_small_population_rejected(self):
        with pytest.raises(ParameterError):
            Population(size=1)

    def test_source_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            Population(size=5, source=5)


class TestSourceOpinion:
    def test_set_source_opinion(self):
        population = Population(size=5, source=0)
        population.set_source_opinion(1)
        assert population.opinions[0] == 1
        assert population.count_opinion(1) == 1

    def test_no_source_raises(self):
        population = Population(size=5, source=None)
        with pytest.raises(SimulationError):
            population.set_source_opinion(1)

    def test_invalid_opinion_rejected(self):
        population = Population(size=5, source=0)
        with pytest.raises(ParameterError):
            population.set_source_opinion(2)


class TestSeeding:
    def test_seed_opinionated_set(self):
        population = Population(size=20, source=None)
        members = np.asarray([1, 5, 9])
        opinions = np.asarray([1, 0, 1])
        population.seed_opinionated_set(members, opinions)
        assert population.num_activated() == 3
        assert population.count_opinion(1) == 2
        assert population.count_opinion(0) == 1

    def test_duplicate_members_rejected(self):
        population = Population(size=20, source=None)
        with pytest.raises(ParameterError):
            population.seed_opinionated_set(np.asarray([1, 1]), np.asarray([0, 1]))

    def test_mismatched_shapes_rejected(self):
        population = Population(size=20, source=None)
        with pytest.raises(ParameterError):
            population.seed_opinionated_set(np.asarray([1, 2]), np.asarray([0]))

    def test_member_out_of_range_rejected(self):
        population = Population(size=20, source=None)
        with pytest.raises(ParameterError):
            population.seed_opinionated_set(np.asarray([25]), np.asarray([1]))


class TestActivation:
    def test_activate_is_idempotent(self):
        population = Population(size=10, source=0)
        first = population.activate(np.asarray([2, 3]), phase=1, round_index=5)
        assert set(first.tolist()) == {2, 3}
        second = population.activate(np.asarray([3, 4]), phase=2, round_index=9)
        assert set(second.tolist()) == {4}
        # Agent 3 keeps its original activation phase.
        assert population.activation_phase[3] == 1
        assert population.activation_phase[4] == 2

    def test_counts(self):
        population = Population(size=10, source=0)
        population.activate(np.asarray([1, 2, 3]), phase=1, round_index=1)
        assert population.num_activated() == 4
        assert population.num_dormant() == 6


class TestOpinionAccounting:
    def test_bias_and_fraction(self):
        population = Population(size=10, source=None)
        population.seed_opinionated_set(np.arange(8), np.asarray([1, 1, 1, 1, 1, 1, 0, 0]))
        assert population.bias(1) == pytest.approx((6 - 2) / (2 * 8))
        assert population.bias(0) == pytest.approx(-(6 - 2) / (2 * 8))
        assert population.correct_fraction(1) == pytest.approx(0.6)

    def test_bias_with_no_opinions_is_zero(self):
        assert Population(size=4, source=None).bias(1) == 0.0

    def test_all_correct_and_consensus(self):
        population = Population(size=4, source=None)
        population.seed_opinionated_set(np.arange(4), np.ones(4, dtype=np.int8))
        assert population.all_correct(1)
        assert not population.all_correct(0)
        assert population.consensus_opinion() == 1

    def test_consensus_none_when_disagreement(self):
        population = Population(size=4, source=None)
        population.seed_opinionated_set(np.arange(4), np.asarray([1, 1, 0, 1]))
        assert population.consensus_opinion() is None

    def test_consensus_none_when_unopinionated(self):
        assert Population(size=4, source=None).consensus_opinion() is None

    def test_set_opinions_validates_values(self):
        population = Population(size=4, source=None)
        with pytest.raises(ParameterError):
            population.set_opinions(np.asarray([0]), np.asarray([5]))

    def test_snapshot(self):
        population = Population(size=6, source=0)
        population.set_source_opinion(1)
        snapshot = population.snapshot()
        assert snapshot == {
            "size": 6,
            "activated": 1,
            "opinionated": 1,
            "count_zero": 0,
            "count_one": 1,
        }
