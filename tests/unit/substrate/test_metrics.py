"""Unit tests for repro.substrate.metrics."""

from repro.substrate.metrics import MetricsCollector, PhaseRecord


def make_phase(stage="stage1", phase=0, messages=10):
    return PhaseRecord(
        stage=stage,
        phase=phase,
        start_round=0,
        end_round=5,
        activated_total=3,
        newly_activated=2,
        bias=0.1,
        correct_fraction=0.6,
        messages_sent=messages,
    )


class TestMetricsCollector:
    def test_observe_round_accumulates(self):
        metrics = MetricsCollector()
        metrics.observe_round(messages_sent=10, messages_delivered=8, messages_dropped=2)
        metrics.observe_round(messages_sent=5, messages_delivered=5, messages_dropped=0)
        assert metrics.rounds == 2
        assert metrics.messages_sent == 15
        assert metrics.messages_delivered == 13
        assert metrics.messages_dropped == 2
        assert metrics.total_bits() == 15

    def test_time_series_only_recorded_when_enabled(self):
        silent = MetricsCollector(record_time_series=False)
        silent.observe_round(1, 1, 0, correct_fraction=0.5, activated=3)
        assert silent.correct_fraction_series == []

        recording = MetricsCollector(record_time_series=True)
        recording.observe_round(1, 1, 0, correct_fraction=0.5, activated=3)
        assert recording.correct_fraction_series == [0.5]
        assert recording.activated_series == [3]

    def test_phase_records_filtered_by_stage(self):
        metrics = MetricsCollector()
        metrics.observe_phase(make_phase(stage="stage1", phase=0))
        metrics.observe_phase(make_phase(stage="stage2", phase=1))
        metrics.observe_phase(make_phase(stage="stage1", phase=1))
        assert [record.phase for record in metrics.phases_for("stage1")] == [0, 1]
        assert len(metrics.phases_for("stage2")) == 1

    def test_phase_record_duration(self):
        assert make_phase().duration == 5

    def test_summary(self):
        metrics = MetricsCollector()
        metrics.observe_round(4, 3, 1)
        metrics.observe_phase(make_phase())
        summary = metrics.summary()
        assert summary["rounds"] == 1
        assert summary["messages_sent"] == 4
        assert summary["phases"] == 1

    def test_merge(self):
        first = MetricsCollector(record_time_series=True)
        first.observe_round(2, 2, 0, correct_fraction=0.5)
        first.observe_phase(make_phase(phase=0))
        second = MetricsCollector(record_time_series=True)
        second.observe_round(3, 2, 1, correct_fraction=0.7)
        second.observe_phase(make_phase(phase=1))
        first.merge(second)
        assert first.rounds == 2
        assert first.messages_sent == 5
        assert len(first.phases) == 2
        assert first.correct_fraction_series == [0.5, 0.7]
