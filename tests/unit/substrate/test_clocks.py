"""Unit tests for repro.substrate.clocks."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.substrate.clocks import GlobalClock, LocalClocks


class TestGlobalClock:
    def test_tick_and_reset(self):
        clock = GlobalClock()
        assert clock.now == 0
        assert clock.tick() == 1
        assert clock.tick(5) == 6
        clock.reset()
        assert clock.now == 0

    def test_negative_tick_rejected(self):
        with pytest.raises(ParameterError):
            GlobalClock().tick(-1)


class TestLocalClocks:
    def test_clocks_start_stopped(self):
        clocks = LocalClocks(size=5)
        assert not clocks.started().any()
        assert clocks.skew() == 0
        np.testing.assert_array_equal(clocks.local_time(10), np.full(5, -1))

    def test_start_is_idempotent(self):
        clocks = LocalClocks(size=5)
        clocks.start(np.asarray([1, 2]), global_time=3)
        clocks.start(np.asarray([2, 3]), global_time=7)
        # Agent 2 keeps its original start time.
        np.testing.assert_array_equal(clocks.offsets[[1, 2, 3]], [3, 3, 7])

    def test_reset_overrides(self):
        clocks = LocalClocks(size=5)
        clocks.start(np.asarray([1]), global_time=3)
        clocks.reset(np.asarray([1]), global_time=10)
        assert clocks.offsets[1] == 10

    def test_local_time_readings(self):
        clocks = LocalClocks(size=3)
        clocks.start(np.asarray([0]), global_time=2)
        clocks.start(np.asarray([1]), global_time=5)
        readings = clocks.local_time(9)
        assert readings[0] == 7
        assert readings[1] == 4
        assert readings[2] == -1

    def test_skew(self):
        clocks = LocalClocks(size=4)
        clocks.start(np.asarray([0, 1, 2]), global_time=0)
        clocks.reset(np.asarray([2]), global_time=6)
        assert clocks.skew() == 6

    def test_initialise_uniform(self, rng):
        clocks = LocalClocks(size=1000)
        clocks.initialise_uniform(rng, max_offset=16)
        assert clocks.started().all()
        assert clocks.skew() <= 15
        # Offsets should actually spread across the window.
        assert clocks.skew() >= 10

    def test_initialise_uniform_invalid_window(self, rng):
        with pytest.raises(ParameterError):
            LocalClocks(size=3).initialise_uniform(rng, max_offset=0)

    def test_size_must_be_positive(self):
        with pytest.raises(ParameterError):
            LocalClocks(size=0)
