"""Unit and property tests for the fault-injection layer.

Covers the three promises of :mod:`repro.substrate.faults`' determinism
contract — dedicated fault stream, positional (shape-only) main-stream
consumption, marginal rates matching the configured model — plus the
crash/Byzantine/burst mechanics themselves.  The empirical-rate tests
aggregate over many seeds and assert within generous CI bounds, so they are
deterministic for the pinned seeds but meaningfully tight.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.substrate.faults import (
    NONE,
    BurstNoise,
    ByzantineSenders,
    CrashStop,
    FaultInjector,
    NoFaults,
    build_injector,
)
from repro.substrate.network import PushGossipNetwork
from repro.substrate.noise import BinarySymmetricChannel, PerfectChannel


def _injector(model, size=40, seed=0, num_replicates=1):
    return FaultInjector(model, size, np.random.default_rng(seed), num_replicates=num_replicates)


class TestModelValidation:
    def test_bad_fractions_rejected(self):
        with pytest.raises(ParameterError):
            CrashStop(fraction=1.5)
        with pytest.raises(ParameterError):
            CrashStop(crash_probability=-0.1)
        with pytest.raises(ParameterError):
            ByzantineSenders(fraction=-0.2)
        with pytest.raises(ParameterError):
            ByzantineSenders(mode="weird")
        with pytest.raises(ParameterError):
            ByzantineSenders(adversarial_bit=2)
        with pytest.raises(ParameterError):
            BurstNoise(flip_probability=2.0)

    def test_injector_rejects_nofaults_and_bad_shapes(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ParameterError):
            FaultInjector(NoFaults(), 10, rng)
        with pytest.raises(ParameterError):
            FaultInjector(CrashStop(), 1, rng)
        with pytest.raises(ParameterError):
            FaultInjector(CrashStop(), 10, rng, num_replicates=0)
        with pytest.raises(ParameterError):
            FaultInjector(CrashStop(immune=(99,)), 10, rng)

    def test_build_injector_maps_nofaults_to_none(self):
        rng = np.random.default_rng(0)
        assert build_injector(None, 10, rng) is None
        assert build_injector(NONE, 10, rng) is None
        assert build_injector(NoFaults(), 10, rng) is None
        assert build_injector(CrashStop(), 10, rng) is not None


class TestMembership:
    def test_prone_set_size_is_floor_of_fraction(self):
        injector = _injector(CrashStop(fraction=0.25, immune=(0, 1)), size=42)
        # eligible = 40, floor(0.25 * 40) = 10 prone agents
        assert injector.prone.sum() == 10
        assert not injector.prone[0, [0, 1]].any()

    def test_byzantine_set_respects_immunity_per_replicate(self):
        injector = _injector(
            ByzantineSenders(fraction=0.5, immune=(3,)), size=11, num_replicates=7
        )
        assert injector.byzantine.shape == (7, 11)
        assert (injector.byzantine.sum(axis=1) == 5).all()
        assert not injector.byzantine[:, 3].any()

    def test_membership_varies_across_replicates(self):
        injector = _injector(ByzantineSenders(fraction=0.3), size=50, num_replicates=8)
        assert len({tuple(np.flatnonzero(row)) for row in injector.byzantine}) > 1


class TestCrashMechanics:
    def test_forced_schedule_crashes_exactly_the_listed_agents(self):
        model = CrashStop(forced={0: (2,), 2: (5, 7)})
        injector = _injector(model, size=10)
        injector.begin_round()
        assert set(np.flatnonzero(injector.crashed_serial())) == {2}
        injector.begin_round()  # round 1: nothing scheduled
        injector.begin_round()  # round 2
        assert set(np.flatnonzero(injector.crashed_serial())) == {2, 5, 7}
        assert injector.num_crashed().tolist() == [3]

    def test_crashes_are_permanent_and_silence_senders(self):
        injector = _injector(CrashStop(forced={0: (1, 4)}), size=8)
        injector.begin_round()
        senders = np.arange(8)
        bits = np.ones(8, dtype=np.int8)
        kept, kept_bits = injector.filter_senders_serial(senders, bits)
        assert set(kept.tolist()) == set(range(8)) - {1, 4}
        assert kept_bits.size == 6
        mask = injector.filter_send_mask(np.ones((1, 8), dtype=bool))
        assert not mask[0, [1, 4]].any() and mask.sum() == 6

    def test_empirical_crash_rate_matches_configuration(self):
        crash_probability, rounds = 0.1, 12
        opportunities = crashes = 0
        for seed in range(40):
            injector = _injector(
                CrashStop(fraction=0.5, crash_probability=crash_probability),
                size=60,
                seed=seed,
            )
            for _ in range(rounds):
                injector.begin_round()
            opportunities += injector.counters["crash_opportunities"]
            crashes += injector.counters["crashes"]
        rate = crashes / opportunities
        # ~9k Bernoulli(0.1) opportunities: 4 sigma is about +-0.013.
        assert abs(rate - crash_probability) < 0.02


class TestByzantineMechanics:
    def test_adversarial_mode_forces_the_configured_bit(self):
        injector = _injector(
            ByzantineSenders(fraction=0.5, mode="adversarial", adversarial_bit=0), size=10
        )
        senders = np.arange(10)
        bits = np.ones(10, dtype=np.int8)
        corrupted = injector.corrupt_outgoing_serial(senders, bits)
        members = injector.byzantine[0]
        assert (corrupted[members] == 0).all()
        assert (corrupted[~members] == 1).all()

    def test_grid_corruption_touches_only_members(self):
        injector = _injector(ByzantineSenders(fraction=0.3), size=20, num_replicates=5)
        bits = np.ones((5, 20), dtype=np.int8)
        corrupted = injector.corrupt_outgoing_grid(bits, np.ones((5, 20), dtype=bool))
        assert (corrupted[~injector.byzantine] == 1).all()

    def test_empirical_random_mode_corruption_rate(self):
        # A random fake bit disagrees with an all-ones payload half the time.
        disagree = total = 0
        for seed in range(40):
            injector = _injector(ByzantineSenders(fraction=0.5), size=40, seed=seed)
            members = injector.byzantine[0]
            for _ in range(5):
                bits = np.ones(40, dtype=np.int8)
                corrupted = injector.corrupt_outgoing_serial(np.arange(40), bits)
                disagree += int((corrupted[members] == 0).sum())
                total += int(members.sum())
        assert abs(disagree / total - 0.5) < 0.04

    def test_counter_counts_member_messages_only(self):
        injector = _injector(ByzantineSenders(fraction=0.25), size=16)
        injector.corrupt_outgoing_serial(np.arange(16), np.zeros(16, dtype=np.int8))
        assert injector.counters["byzantine_messages"] == int(injector.byzantine.sum())


class TestBurstMechanics:
    def test_burst_occupancy_matches_markov_stationary_rate(self):
        start, stop = 0.2, 0.3
        rounds = burst_rounds = 0
        for seed in range(30):
            injector = _injector(
                BurstNoise(start_probability=start, stop_probability=stop), size=4, seed=seed
            )
            for _ in range(80):
                injector.begin_round()
            rounds += injector.rounds_started
            burst_rounds += injector.counters["burst_rounds"]
        stationary = start / (start + stop)
        assert abs(burst_rounds / rounds - stationary) < 0.05

    def test_flip_rate_inside_bursts_matches_configuration(self):
        flip = 0.4
        flips = opportunities = 0
        for seed in range(40):
            injector = _injector(BurstNoise(start_probability=1.0, flip_probability=flip),
                                 size=30, seed=seed)
            injector.begin_round()
            assert injector.bursting.all()
            recipients = np.arange(30)
            injector.corrupt_delivered_serial(recipients, np.ones(30, dtype=np.int8))
            flips += injector.counters["burst_flips"]
            opportunities += injector.counters["burst_flip_opportunities"]
        assert abs(flips / opportunities - flip) < 0.03

    def test_quiet_state_never_flips(self):
        injector = _injector(BurstNoise(start_probability=0.0), size=12)
        injector.begin_round()
        bits = np.ones(12, dtype=np.int8)
        assert (injector.corrupt_delivered_serial(np.arange(12), bits) == bits).all()


class TestDedicatedStream:
    """Fault decisions must never consume delivery/channel/protocol variates."""

    def test_engine_uses_the_faults_stream(self, make_engine):
        engine = make_engine(n=30, seed=9, faults=CrashStop(fraction=0.3, crash_probability=0.5))
        assert engine.faults is not None
        # The same seed's "faults" stream, replayed independently, reproduces
        # the injector's membership draw — proof it came from that stream.
        reference = make_engine(n=30, seed=9).random.stream("faults")
        rekeyed = FaultInjector(
            CrashStop(fraction=0.3, crash_probability=0.5), 30, reference
        )
        assert np.array_equal(engine.faults.prone, rekeyed.prone)

    def test_fault_stream_consumption_is_positional(self):
        # Two very different crash histories, same generator: equal draws left.
        draws_left = []
        for probability in (0.0, 1.0):
            rng = np.random.default_rng(77)
            injector = FaultInjector(
                CrashStop(fraction=0.5, crash_probability=probability), 20, rng
            )
            for _ in range(6):
                injector.begin_round()
            draws_left.append(rng.random(4))
        assert np.array_equal(draws_left[0], draws_left[1])


class TestSerialRngStability:
    """A crash in round t must not shift other agents' draws in rounds >= t."""

    @staticmethod
    def _run_rounds(model, seed=5, size=16, rounds=4):
        network = PushGossipNetwork(size=size)
        channel = BinarySymmetricChannel(epsilon=0.3)
        rng = np.random.default_rng(seed)
        injector = build_injector(model, size, np.random.default_rng(999))
        senders = np.arange(size)
        bits = np.ones(size, dtype=np.int8)
        reports = []
        for _ in range(rounds):
            if injector is not None:
                injector.begin_round()
            reports.append(
                network.deliver(senders.copy(), bits.copy(), channel, rng, faults=injector)
            )
        return reports, rng.random(8)

    def test_crash_does_not_shift_other_agents_draws(self):
        # Same main seed; one run crashes agents {1, 2} at round 1, the other
        # crashes nobody (probability-0 prone set via forced={}).
        quiet, quiet_tail = self._run_rounds(CrashStop(forced={}))
        crashed, crashed_tail = self._run_rounds(CrashStop(forced={1: (1, 2)}))
        # Main-stream consumption is unchanged by the crashes...
        assert np.array_equal(quiet_tail, crashed_tail)
        # ...round 0 precedes the crash, so deliveries are identical...
        assert np.array_equal(quiet[0].recipients, crashed[0].recipients)
        assert np.array_equal(quiet[0].bits, crashed[0].bits)
        overlap = 0
        for round_index in (1, 2, 3):
            q, c = quiet[round_index], crashed[round_index]
            # ...and afterwards every surviving sender keeps the same target
            # and noisy bit: a (sender -> recipient) delivery present in both
            # runs is identical.  (Collision *outcomes* may legitimately
            # change — a sender can win a slot its crashed competitor used to
            # take — so only the pairwise intersection is compared.)
            quiet_map = dict(zip(q.senders.tolist(), zip(q.recipients.tolist(), q.bits.tolist())))
            for sender, recipient, bit in zip(c.senders, c.recipients, c.bits):
                assert int(sender) not in (1, 2)
                if int(sender) in quiet_map:
                    assert quiet_map[int(sender)] == (int(recipient), int(bit))
                    overlap += 1
        assert overlap > 10  # the comparison must not be vacuous

    def test_mass_crash_leaves_main_stream_consumption_fixed(self):
        # Extreme case: everyone crashes at round 1 vs. nobody ever does.
        everyone = tuple(range(16))
        quiet, quiet_tail = self._run_rounds(CrashStop(forced={}))
        dead, dead_tail = self._run_rounds(CrashStop(forced={1: everyone}))
        assert np.array_equal(quiet_tail, dead_tail)
        for round_index in (1, 2, 3):
            assert dead[round_index].recipients.size == 0
            assert quiet[round_index].recipients.size > 0

    def test_engine_protocol_stream_untouched_by_crashes(self, make_engine):
        # Stage-I reservoir draws come from the protocol stream; with the
        # positional accumulator their consumption is fixed per round.
        from repro.core.stage1 import ReceptionAccumulator

        for recipients in (np.array([], dtype=np.int64), np.arange(5)):
            rng = np.random.default_rng(3)
            accumulator = ReceptionAccumulator(12)
            accumulator.observe_positional(
                recipients, np.ones(recipients.size, dtype=np.int8), rng
            )
            tail = rng.random(3)
        del accumulator
        rng_reference = np.random.default_rng(3)
        rng_reference.random(12)
        assert np.array_equal(tail, rng_reference.random(3))


class TestEngineIntegration:
    def test_none_model_leaves_engine_faultless(self, make_engine):
        engine = make_engine(n=20, faults=NoFaults())
        assert engine.faults is None

    def test_crashed_agents_stop_sending_through_gossip_round(self, make_engine):
        engine = make_engine(
            n=20, seed=11, faults=CrashStop(forced={0: tuple(range(1, 20))})
        )
        senders = np.arange(20)
        bits = np.ones(20, dtype=np.int8)
        report = engine.gossip_round(senders, bits)
        assert set(report.senders.tolist()) <= {0}

    def test_population_survivor_accounting(self, make_engine):
        engine = make_engine(n=10, seed=2, faults=CrashStop(forced={0: (3, 4)}))
        engine.gossip_round(np.arange(10), np.ones(10, dtype=np.int8))
        population = engine.population
        population.set_opinions(np.arange(10), np.ones(10, dtype=np.int8))
        population.set_opinions(np.asarray([3]), np.asarray([0], dtype=np.int8))
        population.mark_crashed(engine.faults.crashed_serial())
        assert population.num_crashed() == 2
        assert population.all_surviving_correct(1)
        assert population.surviving_correct_fraction(1) == 1.0
        assert not population.all_correct(1)

    def test_burst_noise_composes_with_perfect_channel(self):
        # With a perfect channel and a permanent burst, flips happen at the
        # burst rate — isolating the burst layer from the BSC.
        network = PushGossipNetwork(size=200)
        rng = np.random.default_rng(21)
        injector = build_injector(
            BurstNoise(start_probability=1.0, stop_probability=0.0, flip_probability=0.5),
            200,
            np.random.default_rng(77),
        )
        flipped = delivered = 0
        for _ in range(30):
            injector.begin_round()
            report = network.deliver(
                np.arange(200), np.ones(200, dtype=np.int8), PerfectChannel(), rng,
                faults=injector,
            )
            delivered += report.bits.size
            flipped += int((report.bits == 0).sum())
        assert abs(flipped / delivered - 0.5) < 0.05
