"""Unit tests for repro.substrate.trace."""

from repro.substrate.trace import EventTrace


class TestEventTrace:
    def test_disabled_trace_records_nothing(self):
        trace = EventTrace(enabled=False)
        trace.record(1, "deliver", count=3)
        assert len(trace) == 0

    def test_enabled_trace_records_events(self):
        trace = EventTrace(enabled=True)
        trace.record(1, "deliver", count=3)
        trace.record(2, "adopt", agent=7)
        assert len(trace) == 2
        assert trace.events[0].kind == "deliver"
        assert trace.events[0].payload == {"count": 3}
        assert trace.events[1].round_index == 2

    def test_of_kind_filters(self):
        trace = EventTrace(enabled=True)
        trace.record(1, "a")
        trace.record(2, "b")
        trace.record(3, "a")
        assert [event.round_index for event in trace.of_kind("a")] == [1, 3]

    def test_cap_counts_dropped_events(self):
        trace = EventTrace(enabled=True, max_events=2)
        for index in range(5):
            trace.record(index, "spam")
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_clear(self):
        trace = EventTrace(enabled=True)
        trace.record(1, "x")
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_iteration(self):
        trace = EventTrace(enabled=True)
        trace.record(1, "x")
        trace.record(2, "y")
        assert [event.kind for event in trace] == ["x", "y"]
