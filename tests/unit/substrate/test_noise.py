"""Unit tests for repro.substrate.noise."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.substrate.noise import (
    AdversarialFlipBudgetChannel,
    BinarySymmetricChannel,
    HeterogeneousChannel,
    PerfectChannel,
    crossover_probability,
    validate_epsilon,
)


class TestValidateEpsilon:
    def test_valid_values_pass_through(self):
        assert validate_epsilon(0.25) == 0.25
        assert validate_epsilon(0.5) == 0.5

    @pytest.mark.parametrize("bad", [0.0, -0.1, 0.51, 1.0])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(ParameterError):
            validate_epsilon(bad)

    def test_crossover_probability(self):
        assert crossover_probability(0.5) == 0.0
        assert crossover_probability(0.1) == pytest.approx(0.4)


class TestBinarySymmetricChannel:
    def test_flip_rate_close_to_crossover(self, rng):
        channel = BinarySymmetricChannel(epsilon=0.2)
        bits = np.zeros(200_000, dtype=np.int8)
        received = channel.transmit(bits, rng)
        assert received.mean() == pytest.approx(0.3, abs=0.01)

    def test_counts_flips(self, rng):
        channel = BinarySymmetricChannel(epsilon=0.2)
        bits = np.ones(10_000, dtype=np.int8)
        received = channel.transmit(bits, rng)
        assert channel.flips_applied() == int(np.count_nonzero(received == 0))

    def test_empty_input(self, rng):
        channel = BinarySymmetricChannel(epsilon=0.2)
        assert channel.transmit(np.empty(0, dtype=np.int8), rng).size == 0

    def test_rejects_non_bits(self, rng):
        channel = BinarySymmetricChannel(epsilon=0.2)
        with pytest.raises(ParameterError):
            channel.transmit(np.asarray([0, 2]), rng)

    def test_reset_counters(self, rng):
        channel = BinarySymmetricChannel(epsilon=0.2)
        channel.transmit(np.zeros(1000, dtype=np.int8), rng)
        channel.reset_counters()
        assert channel.flips_applied() == 0

    def test_does_not_mutate_input(self, rng):
        channel = BinarySymmetricChannel(epsilon=0.1)
        bits = np.zeros(1000, dtype=np.int8)
        channel.transmit(bits, rng)
        assert bits.sum() == 0


class TestPerfectChannel:
    def test_never_flips(self, rng):
        channel = PerfectChannel()
        bits = rng.integers(0, 2, size=5000).astype(np.int8)
        np.testing.assert_array_equal(channel.transmit(bits, rng), bits)
        assert channel.flips_applied() == 0

    def test_epsilon_forced_to_half(self):
        assert PerfectChannel(epsilon=0.1).epsilon == 0.5


class TestHeterogeneousChannel:
    def test_flip_rate_below_crossover_bound(self, rng):
        channel = HeterogeneousChannel(epsilon=0.2)
        bits = np.zeros(200_000, dtype=np.int8)
        received = channel.transmit(bits, rng)
        # Per-message flip probabilities are uniform in [0, 0.3], mean 0.15.
        assert received.mean() < 0.3
        assert received.mean() == pytest.approx(0.15, abs=0.01)

    def test_low_fraction_one_behaves_like_bsc(self, rng):
        channel = HeterogeneousChannel(epsilon=0.2, low_fraction=1.0)
        bits = np.zeros(100_000, dtype=np.int8)
        assert channel.transmit(bits, rng).mean() == pytest.approx(0.3, abs=0.01)

    def test_invalid_low_fraction(self):
        with pytest.raises(ParameterError):
            HeterogeneousChannel(epsilon=0.2, low_fraction=1.5)


class TestAdversarialFlipBudgetChannel:
    def test_spends_budget_then_stops(self, rng):
        channel = AdversarialFlipBudgetChannel(epsilon=0.2, budget=3)
        first = channel.transmit(np.zeros(2, dtype=np.int8), rng)
        np.testing.assert_array_equal(first, [1, 1])
        second = channel.transmit(np.zeros(4, dtype=np.int8), rng)
        np.testing.assert_array_equal(second, [1, 0, 0, 0])
        assert channel.remaining_budget == 0
        third = channel.transmit(np.zeros(2, dtype=np.int8), rng)
        np.testing.assert_array_equal(third, [0, 0])

    def test_negative_budget_rejected(self):
        with pytest.raises(ParameterError):
            AdversarialFlipBudgetChannel(epsilon=0.2, budget=-1)
