"""Unit tests for repro.substrate.engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.substrate import (
    BinarySymmetricChannel,
    PerfectChannel,
    Population,
    PushGossipNetwork,
    RandomSource,
    SimulationEngine,
)


class TestCreation:
    def test_create_wires_consistent_components(self):
        engine = SimulationEngine.create(n=30, epsilon=0.3, seed=1)
        assert engine.n == 30
        assert engine.epsilon == 0.3
        assert engine.population.size == engine.network.size == 30
        assert engine.now == 0

    def test_create_without_source(self):
        engine = SimulationEngine.create(n=10, epsilon=0.3, seed=1, source=None)
        assert engine.population.source is None
        assert engine.population.num_activated() == 0

    def test_create_with_custom_channel(self):
        engine = SimulationEngine.create(n=10, epsilon=0.3, seed=1, channel=PerfectChannel())
        assert engine.epsilon == 0.5

    def test_create_with_local_clocks(self):
        engine = SimulationEngine.create(n=10, epsilon=0.3, seed=1, with_local_clocks=True)
        assert engine.local_clocks is not None
        assert engine.local_clocks.size == 10

    def test_mismatched_components_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationEngine(
                population=Population(size=5),
                network=PushGossipNetwork(size=6),
                channel=BinarySymmetricChannel(epsilon=0.2),
                random=RandomSource(seed=1),
            )

    def test_same_seed_reproduces_runs(self):
        def run(seed):
            engine = SimulationEngine.create(n=40, epsilon=0.25, seed=seed)
            senders = np.arange(10)
            bits = np.ones(10, dtype=np.int8)
            report = engine.gossip_round(senders, bits)
            return report.recipients.tolist(), report.bits.tolist()

        assert run(99) == run(99)
        assert run(99) != run(100)


class TestGossipRound:
    def test_round_advances_clock_and_metrics(self, small_engine):
        report = small_engine.gossip_round(np.asarray([0]), np.asarray([1], dtype=np.int8))
        assert small_engine.now == 1
        assert small_engine.metrics.rounds == 1
        assert small_engine.metrics.messages_sent == 1
        assert report.messages_sent == 1

    def test_idle_round(self, small_engine):
        small_engine.idle_round()
        assert small_engine.now == 1
        assert small_engine.metrics.messages_sent == 0

    def test_time_series_recording(self):
        engine = SimulationEngine.create(n=20, epsilon=0.3, seed=5, record_time_series=True)
        engine.population.set_source_opinion(1)
        engine.gossip_round(np.asarray([0]), np.asarray([1], dtype=np.int8), correct_opinion=1)
        assert len(engine.metrics.correct_fraction_series) == 1
        assert engine.metrics.correct_fraction_series[0] == pytest.approx(1 / 20)

    def test_multi_accept_round(self, small_engine):
        senders = np.arange(10)
        report = small_engine.gossip_round(senders, np.zeros(10, dtype=np.int8), multi_accept=True)
        assert report.messages_delivered == 10

    def test_trace_records_deliveries_when_enabled(self):
        engine = SimulationEngine.create(n=20, epsilon=0.3, seed=5, trace_events=True)
        engine.gossip_round(np.asarray([0, 1]), np.asarray([1, 0], dtype=np.int8))
        assert len(engine.trace.of_kind("deliver")) == 1

    def test_protocol_rng_is_stable_stream(self, small_engine):
        assert small_engine.protocol_rng() is small_engine.protocol_rng()

    def test_spawn_subengine_seed_deterministic(self):
        first = SimulationEngine.create(n=10, epsilon=0.3, seed=4)
        second = SimulationEngine.create(n=10, epsilon=0.3, seed=4)
        assert first.spawn_subengine_seed("x") == second.spawn_subengine_seed("x")
