"""Unit tests for repro.substrate.scheduler."""

import pytest

from repro.errors import ParameterError
from repro.substrate.scheduler import RoundScheduler, StopReason


class TestRoundScheduler:
    def test_runs_until_budget(self):
        calls = []
        outcome = RoundScheduler(max_rounds=5).run(lambda r: calls.append(r) or True)
        assert outcome.rounds_executed == 5
        assert outcome.stop_reason is StopReason.BUDGET_EXHAUSTED
        assert not outcome.converged
        assert calls == [0, 1, 2, 3, 4]

    def test_stops_when_step_returns_false(self):
        outcome = RoundScheduler(max_rounds=100).run(lambda r: r < 3)
        assert outcome.rounds_executed == 4
        assert outcome.stop_reason is StopReason.CONVERGED
        assert outcome.converged

    def test_stop_predicate_checked_on_schedule(self):
        checks = []

        def predicate(round_index):
            checks.append(round_index)
            return round_index >= 5

        outcome = RoundScheduler(max_rounds=100, check_every=3).run(lambda r: True, predicate)
        assert outcome.stop_reason is StopReason.PREDICATE
        # Predicate runs at rounds 2, 5 (0-based) -> stops after 6 executed rounds.
        assert checks == [2, 5]
        assert outcome.rounds_executed == 6

    def test_zero_budget(self):
        outcome = RoundScheduler(max_rounds=0).run(lambda r: True)
        assert outcome.rounds_executed == 0
        assert outcome.stop_reason is StopReason.BUDGET_EXHAUSTED

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            RoundScheduler(max_rounds=-1)
        with pytest.raises(ParameterError):
            RoundScheduler(max_rounds=10, check_every=0)
