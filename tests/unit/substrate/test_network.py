"""Unit tests for repro.substrate.network."""

import numpy as np
import pytest

from repro.errors import ParameterError, ProtocolError
from repro.substrate.network import DeliveryReport, PushGossipNetwork
from repro.substrate.noise import PerfectChannel


@pytest.fixture
def perfect():
    return PerfectChannel()


class TestDeliveryBasics:
    def test_empty_round(self, perfect, rng):
        network = PushGossipNetwork(size=10)
        report = network.deliver(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int8), perfect, rng)
        assert report.messages_sent == 0
        assert report.recipients.size == 0

    def test_single_sender_reaches_someone_else(self, perfect, rng):
        network = PushGossipNetwork(size=10)
        report = network.deliver(np.asarray([4]), np.asarray([1], dtype=np.int8), perfect, rng)
        assert report.messages_sent == 1
        assert report.messages_delivered == 1
        assert report.recipients[0] != 4
        assert report.bits[0] == 1
        assert report.senders[0] == 4

    def test_no_self_messages_by_default(self, perfect, rng):
        network = PushGossipNetwork(size=5)
        senders = np.arange(5)
        for _ in range(200):
            report = network.deliver(senders, np.zeros(5, dtype=np.int8), perfect, rng)
            assert not np.any(report.recipients == report.senders)

    def test_self_messages_allowed_when_enabled(self, perfect, rng):
        network = PushGossipNetwork(size=3, allow_self_messages=True)
        hit_self = False
        for _ in range(200):
            report = network.deliver(np.arange(3), np.zeros(3, dtype=np.int8), perfect, rng)
            hit_self = hit_self or bool(np.any(report.recipients == report.senders))
        assert hit_self

    def test_recipients_are_unique(self, perfect, rng):
        network = PushGossipNetwork(size=20)
        senders = np.arange(20)
        report = network.deliver(senders, np.ones(20, dtype=np.int8), perfect, rng)
        assert np.unique(report.recipients).size == report.recipients.size
        assert report.messages_delivered + report.messages_dropped == report.messages_sent

    def test_counters_accumulate(self, perfect, rng):
        network = PushGossipNetwork(size=20)
        for _ in range(3):
            network.deliver(np.arange(10), np.zeros(10, dtype=np.int8), perfect, rng)
        assert network.messages_sent_total == 30
        assert network.rounds_executed == 3
        network.reset_counters()
        assert network.messages_sent_total == 0


class TestValidation:
    def test_duplicate_senders_rejected(self, perfect, rng):
        network = PushGossipNetwork(size=10)
        with pytest.raises(ProtocolError):
            network.deliver(np.asarray([1, 1]), np.asarray([0, 1], dtype=np.int8), perfect, rng)

    def test_sender_out_of_range_rejected(self, perfect, rng):
        network = PushGossipNetwork(size=10)
        with pytest.raises(ProtocolError):
            network.deliver(np.asarray([10]), np.asarray([1], dtype=np.int8), perfect, rng)

    def test_invalid_bits_rejected(self, perfect, rng):
        network = PushGossipNetwork(size=10)
        with pytest.raises(ProtocolError):
            network.deliver(np.asarray([1]), np.asarray([3], dtype=np.int8), perfect, rng)

    def test_shape_mismatch_rejected(self, perfect, rng):
        network = PushGossipNetwork(size=10)
        with pytest.raises(ProtocolError):
            network.deliver(np.asarray([1, 2]), np.asarray([1], dtype=np.int8), perfect, rng)

    def test_tiny_network_rejected(self):
        with pytest.raises(ParameterError):
            PushGossipNetwork(size=1)


class TestCollisionStatistics:
    def test_collision_rate_matches_balls_in_bins(self, perfect, rng):
        """With n senders and n receivers the delivered fraction is ~1 - 1/e."""
        n = 2000
        network = PushGossipNetwork(size=n, allow_self_messages=True)
        report = network.deliver(np.arange(n), np.zeros(n, dtype=np.int8), perfect, rng)
        delivered_fraction = report.messages_delivered / n
        assert delivered_fraction == pytest.approx(1 - np.exp(-1), abs=0.03)

    def test_accepted_message_is_uniform_among_collisions(self, perfect):
        """When two senders always target the same receiver, each wins about half the time."""
        rng = np.random.default_rng(7)
        network = PushGossipNetwork(size=2, allow_self_messages=False)
        # With n=2 and no self messages, both agents always send to each other...
        # so use 3 agents where agents 0 and 1 both have only agent 2 as a
        # possible target in a size-3 network when targets collide.
        wins_for_zero = 0
        collisions = 0
        network = PushGossipNetwork(size=3)
        for _ in range(3000):
            report = network.deliver(
                np.asarray([0, 1]), np.asarray([0, 1], dtype=np.int8), perfect, rng
            )
            if report.recipients.size == 1 and report.recipients[0] == 2:
                collisions += 1
                wins_for_zero += int(report.senders[0] == 0)
        assert collisions > 500
        assert wins_for_zero / collisions == pytest.approx(0.5, abs=0.06)


class TestDeliverAll:
    def test_multi_accept_keeps_every_message(self, perfect, rng):
        network = PushGossipNetwork(size=10)
        senders = np.arange(10)
        report = network.deliver_all(senders, np.ones(10, dtype=np.int8), perfect, rng)
        assert report.messages_delivered == 10
        assert report.messages_dropped == 0
        assert report.recipients.size == 10


class TestReferenceImplementation:
    def test_reference_agrees_statistically_with_vectorised(self, perfect):
        """The pure-Python reference and the vectorised path have the same delivery distribution."""
        n = 300
        senders = np.arange(n)
        bits = np.zeros(n, dtype=np.int8)

        def delivered_fraction(method_name, seed):
            network = PushGossipNetwork(size=n)
            rng = np.random.default_rng(seed)
            total = 0
            for _ in range(20):
                report = getattr(network, method_name)(senders, bits, perfect, rng)
                total += report.messages_delivered
            return total / (20 * n)

        fast = delivered_fraction("deliver", 1)
        slow = delivered_fraction("deliver_reference", 2)
        assert fast == pytest.approx(slow, abs=0.03)

    def test_empty_report_helper(self):
        report = DeliveryReport.empty()
        assert report.messages_sent == 0
        assert report.recipients.size == 0


class TestDeliverBatchNoiseStreamOrder:
    """Differential test for the in-code claim at the end of deliver_batch:
    noising the winner bits directly (one ``transmit`` call on the
    bucket-ascending winners) consumes the channel RNG in exactly the same
    replicate-major, recipient-ascending order as
    ``NoiseChannel.transmit_batch`` over the accepted grid would."""

    def test_single_transmit_matches_transmit_batch_bit_for_bit(self):
        from repro.substrate.noise import BinarySymmetricChannel

        n, R, seed = 40, 8, 2024
        mask = np.ones((R, n), dtype=bool)
        bits = (np.arange(R * n).reshape(R, n) % 2).astype(np.int8)

        # Pass 1 — PerfectChannel consumes no channel randomness, so after
        # this call rng_clean sits exactly where the noise draw would begin,
        # and the report carries the accepted mask and the pre-noise bits.
        rng_clean = np.random.default_rng(seed)
        clean = PushGossipNetwork(size=n).deliver_batch(mask, bits, PerfectChannel(), rng_clean)
        assert clean.accepted.any()

        # Pass 2 — the same round with a noisy channel: targets/priorities
        # consume identically, then deliver_batch noises the winners with a
        # single transmit call.
        rng_noisy = np.random.default_rng(seed)
        noisy = PushGossipNetwork(size=n).deliver_batch(
            mask, bits, BinarySymmetricChannel(epsilon=0.2), rng_noisy
        )
        assert np.array_equal(clean.accepted, noisy.accepted)

        # Applying transmit_batch to the clean grid from the positioned
        # generator must reproduce the noisy grid bit for bit.
        reference = BinarySymmetricChannel(epsilon=0.2).transmit_batch(
            clean.bits, clean.accepted, rng_clean
        )
        assert np.array_equal(reference, noisy.bits)
        # And the generators end in the same state (no hidden extra draws).
        assert np.array_equal(rng_clean.integers(0, 1 << 30, 8), rng_noisy.integers(0, 1 << 30, 8))


class TestDeliverAllBatch:
    """The batch-aware multi-accept companion: invariants, marginals and the
    transmit_batch noise-stream reuse it documents."""

    def test_every_message_delivered_per_replicate(self, perfect):
        network = PushGossipNetwork(size=12)
        rng = np.random.default_rng(3)
        mask = np.zeros((4, 12), dtype=bool)
        mask[:, :5] = True
        mask[2, :] = False  # a silent replicate stays silent
        bits = np.ones((4, 12), dtype=np.int8)
        report = network.deliver_all_batch(mask, bits, perfect, rng)
        assert np.array_equal(report.messages_sent, mask.sum(axis=1))
        assert np.array_equal(report.messages_delivered, report.messages_sent)
        # Message-aligned arrays cover exactly the senders, replicate-major.
        rows, cols = np.nonzero(mask)
        assert np.array_equal(report.replicates, rows)
        assert np.array_equal(report.senders, cols)
        assert not np.any(report.recipients == report.senders), "no self-delivery"
        counts = report.delivery_counts(12)
        assert np.array_equal(counts.sum(axis=1), report.messages_sent)

    def test_noiseless_bits_pass_through(self, perfect):
        network = PushGossipNetwork(size=10)
        rng = np.random.default_rng(5)
        mask = np.ones((3, 10), dtype=bool)
        bits = (np.arange(30).reshape(3, 10) % 2).astype(np.int8)
        report = network.deliver_all_batch(mask, bits, perfect, rng)
        assert np.array_equal(report.bits, bits[mask])

    def test_noise_stream_reuses_transmit_batch_bit_for_bit(self):
        """Targets are drawn first, then the noise is literally one
        transmit_batch call over the sender grid — replayable exactly."""
        from repro.substrate.noise import BinarySymmetricChannel

        n, R, seed = 30, 5, 99
        mask = np.random.default_rng(0).random((R, n)) < 0.6
        bits = np.ones((R, n), dtype=np.int8)

        rng = np.random.default_rng(seed)
        report = PushGossipNetwork(size=n).deliver_all_batch(
            mask, bits, BinarySymmetricChannel(epsilon=0.2), rng
        )

        replay = np.random.default_rng(seed)
        rows, cols = np.nonzero(mask)
        draws = replay.integers(0, n - 1, size=rows.size)
        expected_targets = draws + (draws >= cols)
        expected_noisy = BinarySymmetricChannel(epsilon=0.2).transmit_batch(bits, mask, replay)
        assert np.array_equal(report.recipients, expected_targets)
        assert np.array_equal(report.bits, expected_noisy[mask])
        assert np.array_equal(rng.integers(0, 1 << 30, 8), replay.integers(0, 1 << 30, 8))

    def test_counters_and_empty_round(self, perfect):
        network = PushGossipNetwork(size=8)
        rng = np.random.default_rng(1)
        report = network.deliver_all_batch(
            np.zeros((2, 8), dtype=bool), np.zeros((2, 8), dtype=np.int8), perfect, rng
        )
        assert report.num_replicates == 2
        assert report.replicates.size == 0
        assert network.messages_sent_total == 0
        assert network.rounds_executed == 1

    def test_validation(self, perfect):
        network = PushGossipNetwork(size=10)
        rng = np.random.default_rng(0)
        with pytest.raises(ProtocolError):
            network.deliver_all_batch(
                np.ones(10, dtype=bool), np.ones(10, dtype=np.int8), perfect, rng
            )
        with pytest.raises(ProtocolError):
            network.deliver_all_batch(
                np.ones((2, 8), dtype=bool), np.ones((2, 8), dtype=np.int8), perfect, rng
            )
        with pytest.raises(ProtocolError):
            network.deliver_all_batch(
                np.ones((2, 10), dtype=bool), np.full((2, 10), 3, dtype=np.int8), perfect, rng
            )
