"""Unit and property tests for the contact-graph topology policies.

Each :class:`~repro.substrate.topology.ContactTopology` replaces the uniform
push target draw; the tests pin the structural guarantees (degree windows,
cluster membership, offline masks, never-self targets) and the marginal
rates (cross-cluster fraction, offline fraction) against the configured
parameters, plus batch/serial marginal agreement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.substrate.noise import PerfectChannel
from repro.substrate.network import PushGossipNetwork
from repro.substrate.topology import (
    ChurnTopology,
    DegreeLimitedTopology,
    TwoClusterTopology,
)


class TestValidation:
    def test_degree_bounds(self):
        with pytest.raises(ParameterError):
            DegreeLimitedTopology(degree=0)
        with pytest.raises(ParameterError):
            DegreeLimitedTopology(degree=10).validate(10)
        DegreeLimitedTopology(degree=9).validate(10)

    def test_two_cluster_needs_four_agents(self):
        with pytest.raises(ParameterError):
            TwoClusterTopology().validate(3)
        with pytest.raises(ParameterError):
            TwoClusterTopology(cross_probability=1.5)
        TwoClusterTopology().validate(4)

    def test_churn_probability_range(self):
        with pytest.raises(ParameterError):
            ChurnTopology(offline_probability=1.0)
        with pytest.raises(ParameterError):
            ChurnTopology(offline_probability=-0.1)
        ChurnTopology(offline_probability=0.0).validate(5)


class TestDegreeLimited:
    def test_targets_stay_in_the_forward_window(self):
        degree, size = 5, 30
        topology = DegreeLimitedTopology(degree=degree)
        targets, offline = topology.draw_round_grid(8, size, np.random.default_rng(1))
        assert offline is None
        assert targets.shape == (8, size)
        cols = np.arange(size)[None, :]
        distance = (targets - cols) % size
        assert (distance >= 1).all() and (distance <= degree).all()

    def test_all_window_members_are_reachable(self):
        topology = DegreeLimitedTopology(degree=3)
        targets, _ = topology.draw_round_grid(400, 10, np.random.default_rng(2))
        distances = np.unique((targets - np.arange(10)[None, :]) % 10)
        assert set(distances.tolist()) == {1, 2, 3}


class TestTwoCluster:
    def test_cluster_membership_of_targets(self):
        size = 40
        topology = TwoClusterTopology(cross_probability=0.0)
        targets, offline = topology.draw_round_grid(20, size, np.random.default_rng(3))
        assert offline is None
        half = size // 2
        cols = np.arange(size)[None, :]
        same_side = (targets < half) == (cols < half)
        assert same_side.all()
        assert (targets != cols).all()

    def test_cross_fraction_matches_probability(self):
        cross_probability = 0.2
        topology = TwoClusterTopology(cross_probability=cross_probability)
        targets, _ = topology.draw_round_grid(300, 30, np.random.default_rng(4))
        cols = np.arange(30)[None, :]
        crossed = (targets < 15) != (cols < 15)
        rate = crossed.mean()
        assert abs(rate - cross_probability) < 0.02

    def test_odd_population_puts_extra_agent_in_second_cluster(self):
        topology = TwoClusterTopology(cross_probability=0.0)
        targets, _ = topology.draw_round_grid(50, 9, np.random.default_rng(5))
        cols = np.arange(9)[None, :]
        assert (((targets < 4) == (cols < 4)) | (cols >= 4)).all()


class TestChurn:
    def test_offline_rate_matches_probability(self):
        offline_probability = 0.15
        topology = ChurnTopology(offline_probability=offline_probability)
        targets, offline = topology.draw_round_grid(200, 50, np.random.default_rng(6))
        assert offline is not None and offline.shape == (200, 50)
        assert abs(offline.mean() - offline_probability) < 0.01
        assert (targets != np.arange(50)[None, :]).all()

    def test_zero_churn_behaves_like_uniform(self):
        topology = ChurnTopology(offline_probability=0.0)
        targets, offline = topology.draw_round_grid(100, 20, np.random.default_rng(7))
        assert not offline.any()
        # Every non-self target appears (marginal support check).
        for agent in (0, 7, 19):
            seen = set(targets[:, agent].tolist())
            assert agent not in seen
            assert len(seen) > 10

    def test_offline_agents_neither_send_nor_receive(self):
        network = PushGossipNetwork(size=12)
        topology = ChurnTopology(offline_probability=0.5)
        rng = np.random.default_rng(8)
        saw_drop = False
        for _ in range(20):
            report = network.deliver(
                np.arange(12), np.ones(12, dtype=np.int8), PerfectChannel(), rng,
                topology=topology,
            )
            saw_drop = saw_drop or report.messages_sent < 12
        assert saw_drop


class TestSerialGridAgreement:
    @pytest.mark.parametrize(
        "topology",
        [
            DegreeLimitedTopology(degree=4),
            TwoClusterTopology(cross_probability=0.1),
            ChurnTopology(offline_probability=0.2),
        ],
        ids=["degree", "two-cluster", "churn"],
    )
    def test_draw_round_matches_grid_marginals(self, topology):
        """The serial draw is the R=1 row of the grid draw (same stream)."""
        size = 16
        grid_targets, grid_offline = topology.draw_round_grid(
            1, size, np.random.default_rng(99)
        )
        serial_targets, serial_offline = topology.draw_round(size, np.random.default_rng(99))
        assert np.array_equal(serial_targets, grid_targets[0])
        if grid_offline is None:
            assert serial_offline is None
        else:
            assert np.array_equal(serial_offline, grid_offline[0])
