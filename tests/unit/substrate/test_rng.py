"""Unit tests for repro.substrate.rng."""

import numpy as np
import pytest

from repro.substrate.rng import RandomSource, derive_seed, spawn_generator


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_distinct_tokens_give_distinct_seeds(self):
        seeds = {derive_seed(7, "stream", name) for name in ("a", "b", "c", "d")}
        assert len(seeds) == 4

    def test_distinct_roots_give_distinct_seeds(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_seed_is_non_negative(self):
        assert derive_seed(123456, "anything") >= 0


class TestSpawnGenerator:
    def test_same_tokens_reproduce_stream(self):
        first = spawn_generator(5, "noise").random(10)
        second = spawn_generator(5, "noise").random(10)
        np.testing.assert_allclose(first, second)

    def test_different_tokens_diverge(self):
        first = spawn_generator(5, "noise").random(10)
        second = spawn_generator(5, "delivery").random(10)
        assert not np.allclose(first, second)


class TestRandomSource:
    def test_stream_is_cached(self):
        source = RandomSource(seed=11)
        assert source.stream("delivery") is source.stream("delivery")

    def test_streams_are_independent_of_creation_order(self):
        first = RandomSource(seed=11)
        a_then_b = (first.stream("a").random(5), first.stream("b").random(5))
        second = RandomSource(seed=11)
        b_then_a = (second.stream("b").random(5), second.stream("a").random(5))
        np.testing.assert_allclose(a_then_b[0], b_then_a[1])
        np.testing.assert_allclose(a_then_b[1], b_then_a[0])

    def test_child_sources_differ_from_parent_and_each_other(self):
        source = RandomSource(seed=3)
        children = list(source.children(3))
        seeds = {child.seed for child in children} | {source.seed}
        assert len(seeds) == 4

    def test_child_reproducible(self):
        assert RandomSource(seed=9).child("trial", 4).seed == RandomSource(seed=9).child("trial", 4).seed

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomSource(seed="not-a-seed")

    def test_integers_proxy(self):
        source = RandomSource(seed=21)
        values = source.integers(0, 10, size=100)
        assert values.shape == (100,)
        assert values.min() >= 0 and values.max() < 10
