"""Tests for the run-artifact store (save_run / load_run round-trips)."""

from __future__ import annotations

import json
import math

import pytest

from repro.store import (
    RunArtifact,
    decode_nonfinite,
    encode_nonfinite,
    load_run,
    save_run,
)
from repro.analysis.sweeps import run_sweep
from repro.api import ExecutionConfig, run_experiment
from repro.errors import ExperimentError
from repro.experiments.report import ExperimentReport


def _reject_constant(name: str):
    """parse_constant hook: fail on any NaN/Infinity token in saved JSON."""
    raise AssertionError(f"saved JSON contains a non-strict constant: {name}")


def _strict_load(path):
    return json.loads(path.read_text(), parse_constant=_reject_constant)


def _sweep_trial(point, seed, index):
    """Minimal deterministic sweep trial (module-level, picklable)."""
    return {"value": point["x"] * 10 + index}


class TestNonfiniteCodec:
    def test_nan_inf_and_none_survive_distinctly(self):
        payload = {"a": float("nan"), "b": float("inf"), "c": float("-inf"), "d": None, "e": 1.5}
        decoded = decode_nonfinite(json.loads(json.dumps(encode_nonfinite(payload))))
        assert math.isnan(decoded["a"])
        assert decoded["b"] == math.inf and decoded["c"] == -math.inf
        assert decoded["d"] is None and decoded["e"] == 1.5

    def test_reserved_key_rejected(self):
        with pytest.raises(ExperimentError, match="__nonfinite__"):
            encode_nonfinite({"__nonfinite__": "boom"})


class TestArtifactRoundTrip:
    def test_run_experiment_artifact_round_trips(self, tmp_path):
        artifact = run_experiment(
            "E10", config=ExecutionConfig(batch=True), deltas=(0.01, 0.1), monte_carlo_reps=2000
        )
        destination = save_run(artifact, tmp_path / "run")
        assert artifact.path == destination

        _strict_load(destination / "manifest.json")
        _strict_load(destination / "report.json")

        loaded = load_run(destination)
        assert loaded.spec_id == artifact.spec_id
        assert loaded.version == artifact.version
        assert loaded.wall_time_seconds == pytest.approx(artifact.wall_time_seconds)
        assert loaded.execution == artifact.execution
        assert loaded.report.render() == artifact.report.render()

    def test_nonfinite_report_cells_round_trip_to_identical_tables(self, tmp_path):
        report = ExperimentReport(experiment_id="EX", title="demo", claim="c")
        report.add_row(scheme="a", mean_rounds=float("nan"), bound=float("inf"), extra=None)
        report.add_row(scheme="b", mean_rounds=12.5, bound=float("-inf"), extra=3)
        artifact = RunArtifact(spec_id="EX", report=report)
        destination = save_run(artifact, tmp_path / "run")
        _strict_load(destination / "report.json")

        loaded = load_run(destination)
        assert loaded.report.render() == report.render()
        assert math.isnan(loaded.report.rows[0]["mean_rounds"])
        assert loaded.report.rows[0]["extra"] is None
        assert loaded.report.rows[1]["bound"] == -math.inf

    def test_artifact_without_report_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="without a report"):
            save_run(RunArtifact(spec_id="EX"), tmp_path / "run")

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="run manifest"):
            load_run(tmp_path / "nowhere")


class TestSweepPayloadsAndCanonicalNaming:
    """The manifest records canonical point names, duplicate grids included."""

    def _artifact_with_duplicate_grid(self):
        report = ExperimentReport(experiment_id="EX", title="demo", claim="c")
        report.add_row(ok=True)
        sweep = run_sweep(
            "dup", [{"x": 1}, {"x": 1}, {"x": 2}], _sweep_trial, trials_per_point=2, base_seed=5
        )
        artifact = RunArtifact(spec_id="EX", report=report)
        artifact.attach_sweep("grid", sweep)
        return artifact, sweep

    def test_manifest_point_names_are_disambiguated(self, tmp_path):
        artifact, sweep = self._artifact_with_duplicate_grid()
        destination = save_run(artifact, tmp_path / "run")

        manifest = _strict_load(destination / "manifest.json")
        names = manifest["files"]["sweeps"]["grid"]["point_names"]
        assert names == ["dup[x=1]", "dup[x=1]#1", "dup[x=2]"]
        assert len(set(names)) == len(names), "duplicate grid points must stay distinguishable"
        assert names == sweep.point_names()  # the canonical helper, reused verbatim

        loaded = load_run(destination)
        assert loaded.sweeps["grid"].point_names() == names
        assert [r.name for r in loaded.sweeps["grid"].results] == names

    def test_tampered_point_names_fail_loudly_on_load(self, tmp_path):
        artifact, _ = self._artifact_with_duplicate_grid()
        destination = save_run(artifact, tmp_path / "run")
        manifest_path = destination / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["files"]["sweeps"]["grid"]["point_names"] = ["dup[x=1]", "dup[x=1]", "dup[x=2]"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ExperimentError, match="payload derives"):
            load_run(destination)

    def test_unsafe_payload_keys_rejected(self):
        artifact, sweep = self._artifact_with_duplicate_grid()
        with pytest.raises(ExperimentError, match="safe file stem"):
            artifact.attach_sweep("../escape", sweep)

    def test_manifest_file_entries_cannot_escape_the_artifact(self, tmp_path):
        artifact, _ = self._artifact_with_duplicate_grid()
        destination = save_run(artifact, tmp_path / "run")
        manifest_path = destination / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["files"]["sweeps"]["grid"]["file"] = "/etc/hostname"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ExperimentError, match="outside the artifact layout"):
            load_run(destination)
