"""Unit tests for ExecutionConfig resolution into ExecutionPlans."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import ExecutionConfig, ExecutionPlan, get_spec, resolve_run_options
from repro.errors import ExperimentError
from repro.exec import ParallelTrialRunner, SerialTrialRunner


class TestResolution:
    def test_default_config_is_serial(self):
        plan = ExecutionConfig().resolve("E1")
        assert plan.runner is None and not plan.batch and plan.point_jobs is None
        assert plan.spec is get_spec("E1")
        assert plan.notes == ()

    def test_jobs_map_to_runners_like_the_cli(self):
        assert isinstance(ExecutionConfig(jobs=1).resolve("E1").runner, SerialTrialRunner)
        parallel = ExecutionConfig(jobs=4).resolve("E1").runner
        assert isinstance(parallel, ParallelTrialRunner) and parallel.jobs == 4
        all_cpus = ExecutionConfig(jobs=0).resolve("E1").runner
        assert isinstance(all_cpus, ParallelTrialRunner) and all_cpus.jobs is None

    def test_negative_jobs_rejected(self):
        with pytest.raises(ExperimentError, match="non-negative"):
            ExecutionConfig(jobs=-2).resolve("E1")

    def test_batch_with_jobs_becomes_point_parallelism(self):
        plan = ExecutionConfig(jobs=3, batch=True).resolve("E8")
        assert plan.batch and plan.point_jobs == 3 and plan.runner is None

    def test_batch_on_unsupported_experiment_names_the_batchable_ones(self):
        # Every registered experiment is batchable since the stage kernels
        # landed, so the guard is exercised through a synthetic spec.
        unbatchable = dataclasses.replace(get_spec("E4"), supports_batch=False)
        with pytest.raises(ExperimentError, match=r"E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11"):
            ExecutionConfig(batch=True).resolve(unbatchable)

    def test_jobs_on_batch_only_experiment_yield_a_note_not_parallelism(self):
        plan = ExecutionConfig(jobs=2, batch=True).resolve("E10")
        assert plan.point_jobs is None and plan.runner is None
        assert any("--jobs has no effect" in note for note in plan.notes)

    def test_jobs_on_runnerless_experiment_yield_a_note(self):
        plan = ExecutionConfig(jobs=2).resolve("E10")
        assert plan.runner is None
        assert any("--jobs has no effect" in note for note in plan.notes)

    def test_trials_override_requires_a_trials_parameter(self):
        assert ExecutionConfig(trials=7).resolve("E1").trials == 7
        with pytest.raises(ExperimentError, match="no 'trials' parameter"):
            ExecutionConfig(trials=7).resolve("E10")

    def test_config_is_frozen(self):
        config = ExecutionConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.jobs = 3  # type: ignore[misc]

    def test_describe_summarises_the_plan(self):
        summary = ExecutionConfig(jobs=2, batch=True, trials=3, base_seed=9).resolve("E8").describe()
        assert summary == {
            "jobs": 2,
            "batch": True,
            "runner": "batch",
            "point_jobs": 2,
            "trials": 3,
            "base_seed": 9,
            "backend": None,
            "store": None,
            "notes": [],
        }

    def test_store_path_flows_into_the_plan_and_describe(self, tmp_path):
        plan = ExecutionConfig(store_path=tmp_path / "store").resolve("E8")
        assert plan.store_path == tmp_path / "store" and plan.cache
        assert plan.describe()["store"] == {"path": str(tmp_path / "store"), "cache": True}
        bypass = ExecutionConfig(store_path=str(tmp_path / "store"), cache=False).resolve("E8")
        assert bypass.describe()["store"]["cache"] is False

    def test_store_path_pointing_at_a_file_is_rejected(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")
        with pytest.raises(ExperimentError, match="not a directory"):
            ExecutionConfig(store_path=target).resolve("E8")


class TestBackendResolution:
    def test_default_config_has_no_backend(self):
        plan = ExecutionConfig().resolve("E1")
        assert plan.backend is None and plan.backend_options is None
        assert plan.create_backend() is None
        assert plan.describe()["backend"] is None

    def test_unknown_backend_is_rejected_naming_the_valid_ones(self):
        with pytest.raises(ExperimentError, match="in-process.*local.*remote"):
            ExecutionConfig(backend="threads").resolve("E1")

    def test_unknown_backend_option_is_rejected(self):
        with pytest.raises(ExperimentError, match="chunk_size"):
            ExecutionConfig(backend="local", backend_options={"chunk_size": 3}).resolve("E1")

    def test_backend_options_without_backend_are_rejected(self):
        with pytest.raises(ExperimentError, match="without a backend"):
            ExecutionConfig(backend_options={"workers": 2}).resolve("E1")

    def test_parallel_backend_without_jobs_engages_the_parallel_machinery(self):
        plan = ExecutionConfig(backend="local").resolve("E8")
        assert isinstance(plan.runner, ParallelTrialRunner)
        assert plan.jobs is None  # the *requested* jobs stay untouched

    def test_in_process_backend_stays_serial(self):
        plan = ExecutionConfig(backend="in-process").resolve("E8")
        assert plan.runner is None and plan.point_jobs is None

    def test_explicit_jobs_win_over_the_backend_default(self):
        plan = ExecutionConfig(jobs=3, backend="local").resolve("E8")
        assert isinstance(plan.runner, ParallelTrialRunner) and plan.runner.jobs == 3

    def test_create_backend_builds_the_named_backend(self):
        from repro.exec.backends import InProcessBackend, LocalPoolBackend, RemoteWorkerBackend

        assert isinstance(
            ExecutionConfig(backend="in-process").resolve("E1").create_backend(),
            InProcessBackend,
        )
        local = ExecutionConfig(backend="local", backend_options={"workers": 2}).resolve(
            "E1"
        ).create_backend()
        assert isinstance(local, LocalPoolBackend) and local.jobs == 2
        remote = ExecutionConfig(
            backend="remote", backend_options={"workers": 2, "chunk_size": 4}
        ).resolve("E1").create_backend()
        assert isinstance(remote, RemoteWorkerBackend)
        assert remote.workers == 2 and remote.settings.chunk_size == 4

    def test_describe_records_the_backend(self):
        summary = ExecutionConfig(
            backend="remote", backend_options={"workers": 2}
        ).resolve("E8").describe()
        assert summary["backend"] == {"name": "remote", "options": {"workers": 2}}


class TestFromEnv:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_JOBS", raising=False)
        assert ExecutionConfig.from_env("REPRO_TEST_JOBS").jobs is None

    def test_set_value_is_parsed_as_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_JOBS", " 3 ")
        config = ExecutionConfig.from_env("REPRO_TEST_JOBS", batch=True)
        assert config.jobs == 3 and config.batch

    def test_repro_backend_selects_the_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_JOBS", raising=False)
        monkeypatch.setenv("REPRO_BACKEND", "local")
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        config = ExecutionConfig.from_env("REPRO_TEST_JOBS")
        assert config.backend == "local" and config.backend_options is None

    def test_repro_workers_becomes_a_backend_option(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_JOBS", raising=False)
        monkeypatch.setenv("REPRO_BACKEND", "remote")
        monkeypatch.setenv("REPRO_WORKERS", " 4 ")
        config = ExecutionConfig.from_env("REPRO_TEST_JOBS")
        assert config.backend == "remote"
        assert config.backend_options == {"workers": 4}

    def test_repro_workers_without_backend_is_ignored(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_JOBS", raising=False)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_WORKERS", "4")
        config = ExecutionConfig.from_env("REPRO_TEST_JOBS")
        assert config.backend is None and config.backend_options is None

    def test_empty_backend_variable_means_default_dispatch(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_JOBS", raising=False)
        monkeypatch.setenv("REPRO_BACKEND", "  ")
        config = ExecutionConfig.from_env("REPRO_TEST_JOBS")
        assert config.backend is None

    def test_repro_store_selects_the_run_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_JOBS", raising=False)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_STORE", " runs/store ")
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        config = ExecutionConfig.from_env("REPRO_TEST_JOBS")
        assert config.store_path == "runs/store" and config.cache

    def test_repro_cache_falsy_values_disable_the_lookup(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_JOBS", raising=False)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_STORE", raising=False)
        for raw in ("0", "false", "No", "OFF"):
            monkeypatch.setenv("REPRO_CACHE", raw)
            assert not ExecutionConfig.from_env("REPRO_TEST_JOBS").cache
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert ExecutionConfig.from_env("REPRO_TEST_JOBS").cache
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert ExecutionConfig.from_env("REPRO_TEST_JOBS").cache


class TestResolveRunOptions:
    def test_config_and_legacy_kwargs_are_mutually_exclusive(self):
        with pytest.raises(ExperimentError, match="both config= and legacy"):
            resolve_run_options("E1", config=ExecutionConfig(), batch=True)

    def test_resolved_plan_passes_through_unchanged(self):
        plan = ExecutionConfig(batch=True).resolve("E1")
        assert resolve_run_options("E1", config=plan) is plan

    def test_plan_for_another_experiment_is_rejected(self):
        plan = ExecutionConfig(batch=True).resolve("E2")
        with pytest.raises(ExperimentError, match="resolved for E2"):
            resolve_run_options("E1", config=plan)

    def test_unexpected_config_type_is_rejected(self):
        with pytest.raises(ExperimentError, match="ExecutionConfig or ExecutionPlan"):
            resolve_run_options("E1", config=object())  # type: ignore[arg-type]

    def test_legacy_kwargs_warn_once_and_flow_through(self):
        with pytest.warns(DeprecationWarning, match="run_experiment"):
            plan = resolve_run_options("E8", batch=True, point_jobs=2)
        assert isinstance(plan, ExecutionPlan)
        assert plan.batch and plan.point_jobs == 2

    def test_no_arguments_neither_warn_nor_resolve_parallelism(self, recwarn):
        plan = resolve_run_options("E8")
        assert not plan.batch and plan.runner is None and plan.point_jobs is None
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]
