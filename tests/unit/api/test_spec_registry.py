"""Drift pins for the experiment registry.

The registry (:mod:`repro.api.spec`) *declares* capability flags and
parameter defaults so that nothing needs to introspect driver signatures at
runtime.  These tests are the other half of that contract: they introspect
the signatures *here, once, in the test suite* and fail if a declared flag
or default ever disagrees with a driver's actual ``run`` signature — or if
the README experiment table stops matching the registry.
"""

from __future__ import annotations

import inspect
import re
from pathlib import Path

import pytest

from repro.api import (
    REGISTRY,
    batchable_experiment_ids,
    experiment_ids,
    get_spec,
    iter_specs,
    sweep_point_names,
)
from repro.errors import ExperimentError
from repro.experiments import DRIVERS

#: run() keywords owned by the execution layer, not declared as parameters.
EXECUTION_KWARGS = {"runner", "batch", "point_jobs", "config"}

README = Path(__file__).resolve().parents[3] / "README.md"


class TestRegistryShape:
    def test_all_twelve_experiments_registered(self):
        assert experiment_ids() == [f"E{i}" for i in range(1, 13)]

    def test_registry_matches_legacy_drivers_dict(self):
        assert set(REGISTRY) == set(DRIVERS)
        for experiment_id, spec in REGISTRY.items():
            assert spec.driver() is DRIVERS[experiment_id]

    def test_specs_carry_title_claim_and_parameters(self):
        for spec in iter_specs():
            assert spec.title and spec.claim
            assert spec.parameters, f"{spec.experiment_id} declares no parameters"
            assert "base_seed" in spec.parameter_names

    def test_get_spec_passes_spec_through_and_rejects_unknown_ids(self):
        spec = get_spec("E3")
        assert get_spec(spec) is spec
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_spec("E99")

    def test_batchable_ids_derived_from_flags(self):
        assert batchable_experiment_ids() == "E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12"

    def test_canonical_point_naming_helper_exposed(self):
        from repro.analysis.sweeps import sweep_point_names as analysis_helper

        assert sweep_point_names is analysis_helper


@pytest.mark.parametrize("experiment_id", [f"E{i}" for i in range(1, 13)])
class TestSpecsCannotDriftFromDrivers:
    """The satellite contract: every spec flag matches the driver's behaviour."""

    def test_capability_flags_match_run_signature(self, experiment_id):
        spec = REGISTRY[experiment_id]
        parameters = inspect.signature(spec.driver().run).parameters
        assert spec.supports_runner == ("runner" in parameters)
        assert spec.supports_batch == ("batch" in parameters)
        assert spec.supports_point_jobs == ("point_jobs" in parameters)
        assert "config" in parameters, "every driver must accept config="

    def test_declared_parameters_match_run_signature(self, experiment_id):
        spec = REGISTRY[experiment_id]
        parameters = inspect.signature(spec.driver().run).parameters
        declared = [(p.name, p.default) for p in spec.parameters]
        actual = [
            (name, parameter.default)
            for name, parameter in parameters.items()
            if name not in EXECUTION_KWARGS
        ]
        assert declared == actual


class TestReadmeTableMatchesRegistry:
    """README's E1–E12 table is checked against the registry, row by row."""

    def _table_rows(self):
        rows = re.findall(r"^\|\s*(E\d+)\s*\|\s*`([a-z0-9_]+)`", README.read_text(), re.MULTILINE)
        assert rows, "README.md no longer contains the experiment table"
        return rows

    def test_readme_lists_every_registered_experiment_once(self):
        ids = [experiment_id for experiment_id, _ in self._table_rows()]
        assert ids == experiment_ids()

    def test_readme_module_names_match_registry(self):
        for experiment_id, stem in self._table_rows():
            assert REGISTRY[experiment_id].module == f"repro.experiments.{stem}"

    def test_readme_batch_list_matches_flags(self):
        text = README.read_text()
        assert batchable_experiment_ids() in text, (
            "README must name the batchable experiments exactly as the registry derives them"
        )

    def test_readme_batch_coverage_matrix_matches_registry(self):
        """The batch-coverage matrix (experiment x capability flags) is pinned
        against the registry row by row, like the experiment table."""
        matrix_rows = re.findall(
            r"^\|\s*(E\d+)\s*\|\s*(yes|no)\s*\|\s*(yes|no)\s*\|\s*(yes|no)\s*\|",
            README.read_text(),
            re.MULTILINE,
        )
        assert [row[0] for row in matrix_rows] == experiment_ids(), (
            "README.md must contain one batch-coverage matrix row per registered experiment"
        )
        for experiment_id, runner, batch, point_jobs in matrix_rows:
            spec = REGISTRY[experiment_id]
            assert (runner == "yes") == spec.supports_runner, experiment_id
            assert (batch == "yes") == spec.supports_batch, experiment_id
            assert (point_jobs == "yes") == spec.supports_point_jobs, experiment_id
