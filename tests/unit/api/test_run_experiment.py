"""Tests for run_experiment and the drivers' deprecation-shimmed legacy path.

The equivalence class here is the satellite contract of the API redesign:
calling a driver's ``run`` directly with the legacy ``runner=`` / ``batch=``
/ ``point_jobs=`` keywords must (a) emit exactly one
:class:`DeprecationWarning` and (b) return a report bit-identical to
:func:`repro.api.run_experiment` with the equivalent
:class:`~repro.api.ExecutionConfig` — for every one of the eleven drivers.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.api import ExecutionConfig, run_experiment
from repro.errors import ExperimentError
from repro.exec import SerialTrialRunner
from repro.experiments import DRIVERS

#: Tiny per-driver configurations (mirroring the integration tests) plus the
#: legacy execution kwargs each driver supports and the equivalent config.
SHIM_CASES = {
    "E1": (dict(sizes=(200, 400), epsilon=0.3, trials=2),
           dict(batch=True, point_jobs=2), ExecutionConfig(jobs=2, batch=True)),
    "E2": (dict(epsilons=(0.25, 0.45), n=300, trials=2),
           dict(batch=True), ExecutionConfig(batch=True)),
    "E3": (dict(sizes=(300,), epsilons=(0.3,), trials=2),
           dict(runner=SerialTrialRunner()), ExecutionConfig(jobs=1)),
    "E4": (dict(n=600, epsilons=(0.3,), trials=4),
           dict(runner=SerialTrialRunner()), ExecutionConfig(jobs=1)),
    "E5": (dict(n=1500, epsilon=0.4, beta_override=6, trials=2),
           dict(runner=SerialTrialRunner()), ExecutionConfig(jobs=1)),
    "E6": (dict(n=800, epsilon=0.3, trials=2),
           dict(runner=SerialTrialRunner()), ExecutionConfig(jobs=1)),
    "E7": (dict(n=250, epsilons=(0.3,), trials=2, voter_rounds=32),
           dict(batch=True), ExecutionConfig(batch=True)),
    "E8": (dict(n=400, epsilon=0.3, set_sizes=(120,), biases=(0.05, 0.3), trials=2),
           dict(batch=True), ExecutionConfig(batch=True)),
    "E9": (dict(n=250, epsilon=0.3, skews=(4,), trials=2),
           dict(runner=SerialTrialRunner()), ExecutionConfig(jobs=1)),
    "E10": (dict(epsilon=0.25, deltas=(0.01, 0.1), monte_carlo_reps=2000),
            dict(batch=True), ExecutionConfig(batch=True)),
    "E11": (dict(n=120, epsilon=0.35, trials=2),
            dict(runner=SerialTrialRunner()), ExecutionConfig(jobs=1)),
}


class TestRunExperiment:
    def test_returns_a_populated_artifact(self):
        artifact = run_experiment("E10", deltas=(0.01, 0.1), monte_carlo_reps=2000)
        assert artifact.spec_id == "E10"
        assert artifact.report.experiment_id == "E10" and artifact.report.rows
        assert artifact.version == repro.__version__
        assert artifact.wall_time_seconds > 0
        assert artifact.parameters["monte_carlo_reps"] == 2000
        assert artifact.parameters["base_seed"] == 1010  # spec default resolved in
        assert artifact.execution["runner"] == "serial"

    def test_config_overrides_are_recorded_in_parameters(self):
        artifact = run_experiment(
            "E11",
            config=ExecutionConfig(trials=2, base_seed=77),
            n=120,
            epsilon=0.35,
        )
        assert artifact.parameters["trials"] == 2
        assert artifact.parameters["base_seed"] == 77
        assert artifact.execution["trials"] == 2 and artifact.execution["base_seed"] == 77

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("E99")

    def test_unknown_parameter_override_lists_the_valid_ones(self):
        with pytest.raises(ExperimentError, match="settable parameters are"):
            run_experiment("E10", sample_count=5)

    def test_conflicting_trials_specifications_rejected(self):
        with pytest.raises(ExperimentError, match="pass it once"):
            run_experiment("E11", config=ExecutionConfig(trials=2), trials=3)

    def test_driver_rejects_config_plus_legacy_kwargs(self):
        with pytest.raises(ExperimentError, match="both config= and legacy"):
            DRIVERS["E1"].run(sizes=(200,), trials=1, config=ExecutionConfig(), batch=True)

    def test_accepts_an_already_resolved_plan(self):
        plan = ExecutionConfig(batch=True).resolve("E10")
        artifact = run_experiment("E10", config=plan, deltas=(0.01, 0.1), monte_carlo_reps=2000)
        assert artifact.execution["batch"] is True

    def test_plan_for_another_experiment_rejected(self):
        plan = ExecutionConfig(batch=True).resolve("E8")
        with pytest.raises(ExperimentError, match="resolved for E8"):
            run_experiment("E10", config=plan)


@pytest.mark.parametrize("experiment_id", sorted(SHIM_CASES, key=lambda key: int(key[1:])))
class TestDeprecationShim:
    def test_legacy_kwargs_bit_identical_and_warn_once(self, experiment_id):
        tiny, legacy_kwargs, config = SHIM_CASES[experiment_id]

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            artifact = run_experiment(experiment_id, config=config, **tiny)
        assert not [w for w in caught if w.category is DeprecationWarning], (
            "the unified API must not trip its own deprecation shim"
        )

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy_report = DRIVERS[experiment_id].run(**tiny, **legacy_kwargs)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1, f"expected exactly one DeprecationWarning, got {deprecations}"
        assert "run_experiment" in str(deprecations[0].message)

        assert legacy_report.render() == artifact.report.render()
