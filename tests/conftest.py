"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.substrate import BinarySymmetricChannel, PushGossipNetwork, SimulationEngine


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator for tests that need raw randomness."""
    return np.random.default_rng(123456789)


@pytest.fixture
def small_engine() -> SimulationEngine:
    """A 50-agent engine with moderate noise, deterministic seed."""
    return SimulationEngine.create(n=50, epsilon=0.25, seed=4242)


@pytest.fixture
def medium_engine() -> SimulationEngine:
    """A 400-agent engine used by the slower protocol-level unit tests."""
    return SimulationEngine.create(n=400, epsilon=0.25, seed=777)


@pytest.fixture
def make_engine():
    """Factory fixture: build engines with custom n / epsilon / seed / source."""

    def _make(n: int = 100, epsilon: float = 0.25, seed: int = 1, source=0, **kwargs):
        return SimulationEngine.create(n=n, epsilon=epsilon, seed=seed, source=source, **kwargs)

    return _make


@pytest.fixture
def network_and_channel():
    """A (network, channel, rng) triple over 64 agents."""
    network = PushGossipNetwork(size=64)
    channel = BinarySymmetricChannel(epsilon=0.3)
    return network, channel, np.random.default_rng(2024)
