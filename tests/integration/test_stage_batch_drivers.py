"""Integration tests for the newly batched stage-level drivers (E4–E6, E9, E11).

Each driver must produce, under ``batch=True``, a report with exactly the
serial row/column structure (the row builders are shared between the two
paths), honour the single-``DeprecationWarning`` legacy-kwarg contract, and
— where the driver sweeps independent cells — return bit-identical reports
when the cells are spread over a worker pool (``point_jobs``).
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import ExecutionConfig, run_experiment
from repro.experiments import e4_phase0, e5_stage1_growth, e6_stage2_boost, e9_async, e11_lower_bounds

#: Tiny-but-meaningful workloads per driver (parameter overrides).
WORKLOADS = {
    "E4": dict(n=300, epsilons=(0.2, 0.3), trials=5),
    "E5": dict(n=400, epsilon=0.35, beta_override=4, trials=3),
    "E6": dict(n=300, epsilon=0.25, trials=4),
    "E9": dict(n=200, epsilon=0.3, skews=(4, 8), trials=2),
    "E11": dict(n=80, epsilon=0.3, trials=2),
}

POINT_JOB_IDS = ("E4", "E9", "E11")


@pytest.mark.parametrize("experiment_id", sorted(WORKLOADS, key=lambda eid: int(eid[1:])))
def test_batch_report_has_the_serial_structure(experiment_id):
    overrides = WORKLOADS[experiment_id]
    serial = run_experiment(experiment_id, **overrides).report
    batched = run_experiment(
        experiment_id, config=ExecutionConfig(batch=True), **overrides
    ).report
    assert batched.experiment_id == experiment_id
    assert [list(row.keys()) for row in batched.rows] == [
        list(row.keys()) for row in serial.rows
    ]
    assert len(batched.notes) == len(serial.notes)
    assert batched.render()


@pytest.mark.parametrize("experiment_id", POINT_JOB_IDS)
def test_batch_point_jobs_is_bit_identical_to_in_process(experiment_id):
    overrides = WORKLOADS[experiment_id]
    in_process = run_experiment(
        experiment_id, config=ExecutionConfig(batch=True), **overrides
    ).report
    pooled = run_experiment(
        experiment_id, config=ExecutionConfig(batch=True, jobs=2), **overrides
    ).report
    assert pooled.rows == in_process.rows


def test_e4_batch_reproduces_claim_2_2_statistics():
    serial = e4_phase0.run(n=600, epsilons=(0.3,), trials=8)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        batched = e4_phase0.run(n=600, epsilons=(0.3,), trials=8, batch=True)
    serial_row, batch_row = serial.rows[0], batched.rows[0]
    assert batch_row["beta_s"] == serial_row["beta_s"]
    assert batch_row["mean_x0"] == pytest.approx(serial_row["mean_x0"], rel=0.3)
    assert batch_row["bias_bound_rate"] >= 0.5


def test_e5_batch_keeps_the_per_phase_claim_columns():
    report = e5_stage1_growth.run(
        n=400, epsilon=0.35, beta_override=4, trials=3,
        config=ExecutionConfig(batch=True),
    )
    assert [row["phase"] for row in report.rows] == list(range(len(report.rows)))
    assert all("mean_X_i" in row and "mean_bias_eps_i" in row for row in report.rows)
    # Conservation: the X_i trajectory is non-decreasing on the batch path too.
    means = [row["mean_X_i"] for row in report.rows]
    assert all(later >= earlier for earlier, later in zip(means, means[1:]))


def test_e6_batch_boosts_the_bias():
    report = e6_stage2_boost.run(
        n=300, epsilon=0.25, trials=4, config=ExecutionConfig(batch=True)
    )
    first, last = report.rows[0], report.rows[-1]
    assert last["mean_bias_after"] > first["mean_bias_after"] * 0.9
    assert last["mean_bias_after"] > 0.3


def test_e9_batch_shows_the_guard_overhead():
    report = e9_async.run(
        n=200, epsilon=0.3, skews=(4, 16), trials=2, config=ExecutionConfig(batch=True)
    )
    rows = {(row["variant"], row["skew_D"]): row for row in report.rows}
    sync = rows[("fully-synchronous", 0)]
    assert sync["overhead_rounds"] == 0.0
    small = rows[("bounded-skew", 4)]
    large = rows[("bounded-skew", 16)]
    assert large["overhead_rounds"] > small["overhead_rounds"] > 0
    clock_free = rows[("clock-free (activation + guards)", report.rows[-1]["skew_D"])]
    assert clock_free["overhead_rounds"] > 0


def test_e11_batch_keeps_the_never_converged_convention():
    report = e11_lower_bounds.run(
        n=80, epsilon=0.3, trials=2, config=ExecutionConfig(batch=True)
    )
    direct_row, silent_row = report.rows
    assert direct_row["all_correct_rate"] >= 0.0
    # Listen-only is far slower than the direct reference, on the batch path too.
    assert silent_row["mean_rounds"] > direct_row["mean_rounds"]


@pytest.mark.parametrize(
    "driver, kwargs",
    [
        (e5_stage1_growth, dict(n=300, epsilon=0.35, beta_override=4, trials=2)),
        (e6_stage2_boost, dict(n=200, epsilon=0.3, trials=2)),
        (e9_async, dict(n=150, epsilon=0.3, skews=(4,), trials=1)),
        (e11_lower_bounds, dict(n=60, epsilon=0.3, trials=1)),
    ],
)
def test_legacy_batch_kwarg_emits_a_single_deprecation_warning(driver, kwargs):
    with pytest.warns(DeprecationWarning, match="deprecated") as caught:
        driver.run(batch=True, **kwargs)
    assert len([w for w in caught if issubclass(w.category, DeprecationWarning)]) == 1
