"""Integration tests: the paper's protocol versus the baselines (Section 1.6 story)."""


from repro import solve_noisy_broadcast
from repro.core.theory import expected_relay_depth, hop_correct_probability
from repro.protocols import (
    DirectSourceReference,
    ImmediateForwardingBroadcast,
    NoisyVoterBroadcast,
)
from repro.substrate import SimulationEngine


N = 800
EPSILON = 0.15


def fresh_engine(seed):
    return SimulationEngine.create(n=N, epsilon=EPSILON, seed=seed)


class TestProtocolBeatsNaiveStrategies:
    def test_final_fraction_ordering(self):
        """breathe-before-speaking >> immediate forwarding ~ voter ~ 1/2."""
        paper = solve_noisy_broadcast(n=N, epsilon=EPSILON, seed=101)
        forwarding = ImmediateForwardingBroadcast().run(fresh_engine(102), correct_opinion=1)
        voter = NoisyVoterBroadcast(max_rounds=300).run(fresh_engine(103), correct_opinion=1)

        assert paper.final_correct_fraction == 1.0
        assert forwarding.final_correct_fraction < 0.75
        assert voter.final_correct_fraction < 0.75
        assert paper.final_correct_fraction > forwarding.final_correct_fraction + 0.25
        assert paper.final_correct_fraction > voter.final_correct_fraction + 0.25

    def test_forwarding_unreliability_matches_hop_decay_prediction(self):
        """Section 1.6: the forwarded rumor decays like (2 eps)^depth towards a coin flip."""
        forwarding = ImmediateForwardingBroadcast().run(fresh_engine(104), correct_opinion=1)
        depth = int(expected_relay_depth(N))
        predicted_ceiling = hop_correct_probability(EPSILON, max(depth - 4, 1))
        # The measured fraction sits well below even a generous (shallow-depth) prediction
        # and far below the paper protocol's 1.0.
        assert forwarding.final_correct_fraction <= predicted_ceiling + 0.1

    def test_paper_protocol_within_constant_factor_of_direct_reference(self):
        """Theorem 2.17's 'as fast as being told directly' claim, up to constants."""
        paper = solve_noisy_broadcast(n=N, epsilon=EPSILON, seed=105)
        reference = DirectSourceReference().run(fresh_engine(106), correct_opinion=1)
        reference_rounds = reference.extra["first_all_correct_round"]
        assert reference_rounds is not None
        assert paper.rounds <= 60 * reference_rounds

    def test_baselines_do_not_even_match_message_efficiency(self):
        """The paper protocol's messages stay within a constant of n log n / eps^2."""
        paper = solve_noisy_broadcast(n=N, epsilon=EPSILON, seed=107)
        # Every agent sends at most one bit per round, so the total is bounded by n * rounds;
        # the protocol actually uses a constant fraction of that budget.
        assert paper.messages_sent <= N * paper.rounds
        assert paper.messages_sent >= 0.2 * N * paper.rounds
