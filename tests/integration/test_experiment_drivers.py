"""Integration tests: every experiment driver runs end to end (tiny configurations).

The benchmark suite runs the drivers at their default (paper-meaningful)
scales; these tests only check that each driver executes, produces rows with
the expected columns, and renders — so that a broken driver is caught by
``pytest tests/`` and not only by the benchmark run.
"""


from repro.experiments import (
    e1_rounds_vs_n,
    e2_rounds_vs_eps,
    e3_messages,
    e4_phase0,
    e5_stage1_growth,
    e6_stage2_boost,
    e7_baselines,
    e8_majority,
    e9_async,
    e10_majority_lemma,
    e11_lower_bounds,
    e12_faults,
)


def assert_renders(report, expected_id):
    assert report.experiment_id == expected_id
    assert report.rows
    text = report.render()
    assert expected_id in text and "paper claim" in text


def test_e1_driver_small():
    report = e1_rounds_vs_n.run(sizes=(200, 400), epsilon=0.3, trials=2)
    assert_renders(report, "E1")
    assert {"n", "mean_rounds", "success_rate"} <= set(report.columns())


def test_e2_driver_small():
    report = e2_rounds_vs_eps.run(epsilons=(0.25, 0.45), n=300, trials=2)
    assert_renders(report, "E2")
    rounds = report.row_values("mean_rounds")
    assert rounds[0] > rounds[-1]


def test_e3_driver_small():
    report = e3_messages.run(sizes=(300,), epsilons=(0.3,), trials=2)
    assert_renders(report, "E3")
    assert all(row["messages_per_agent_over_rounds"] <= 1.0 for row in report.rows)


def test_e4_driver_small():
    report = e4_phase0.run(n=600, epsilons=(0.3,), trials=5)
    assert_renders(report, "E4")
    assert report.rows[0]["beta_s"] > 0


def test_e5_driver_small():
    report = e5_stage1_growth.run(n=1500, epsilon=0.4, beta_override=6, trials=2)
    assert_renders(report, "E5")
    sizes = report.row_values("mean_X_i")
    assert sizes == sorted(sizes)


def test_e6_driver_small():
    report = e6_stage2_boost.run(n=800, epsilon=0.3, trials=3)
    assert_renders(report, "E6")
    assert report.rows[-1]["mean_bias_after"] > 0.4


def test_e7_driver_small():
    report = e7_baselines.run(n=400, epsilons=(0.3,), trials=2, voter_rounds=100)
    assert_renders(report, "E7")
    protocols = set(report.row_values("protocol"))
    assert "breathe-before-speaking" in protocols and "immediate-forwarding" in protocols


def test_e8_driver_small():
    report = e8_majority.run(n=400, epsilon=0.3, set_sizes=(120,), biases=(0.05, 0.3), trials=2)
    assert_renders(report, "E8")
    assert any(row["above_threshold"] for row in report.rows)


def test_e9_driver_small():
    report = e9_async.run(n=300, epsilon=0.3, skews=(8,), trials=2)
    assert_renders(report, "E9")
    variants = report.row_values("variant")
    assert "fully-synchronous" in variants and "bounded-skew" in variants


def test_e10_driver_small():
    report = e10_majority_lemma.run(epsilon=0.25, deltas=(0.01, 0.1), monte_carlo_reps=5000)
    assert_renders(report, "E10")
    assert all(row["bound_satisfied"] for row in report.rows)


def test_e11_driver_small():
    report = e11_lower_bounds.run(n=150, epsilon=0.35, trials=2)
    assert_renders(report, "E11")
    assert len(report.rows) == 2


def test_e12_driver_small():
    report = e12_faults.run(n=150, epsilon=0.3, fault_fractions=(0.0, 0.2), trials=2)
    assert_renders(report, "E12")
    assert len(report.rows) == 4  # 2 fractions x 2 protocols
    assert {"protocol", "fault_fraction", "num_faulty", "success_rate"} <= set(report.columns())
    zero_rows = [row for row in report.rows if row["fault_fraction"] == 0.0]
    assert all(row["num_faulty"] == 0 for row in zero_rows)


def test_e12_driver_small_batch_and_byzantine():
    report = e12_faults.run(
        n=150, epsilon=0.3, fault_fractions=(0.1,), fault_kind="byzantine", trials=2, batch=True
    )
    assert_renders(report, "E12")
    assert [row["protocol"] for row in report.rows] == [
        "breathe-before-speaking",
        "phased-approximate-consensus",
    ]
    assert all(row["num_faulty"] > 0 for row in report.rows)
