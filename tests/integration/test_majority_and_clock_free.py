"""Integration tests: majority-consensus and the clock-free protocol."""

import pytest

from repro import (
    ProtocolParameters,
    run_clock_free_broadcast,
    run_with_bounded_skew,
    solve_noisy_broadcast,
    solve_noisy_majority_consensus,
)
from repro.core.theory import majority_consensus_min_bias


class TestMajorityConsensus:
    def test_succeeds_above_the_corollary_threshold(self):
        """Corollary 2.18's feasible regime, across a few seeds."""
        n, epsilon, set_size = 500, 0.3, 150
        bias = 1.2 * majority_consensus_min_bias(set_size, n)
        successes = sum(
            solve_noisy_majority_consensus(
                n=n, epsilon=epsilon, initial_set_size=set_size, majority_bias=bias, seed=seed
            ).success
            for seed in range(4)
        )
        assert successes >= 3

    def test_tiny_bias_is_not_reliably_recovered(self):
        """Far below the threshold the initial majority frequently loses."""
        n, epsilon, set_size = 500, 0.3, 60
        outcomes = [
            solve_noisy_majority_consensus(
                n=n, epsilon=epsilon, initial_set_size=set_size, majority_bias=0.02, seed=seed
            ).success
            for seed in range(6)
        ]
        assert not all(outcomes)

    def test_population_still_reaches_some_consensus_below_threshold(self):
        """Even when the majority is lost, the protocol converges to a single opinion."""
        result = solve_noisy_majority_consensus(
            n=400, epsilon=0.3, initial_set_size=40, majority_bias=0.05, seed=11
        )
        assert result.final_correct_fraction in (0.0, 1.0) or (
            result.final_correct_fraction > 0.99 or result.final_correct_fraction < 0.01
        )

    def test_majority_is_cheaper_than_full_broadcast(self):
        parameters = ProtocolParameters.calibrated(500, 0.3)
        broadcast = solve_noisy_broadcast(n=500, epsilon=0.3, seed=3, parameters=parameters)
        majority = solve_noisy_majority_consensus(
            n=500, epsilon=0.3, initial_set_size=200, majority_bias=0.3, seed=3, parameters=parameters
        )
        assert majority.rounds < broadcast.rounds


class TestClockFreeProtocol:
    def test_clock_free_matches_synchronous_correctness(self):
        for seed in range(3):
            result = run_clock_free_broadcast(n=300, epsilon=0.3, seed=seed)
            assert result.success

    def test_overhead_grows_with_skew_but_stays_additive(self):
        parameters = ProtocolParameters.calibrated(300, 0.3)
        sync_rounds = solve_noisy_broadcast(n=300, epsilon=0.3, seed=7, parameters=parameters).rounds
        previous_overhead = -1
        for skew in (4, 16, 64):
            result = run_with_bounded_skew(
                n=300, epsilon=0.3, max_skew=skew, seed=7, parameters=parameters
            )
            assert result.success
            overhead = result.rounds - sync_rounds
            assert overhead >= previous_overhead
            num_phases = parameters.stage1.num_phases + parameters.stage2.num_phases
            assert overhead <= 2 * skew * (num_phases + 1)
            previous_overhead = overhead

    def test_messages_unchanged_by_guard_windows(self):
        parameters = ProtocolParameters.calibrated(300, 0.3)
        sync = solve_noisy_broadcast(n=300, epsilon=0.3, seed=9, parameters=parameters)
        skewed = run_with_bounded_skew(n=300, epsilon=0.3, max_skew=32, seed=9, parameters=parameters)
        # Theorem 3.1: the modification only adds silent rounds, so message counts
        # stay within sampling noise of the synchronous run.
        assert skewed.messages_sent == pytest.approx(sync.messages_sent, rel=0.1)
