"""Integration tests: the full broadcast protocol across the whole stack.

These tests exercise the complete pipeline (parameters -> engine -> Stage I
-> Stage II -> result) at small scale, including the statistical behaviour
the paper guarantees.  Seeds are fixed so the suite is deterministic.
"""

import math

import pytest

from repro import ProtocolParameters, solve_noisy_broadcast
from repro.core import theory


class TestBroadcastReliability:
    def test_succeeds_across_seeds_and_noise_levels(self):
        """Theorem 2.17's success guarantee, checked over a small seed/noise grid."""
        outcomes = []
        for epsilon in (0.15, 0.3, 0.45):
            for seed in range(4):
                result = solve_noisy_broadcast(n=300, epsilon=epsilon, seed=seed)
                outcomes.append(result.success)
        assert sum(outcomes) >= len(outcomes) - 1, "at most one failure tolerated across 12 runs"

    def test_symmetric_in_the_broadcast_opinion(self):
        """Running with B=0 and B=1 must be statistically indistinguishable (Section 1.3.4)."""
        one = solve_noisy_broadcast(n=300, epsilon=0.3, seed=55, correct_opinion=1)
        zero = solve_noisy_broadcast(n=300, epsilon=0.3, seed=55, correct_opinion=0)
        assert one.success and zero.success
        # Identical seeds produce identical message *counts* regardless of the opinion value.
        assert one.messages_sent == zero.messages_sent
        assert one.rounds == zero.rounds

    def test_noiseless_limit_is_easy(self):
        result = solve_noisy_broadcast(n=300, epsilon=0.5, seed=3)
        assert result.success
        assert result.stage1.final_bias == pytest.approx(0.5)


class TestBroadcastComplexityScaling:
    def test_rounds_track_log_n_over_eps_squared(self):
        """Measured rounds stay within a constant factor of the theoretical scale."""
        for n, epsilon in ((300, 0.2), (1200, 0.2), (300, 0.4)):
            result = solve_noisy_broadcast(n=n, epsilon=epsilon, seed=1)
            scale = theory.broadcast_round_bound(n, epsilon)
            assert 1.0 <= result.rounds / scale <= 60.0

    def test_messages_track_n_log_n_over_eps_squared(self):
        for n, epsilon in ((300, 0.25), (1200, 0.25)):
            result = solve_noisy_broadcast(n=n, epsilon=epsilon, seed=2)
            scale = theory.broadcast_message_bound(n, epsilon)
            assert 0.5 <= result.messages_sent / scale <= 60.0

    def test_doubling_population_adds_few_rounds(self):
        small = solve_noisy_broadcast(n=400, epsilon=0.25, seed=5)
        large = solve_noisy_broadcast(n=1600, epsilon=0.25, seed=5)
        assert large.rounds <= 1.6 * small.rounds, "4x the agents must cost far less than 4x the rounds"


class TestStageHandoff:
    def test_stage1_delivers_the_bias_stage2_needs(self):
        """Lemma 2.3 -> Lemma 2.14 pipeline: Stage I's bias exceeds the Stage II threshold."""
        n = 1200
        result = solve_noisy_broadcast(n=n, epsilon=0.25, seed=13)
        assert result.stage1.all_activated
        stage2_threshold = math.sqrt(math.log(n) / n)
        assert result.stage1.final_bias >= stage2_threshold / 2
        # And Stage II turned that into consensus.
        assert result.stage2.consensus_reached

    def test_phase_records_cover_every_round(self):
        parameters = ProtocolParameters.calibrated(400, 0.3)
        result = solve_noisy_broadcast(n=400, epsilon=0.3, seed=17, parameters=parameters)
        stage1_rounds = sum(phase.rounds for phase in result.stage1.phases)
        stage2_rounds = sum(phase.rounds for phase in result.stage2.phases)
        assert stage1_rounds == parameters.stage1.total_rounds
        assert stage2_rounds == parameters.stage2.total_rounds
        assert result.rounds == stage1_rounds + stage2_rounds
