"""Property-based tests (hypothesis) for the core protocol building blocks."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.opinions import (
    bias_from_counts,
    correct_probability_after_noise,
    counts_from_bias,
    opposite,
)
from repro.core.parameters import ProtocolParameters, compute_num_intermediate_phases
from repro.core.schedule import build_stage1_schedule, build_stage2_schedule
from repro.core.stage2 import majority_of_random_subset
from repro.core.theory import exact_majority_success_probability, sample_majority_success_lower_bound


class TestOpinionAlgebraProperties:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_bias_is_antisymmetric_and_bounded(self, correct, wrong):
        assume(correct + wrong > 0)
        bias = bias_from_counts(correct, wrong)
        assert -0.5 <= bias <= 0.5
        assert bias == -bias_from_counts(wrong, correct)
        # The majority-bias equals the correct-fraction advantage over 1/2.
        assert math.isclose(bias, correct / (correct + wrong) - 0.5, abs_tol=1e-12)

    @given(st.integers(1, 5000), st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=100, deadline=None)
    def test_counts_from_bias_achieves_requested_bias(self, total, bias):
        correct, wrong = counts_from_bias(total, bias)
        assert correct + wrong == total
        achieved = bias_from_counts(correct, wrong)
        # The achieved bias is the closest achievable value not below the request
        # (except when the request cannot be met even with everyone correct).
        assert achieved >= bias - 1e-12 or correct == total

    @given(st.floats(0.0, 0.5), st.floats(0.01, 0.5))
    @settings(max_examples=100, deadline=None)
    def test_noisy_sample_probability_bounds(self, bias, epsilon):
        probability = correct_probability_after_noise(bias, epsilon)
        assert 0.5 <= probability <= 0.5 + 2 * epsilon * 0.5 + 1e-12
        # Symmetric: a wrong-leaning population is exactly as wrong as a right-leaning one is right.
        assert math.isclose(correct_probability_after_noise(-bias, epsilon), 1 - probability, abs_tol=1e-12)

    @given(st.integers(0, 1))
    def test_opposite_is_an_involution(self, opinion):
        assert opposite(opposite(opinion)) == opinion


class TestParameterProperties:
    @given(st.integers(8, 200_000), st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=60, deadline=None)
    def test_calibrated_parameters_are_well_formed(self, n, epsilon):
        assume(epsilon > n ** (-0.45))
        params = ProtocolParameters.calibrated(n, epsilon)
        stage1, stage2 = params.stage1, params.stage2
        # Paper constraint: beta_s * (beta+1)^T <= n/2 (Section 2.1.2), unless T = 0.
        if stage1.num_intermediate_phases > 0:
            assert stage1.beta_s * (stage1.beta + 1) ** stage1.num_intermediate_phases <= n / 2
        assert stage2.gamma % 2 == 1
        assert params.total_rounds == stage1.total_rounds + stage2.total_rounds
        # Round complexity stays within a constant factor of log n / eps^2.
        scale = math.log(n) / epsilon**2
        assert params.total_rounds <= 60 * scale + 2000

    @given(st.integers(4, 10**7), st.integers(1, 10_000), st.integers(1, 1000))
    @settings(max_examples=100, deadline=None)
    def test_intermediate_phase_count_is_maximal(self, n, beta_s, beta):
        T = compute_num_intermediate_phases(n, beta_s, beta)
        assert T >= 0
        if T > 0:
            assert beta_s * (beta + 1) ** T <= n / 2
            assert beta_s * (beta + 1) ** (T + 1) > n / 2


class TestScheduleProperties:
    @given(st.integers(8, 50_000), st.floats(min_value=0.08, max_value=0.5), st.integers(0, 40))
    @settings(max_examples=50, deadline=None)
    def test_schedules_partition_their_span(self, n, epsilon, guard):
        assume(epsilon > n ** (-0.45))
        params = ProtocolParameters.calibrated(n, epsilon)
        stage1 = build_stage1_schedule(params.stage1)
        stage2 = build_stage2_schedule(params.stage2, start_round=stage1.end)
        # Contiguous, ordered, lengths match the parameter object.
        assert stage1.total_rounds == params.stage1.total_rounds
        assert stage2.total_rounds == params.stage2.total_rounds
        assert stage2.start == stage1.end
        combined = list(stage1) + list(stage2)
        for earlier, later in zip(combined, combined[1:]):
            assert later.start == earlier.end
        # Dilation preserves lengths and inserts exactly `guard` before each phase.
        dilated = stage1.dilated(guard)
        for original, shifted in zip(stage1, dilated):
            assert shifted.length == original.length
            assert shifted.start >= original.start


class TestStageTwoSamplingProperties:
    @given(
        st.integers(1, 60),
        st.integers(0, 60),
        st.integers(1, 30),
        st.integers(0, 2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_subset_majority_respects_unanimity_and_range(self, total, ones, subset, seed):
        assume(ones <= total and subset <= total)
        rng = np.random.default_rng(seed)
        result = majority_of_random_subset(
            np.asarray([total]), np.asarray([ones]), subset, rng
        )
        assert result[0] in (0, 1)
        if ones == total:
            assert result[0] == 1
        if ones == 0:
            assert result[0] == 0

    @given(st.integers(1, 80), st.floats(0.5, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_exact_majority_probability_bounds(self, r, per_sample):
        gamma = 2 * r + 1
        probability = exact_majority_success_probability(gamma, per_sample)
        assert 0.5 - 1e-9 <= probability <= 1.0 + 1e-9
        # More reliable samples can only help.
        assert probability >= exact_majority_success_probability(gamma, 0.5) - 1e-9

    @given(st.floats(0.0, 0.5))
    @settings(max_examples=50, deadline=None)
    def test_lemma_bound_never_exceeds_achievable_probability(self, delta):
        """The Lemma 2.11 bound stays a valid probability and caps at 1/2 + 1/100."""
        bound = sample_majority_success_lower_bound(delta)
        assert 0.5 <= bound <= 0.51
