"""Property-based tests (hypothesis) for the simulation substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.substrate.network import PushGossipNetwork
from repro.substrate.noise import BinarySymmetricChannel, HeterogeneousChannel, PerfectChannel
from repro.substrate.rng import RandomSource, derive_seed


@st.composite
def round_inputs(draw):
    """A network size, a subset of senders and their bits."""
    size = draw(st.integers(min_value=2, max_value=60))
    sender_count = draw(st.integers(min_value=0, max_value=size))
    senders = draw(
        st.lists(st.integers(0, size - 1), min_size=sender_count, max_size=sender_count, unique=True)
    )
    bits = draw(st.lists(st.integers(0, 1), min_size=len(senders), max_size=len(senders)))
    seed = draw(st.integers(0, 2**31))
    return size, np.asarray(senders, dtype=np.int64), np.asarray(bits, dtype=np.int8), seed


class TestDeliveryInvariants:
    @given(round_inputs())
    @settings(max_examples=80, deadline=None)
    def test_single_accept_invariants(self, data):
        """Every round: unique recipients, conservation of messages, no self-delivery."""
        size, senders, bits, seed = data
        network = PushGossipNetwork(size=size)
        report = network.deliver(senders, bits, PerfectChannel(), np.random.default_rng(seed))

        assert report.messages_sent == senders.size
        assert report.messages_delivered + report.messages_dropped == report.messages_sent
        assert report.recipients.size == report.messages_delivered
        # A recipient accepts at most one message.
        assert np.unique(report.recipients).size == report.recipients.size
        # Senders never deliver to themselves and every accepted sender really sent.
        assert not np.any(report.recipients == report.senders)
        assert set(report.senders.tolist()) <= set(senders.tolist())
        # Dropped messages can only exist if there were more senders than recipients hit.
        if report.messages_dropped:
            assert senders.size > report.recipients.size

    @given(round_inputs())
    @settings(max_examples=50, deadline=None)
    def test_noiseless_delivery_preserves_bits(self, data):
        size, senders, bits, seed = data
        network = PushGossipNetwork(size=size)
        report = network.deliver(senders, bits, PerfectChannel(), np.random.default_rng(seed))
        sent_bit_of = dict(zip(senders.tolist(), bits.tolist()))
        for sender, bit in zip(report.senders.tolist(), report.bits.tolist()):
            assert sent_bit_of[sender] == bit


class TestChannelInvariants:
    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.integers(0, 2**31),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_bsc_output_is_always_bits(self, epsilon, seed, count):
        channel = BinarySymmetricChannel(epsilon=epsilon)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=count).astype(np.int8)
        output = channel.transmit(bits, rng)
        assert output.shape == bits.shape
        assert set(np.unique(output).tolist()) <= {0, 1}
        assert channel.flips_applied() == int(np.count_nonzero(output != bits))

    @given(st.floats(min_value=0.01, max_value=0.49), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_heterogeneous_channel_flips_less_than_bsc_bound(self, epsilon, seed):
        """The heterogeneous channel never exceeds the 1/2 - eps flip budget on average."""
        channel = HeterogeneousChannel(epsilon=epsilon)
        rng = np.random.default_rng(seed)
        bits = np.zeros(4000, dtype=np.int8)
        flipped_fraction = channel.transmit(bits, rng).mean()
        assert flipped_fraction <= (0.5 - epsilon) + 0.05


class TestRngProperties:
    @given(st.integers(0, 2**40), st.text(min_size=0, max_size=12), st.text(min_size=0, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_derive_seed_deterministic_and_in_range(self, root, token_a, token_b):
        first = derive_seed(root, token_a, token_b)
        second = derive_seed(root, token_a, token_b)
        assert first == second
        assert 0 <= first < 2**63

    @given(st.integers(0, 2**40))
    @settings(max_examples=30, deadline=None)
    def test_child_sources_never_collide_with_parent(self, seed):
        source = RandomSource(seed=seed)
        children = [source.child("trial", index).seed for index in range(4)]
        assert len(set(children + [source.seed])) == 5
