"""Property-based tests (hypothesis) for the simulation substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.substrate.network import PushGossipNetwork
from repro.substrate.noise import BinarySymmetricChannel, HeterogeneousChannel, PerfectChannel
from repro.substrate.rng import RandomSource, derive_seed


@st.composite
def round_inputs(draw):
    """A network size, a subset of senders and their bits."""
    size = draw(st.integers(min_value=2, max_value=60))
    sender_count = draw(st.integers(min_value=0, max_value=size))
    senders = draw(
        st.lists(st.integers(0, size - 1), min_size=sender_count, max_size=sender_count, unique=True)
    )
    bits = draw(st.lists(st.integers(0, 1), min_size=len(senders), max_size=len(senders)))
    seed = draw(st.integers(0, 2**31))
    return size, np.asarray(senders, dtype=np.int64), np.asarray(bits, dtype=np.int8), seed


class TestDeliveryInvariants:
    @given(round_inputs())
    @settings(max_examples=80, deadline=None)
    def test_single_accept_invariants(self, data):
        """Every round: unique recipients, conservation of messages, no self-delivery."""
        size, senders, bits, seed = data
        network = PushGossipNetwork(size=size)
        report = network.deliver(senders, bits, PerfectChannel(), np.random.default_rng(seed))

        assert report.messages_sent == senders.size
        assert report.messages_delivered + report.messages_dropped == report.messages_sent
        assert report.recipients.size == report.messages_delivered
        # A recipient accepts at most one message.
        assert np.unique(report.recipients).size == report.recipients.size
        # Senders never deliver to themselves and every accepted sender really sent.
        assert not np.any(report.recipients == report.senders)
        assert set(report.senders.tolist()) <= set(senders.tolist())
        # Dropped messages can only exist if there were more senders than recipients hit.
        if report.messages_dropped:
            assert senders.size > report.recipients.size

    @given(round_inputs())
    @settings(max_examples=50, deadline=None)
    def test_noiseless_delivery_preserves_bits(self, data):
        size, senders, bits, seed = data
        network = PushGossipNetwork(size=size)
        report = network.deliver(senders, bits, PerfectChannel(), np.random.default_rng(seed))
        sent_bit_of = dict(zip(senders.tolist(), bits.tolist()))
        for sender, bit in zip(report.senders.tolist(), report.bits.tolist()):
            assert sent_bit_of[sender] == bit


class TestChannelInvariants:
    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.integers(0, 2**31),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_bsc_output_is_always_bits(self, epsilon, seed, count):
        channel = BinarySymmetricChannel(epsilon=epsilon)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=count).astype(np.int8)
        output = channel.transmit(bits, rng)
        assert output.shape == bits.shape
        assert set(np.unique(output).tolist()) <= {0, 1}
        assert channel.flips_applied() == int(np.count_nonzero(output != bits))

    @given(st.floats(min_value=0.01, max_value=0.49), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_heterogeneous_channel_flips_less_than_bsc_bound(self, epsilon, seed):
        """The heterogeneous channel never exceeds the 1/2 - eps flip budget on average."""
        channel = HeterogeneousChannel(epsilon=epsilon)
        rng = np.random.default_rng(seed)
        bits = np.zeros(4000, dtype=np.int8)
        flipped_fraction = channel.transmit(bits, rng).mean()
        assert flipped_fraction <= (0.5 - epsilon) + 0.05


class TestRngProperties:
    @given(st.integers(0, 2**40), st.text(min_size=0, max_size=12), st.text(min_size=0, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_derive_seed_deterministic_and_in_range(self, root, token_a, token_b):
        first = derive_seed(root, token_a, token_b)
        second = derive_seed(root, token_a, token_b)
        assert first == second
        assert 0 <= first < 2**63

    @given(st.integers(0, 2**40))
    @settings(max_examples=30, deadline=None)
    def test_child_sources_never_collide_with_parent(self, seed):
        source = RandomSource(seed=seed)
        children = [source.child("trial", index).seed for index in range(4)]
        assert len(set(children + [source.seed])) == 5


@st.composite
def batch_round_inputs(draw):
    """A network size, replicate count and per-replicate send masks."""
    size = draw(st.integers(min_value=2, max_value=30))
    replicates = draw(st.integers(min_value=1, max_value=6))
    mask_bits = draw(
        st.lists(st.booleans(), min_size=size * replicates, max_size=size * replicates)
    )
    seed = draw(st.integers(0, 2**31))
    mask = np.asarray(mask_bits, dtype=bool).reshape(replicates, size)
    bits = np.asarray(draw(st.lists(st.integers(0, 1), min_size=size * replicates, max_size=size * replicates)), dtype=np.int8).reshape(replicates, size)
    return size, mask, bits, seed


class TestDeliverAllBatchMarginals:
    """deliver_all_batch must reproduce deliver_all's per-replicate marginals:
    every message delivered, uniform targets over the other agents, noise per
    message — with replicates never interacting."""

    @given(batch_round_inputs())
    @settings(max_examples=60, deadline=None)
    def test_per_replicate_invariants_match_deliver_all(self, data):
        size, mask, bits, seed = data
        network = PushGossipNetwork(size=size)
        report = network.deliver_all_batch(
            mask, bits, PerfectChannel(), np.random.default_rng(seed)
        )
        # Multi-accept: per replicate, delivered == sent == row senders.
        assert np.array_equal(report.messages_sent, mask.sum(axis=1))
        assert np.array_equal(report.messages_delivered, report.messages_sent)
        for replicate in range(mask.shape[0]):
            in_replicate = report.replicates == replicate
            assert np.array_equal(
                np.sort(report.senders[in_replicate]), np.flatnonzero(mask[replicate])
            )
        # Targets stay in range and never equal the sender (the deliver_all rule).
        if report.recipients.size:
            assert report.recipients.min() >= 0 and report.recipients.max() < size
            assert not np.any(report.recipients == report.senders)
        # Noiseless bits pass through exactly, as deliver_all's transmit does.
        assert np.array_equal(report.bits, bits[mask])

    def test_target_and_flip_marginals_match_deliver_all(self):
        """Empirical received-count and flip-rate marginals agree with a
        serial deliver_all loop over the same workload."""
        n, rounds, replicates = 150, 12, 6
        channel = BinarySymmetricChannel(epsilon=0.2)
        senders = np.arange(n)
        bits = np.ones(n, dtype=np.int8)

        serial_rng = np.random.default_rng(11)
        serial_network = PushGossipNetwork(size=n)
        serial_received = np.zeros(n, dtype=np.int64)
        serial_flipped = serial_total = 0
        for _ in range(rounds * replicates):
            report = serial_network.deliver_all(senders, bits, channel, serial_rng)
            np.add.at(serial_received, report.recipients, 1)
            serial_flipped += int((report.bits == 0).sum())
            serial_total += report.bits.size

        batch_rng = np.random.default_rng(12)
        batch_network = PushGossipNetwork(size=n)
        batch_received = np.zeros(n, dtype=np.int64)
        batch_flipped = batch_total = 0
        mask = np.ones((replicates, n), dtype=bool)
        grid_bits = np.ones((replicates, n), dtype=np.int8)
        for _ in range(rounds):
            report = batch_network.deliver_all_batch(mask, grid_bits, channel, batch_rng)
            batch_received += report.delivery_counts(n).sum(axis=0)
            batch_flipped += int((report.bits == 0).sum())
            batch_total += report.bits.size

        assert batch_total == serial_total == rounds * replicates * n
        # Per-agent mean received count: every agent averages one message per round.
        assert batch_received.mean() == pytest.approx(serial_received.mean(), rel=1e-12)
        assert batch_received.std() == pytest.approx(serial_received.std(), rel=0.25)
        # Flip rate matches the channel's crossover probability on both paths.
        assert batch_flipped / batch_total == pytest.approx(0.3, abs=0.02)
        assert serial_flipped / serial_total == pytest.approx(0.3, abs=0.02)
