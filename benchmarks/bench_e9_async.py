"""E9 — removing the global clock (Theorem 3.1)."""

from repro.api import run_experiment


def test_e9_clock_removal(benchmark, print_report, exec_config):
    artifact = benchmark.pedantic(
        run_experiment,
        args=("E9",),
        kwargs={
            "config": exec_config,
            "n": 1000,
            "epsilon": 0.25,
            "skews": (8, 32, 128),
            "trials": 3,
        },
        rounds=1,
        iterations=1,
    )
    report = artifact.report
    print_report(report)

    # Correctness is preserved in every variant.
    assert all(row["success_rate"] >= 0.6 for row in report.rows)

    rows_by_variant = {row["variant"]: row for row in report.rows if row["variant"] != "bounded-skew"}
    skew_rows = [row for row in report.rows if row["variant"] == "bounded-skew"]

    # The overhead grows with the skew D and stays additive (within ~2x of D * #phases).
    overheads = [row["overhead_rounds"] for row in skew_rows]
    assert all(later >= earlier for earlier, later in zip(overheads, overheads[1:]))
    for row in skew_rows:
        assert row["overhead_rounds"] <= 2.0 * row["predicted_overhead"] + 50

    # Bounded-skew variants add no messages beyond sampling noise (guards are silent).
    assert all(abs(row["message_ratio_vs_sync"] - 1.0) < 0.2 for row in skew_rows)

    clock_free = rows_by_variant["clock-free (activation + guards)"]
    assert clock_free["overhead_rounds"] <= 2.0 * clock_free["predicted_overhead"] + 100
