"""Dispatch cost of the execution backends: per-call spawn vs persistent reuse.

The backend refactor's headline perf claim is architectural, not numeric:
the historical dispatch path spawned (and tore down) a fresh
``ProcessPoolExecutor`` for *every* pooled call — one spawn-up per
sweep-point family — while :class:`~repro.exec.backends.local.LocalPoolBackend`
spawns once per run and reuses the pool across families.  This benchmark
measures exactly that difference on a many-families / cheap-tasks workload
(the regime where spawn-up dominates), alongside the in-process reference
and the remote work-stealing backend's queue overhead, and records the
numbers in ``benchmarks/results/backend_dispatch.json``.

The task function is :func:`math.hypot` — stdlib, importable from any
spawned worker subprocess, and cheap enough that the measured time is almost
pure dispatch machinery.  All backends must return identical results (the
bit-identity contract), which the test asserts before looking at any
wall-clock number.

``build_workloads(toy=True)`` shrinks the family/task counts so the smoke
gate in ``tests/unit/test_smoke_gates.py`` can execute the measurement end
to end in seconds.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.exec.backends import (
    InProcessBackend,
    LocalPoolBackend,
    RemoteWorkerBackend,
    Task,
)

RESULTS_PATH = Path(__file__).parent / "results" / "backend_dispatch.json"

POOL_JOBS = 2  #: worker count of the local pool / remote fleet under test.


def build_workloads(toy: bool = False) -> Dict[str, Any]:
    """The many-families dispatch workload (``toy=True`` = smoke-gate scale)."""
    if toy:
        return {"families": 2, "tasks_per_family": 8, "jobs": POOL_JOBS}
    return {"families": 8, "tasks_per_family": 64, "jobs": POOL_JOBS}


def _family_tasks(family: int, count: int) -> List[Task]:
    """One family's task list (pure stdlib work, importable everywhere)."""
    return [
        Task(
            fn=math.hypot,
            args=(float(family), float(index)),
            context=(("point", f"family-{family}"), ("seed", index)),
        )
        for index in range(count)
    ]


def measure(workload: Dict[str, Any]) -> Dict[str, Any]:
    """Time every dispatch strategy over the same family workload."""
    families = [
        _family_tasks(family, workload["tasks_per_family"])
        for family in range(workload["families"])
    ]
    jobs = workload["jobs"]
    outputs: Dict[str, List[List[Any]]] = {}

    def timed(label: str, thunk) -> float:
        start = time.perf_counter()
        outputs[label] = thunk()
        return time.perf_counter() - start

    in_process_seconds = timed(
        "in_process", lambda: [InProcessBackend().submit(tasks) for tasks in families]
    )

    def per_call() -> List[List[Any]]:
        # The historical semantics: one fresh pool per family dispatch.
        results = []
        for tasks in families:
            with LocalPoolBackend(jobs=jobs) as backend:
                results.append(backend.submit(tasks))
        return results

    per_call_seconds = timed("local_per_call", per_call)

    def reused() -> List[List[Any]]:
        # The backend-layer semantics: one pool serves every family.
        with LocalPoolBackend(jobs=jobs) as backend:
            return [backend.submit(tasks) for tasks in families]

    reuse_seconds = timed("local_reuse", reused)

    def remote() -> List[List[Any]]:
        with RemoteWorkerBackend(workers=jobs, chunk_size=4, startup_timeout=60) as backend:
            return [backend.submit(tasks) for tasks in families]

    remote_seconds = timed("remote", remote)

    reference = outputs["in_process"]
    for label, produced in outputs.items():
        assert produced == reference, f"backend {label!r} broke the bit-identity contract"

    total_tasks = workload["families"] * workload["tasks_per_family"]
    return {
        "description": "execution-backend dispatch overhead (per-call spawn vs reuse)",
        "workload": {
            "experiment": "backend dispatch (math.hypot micro-tasks)",
            **workload,
            "total_tasks": total_tasks,
        },
        "host": {"cpu_count": os.cpu_count()},
        "seconds": {
            "serial": round(in_process_seconds, 3),
            "local_per_call": round(per_call_seconds, 3),
            "local_reuse": round(reuse_seconds, 3),
            "remote": round(remote_seconds, 3),
        },
        "speedup_vs_serial": {
            # The acceptance number: pool reuse must beat per-call spawn-up.
            "local_reuse_vs_per_call": round(per_call_seconds / reuse_seconds, 2),
        },
        "dispatch_overhead_ms_per_task": {
            "local_reuse": round(1e3 * reuse_seconds / total_tasks, 3),
            "remote": round(1e3 * remote_seconds / total_tasks, 3),
        },
    }


def test_backend_dispatch_overhead():
    """Measure the dispatch strategies and record the JSON perf record."""
    payload = measure(build_workloads())
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(json.dumps(payload, indent=2))

    reuse_win = payload["speedup_vs_serial"]["local_reuse_vs_per_call"]
    assert reuse_win > 1.0, (
        "expected the persistent local pool (spawned once, reused across families) to beat "
        f"per-call pool spawn-up, got {reuse_win}x (recorded in {RESULTS_PATH})"
    )
