"""E7 — the paper's protocol versus naive baselines (Section 1.6)."""

from repro.api import run_experiment


def test_e7_baselines(benchmark, print_report, exec_config):
    artifact = benchmark.pedantic(
        run_experiment,
        args=("E7",),
        kwargs={
            "config": exec_config,
            "n": 2000,
            "epsilons": (0.1, 0.2),
            "trials": 3,
        },
        rounds=1,
        iterations=1,
    )
    report = artifact.report
    print_report(report)

    by_protocol = {}
    for row in report.rows:
        by_protocol.setdefault(row["protocol"], []).append(row)

    # The paper's protocol wins: full consensus on the correct opinion.
    assert all(row["success_rate"] >= 0.6 for row in by_protocol["breathe-before-speaking"])
    assert all(row["mean_final_fraction"] >= 0.99 for row in by_protocol["breathe-before-speaking"])

    # Section 1.6: immediate forwarding and voter dynamics stay near a coin flip.
    for baseline in ("immediate-forwarding", "noisy-voter"):
        for row in by_protocol[baseline]:
            assert row["mean_final_fraction"] < 0.8
            assert row["success_rate"] == 0.0
