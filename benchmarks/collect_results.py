"""Merge the per-family speedup JSONs into one machine-readable summary.

Every speedup benchmark (``bench_exec_speedup.py``,
``bench_e7_batch_speedup.py``, ``bench_e8_batch_speedup.py``,
``bench_stage_batch_speedup.py``, ...) records its own file under
``benchmarks/results/``.  That keeps each benchmark self-contained, but the
*perf trajectory* of the repository — which execution paths exist, how fast
each is relative to the serial reference, and how that changes from PR to PR
— lives scattered across files.  This module flattens all of them into one
top-level ``BENCH_SUMMARY.json``: one entry per measured workload with its
serial/batch wall times and speedups, sorted by source, so diffs of the
summary read as the perf history.

Two source shapes are understood:

* single-workload files (``seconds`` / ``speedup_vs_serial`` at top level),
* multi-family files (a ``families`` mapping of per-experiment entries, as
  written by ``bench_stage_batch_speedup.py``).

Run directly (``python benchmarks/collect_results.py``) or let the benchmark
suite do it: the pytest session-finish hook in ``benchmarks/conftest.py``
regenerates the summary after every benchmark run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

RESULTS_DIR = Path(__file__).parent / "results"
SUMMARY_PATH = Path(__file__).resolve().parents[1] / "BENCH_SUMMARY.json"


def _entry(source: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """One summary entry: experiment label, wall times, speedups."""
    workload = payload.get("workload", {})
    return {
        "source": source,
        "experiment": payload.get("description") or workload.get("experiment"),
        "workload": workload,
        "seconds": payload.get("seconds", {}),
        "speedup_vs_serial": payload.get("speedup_vs_serial", {}),
    }


def collect(
    results_dir: Path = RESULTS_DIR, summary_path: Optional[Path] = SUMMARY_PATH
) -> Dict[str, Any]:
    """Aggregate ``results_dir``'s ``*.json`` files; optionally write the summary.

    Returns the summary payload.  ``summary_path=None`` skips writing (used
    by the smoke gate).  Files that are not valid JSON objects are reported
    in the ``skipped`` list instead of aborting the aggregation.
    """
    entries: List[Dict[str, Any]] = []
    skipped: List[str] = []
    for path in sorted(results_dir.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            skipped.append(path.name)
            continue
        if not isinstance(payload, dict):
            skipped.append(path.name)
            continue
        families = payload.get("families")
        if isinstance(families, dict):
            for family, family_payload in sorted(families.items()):
                family_entry = _entry(f"{path.name}#{family}", family_payload)
                entries.append(family_entry)
        else:
            entries.append(_entry(path.name, payload))

    repo_root = Path(__file__).resolve().parents[1]
    try:
        results_label = str(results_dir.resolve().relative_to(repo_root))
    except ValueError:
        results_label = str(results_dir)
    summary = {
        "generated_by": "benchmarks/collect_results.py",
        "results_dir": results_label,
        "entries": entries,
        "skipped": skipped,
    }
    if summary_path is not None:
        summary_path.write_text(json.dumps(summary, indent=2) + "\n")
    return summary


def main() -> int:
    """CLI entry point: regenerate the top-level summary and print a digest."""
    summary = collect()
    print(f"wrote {SUMMARY_PATH} ({len(summary['entries'])} entries)")
    for entry in summary["entries"]:
        speedups = ", ".join(
            f"{path} {value}x" for path, value in entry["speedup_vs_serial"].items()
        )
        print(f"  {entry['source']}: {speedups or 'no speedup recorded'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
