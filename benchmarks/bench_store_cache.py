"""Cold-vs-warm cost of the content-addressed run store.

The run store's perf claim is simple: the second identical request must
cost disk-read time, not simulation time.  This benchmark runs one real
experiment (E8's majority-consensus sweep, batch path) three ways —

* **cold** — empty store: compute + persist under the fingerprint;
* **warm** — same request again: served from the store as a cache hit,
  no execution backend created, byte-identical report;
* **warm_cross_jobs** — same request with a different ``jobs`` setting:
  must *still* hit, because execution strategy is excluded from the
  fingerprint by the determinism contract —

and records wall times, the warm/cold speedup and the hit statistics in
``benchmarks/results/store_cache.json`` (flattened into the top-level
``BENCH_SUMMARY.json`` by ``collect_results.py``).

``build_workloads(toy=True)`` shrinks the sweep so the smoke gate in
``tests/unit/test_smoke_gates.py`` can execute the measurement end to end
in seconds.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Dict

from repro.api import ExecutionConfig, run_experiment

RESULTS_PATH = Path(__file__).parent / "results" / "store_cache.json"


def build_workloads(toy: bool = False) -> Dict[str, Any]:
    """The E8 store workload (``toy=True`` = smoke-gate scale)."""
    if toy:
        return {
            "experiment": "E8",
            "overrides": dict(n=60, epsilon=0.3, set_sizes=(10,), biases=(0.2,), trials=2, base_seed=5),
            "warm_repeats": 3,
        }
    return {
        "experiment": "E8",
        "overrides": dict(n=250, set_sizes=(40, 80), biases=(0.1, 0.2), trials=4),
        "warm_repeats": 10,
    }


def measure(workload: Dict[str, Any]) -> Dict[str, Any]:
    """Time the cold run, warm hits and the cross-jobs hit on a fresh store."""
    store_root = Path(tempfile.mkdtemp(prefix="bench-store-")) / "store"
    experiment = workload["experiment"]
    overrides = workload["overrides"]
    try:
        config = ExecutionConfig(batch=True, store_path=store_root)

        start = time.perf_counter()
        cold = run_experiment(experiment, config=config, **overrides)
        cold_seconds = time.perf_counter() - start
        assert cold.execution["cache"] == "miss", "first run on an empty store must miss"

        hits = 0
        start = time.perf_counter()
        for _ in range(workload["warm_repeats"]):
            warm = run_experiment(experiment, config=config, **overrides)
            hits += warm.execution["cache"] == "hit"
            assert warm.report.render() == cold.report.render(), (
                "a cache hit served a different report than the cold run"
            )
        warm_seconds = (time.perf_counter() - start) / workload["warm_repeats"]

        start = time.perf_counter()
        cross = run_experiment(
            experiment, config=ExecutionConfig(batch=True, store_path=store_root, jobs=2), **overrides
        )
        cross_seconds = time.perf_counter() - start
        cross_hit = cross.execution["cache"] == "hit"
    finally:
        shutil.rmtree(store_root.parent, ignore_errors=True)

    requests = workload["warm_repeats"] + 2  # cold + warm repeats + cross-jobs
    return {
        "description": "content-addressed run store: cold compute vs warm cache hit",
        "workload": {
            "experiment": f"{experiment} majority sweep through the run store",
            **overrides,
            "warm_repeats": workload["warm_repeats"],
            "hits": hits + cross_hit,
            "requests": requests,
            "hit_rate": round((hits + cross_hit) / requests, 3),
            "cross_jobs_hit": cross_hit,
            "fingerprint": cold.fingerprint,
        },
        "host": {"cpu_count": os.cpu_count()},
        "seconds": {
            "cold": round(cold_seconds, 4),
            "warm": round(warm_seconds, 4),
            "warm_cross_jobs": round(cross_seconds, 4),
        },
        "speedup_vs_serial": {
            "warm_vs_cold": round(cold_seconds / warm_seconds, 2),
        },
    }


def test_store_cache_speedup():
    """Measure cold vs warm store costs and record the JSON perf record."""
    payload = measure(build_workloads())
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(json.dumps(payload, indent=2))

    assert payload["workload"]["hit_rate"] == round(
        (payload["workload"]["requests"] - 1) / payload["workload"]["requests"], 3
    ), "every request after the cold one must be a cache hit"
    warm_win = payload["speedup_vs_serial"]["warm_vs_cold"]
    assert warm_win > 1.0, (
        f"expected the warm cache hit to beat recomputation, got {warm_win}x "
        f"(recorded in {RESULTS_PATH})"
    )
