"""E2 — broadcast round complexity versus epsilon (Theorem 2.17)."""

from repro.api import run_experiment


def test_e2_rounds_vs_eps(benchmark, print_report, exec_config):
    artifact = benchmark.pedantic(
        run_experiment,
        args=("E2",),
        kwargs={
            "config": exec_config,
            "epsilons": (0.1, 0.15, 0.2, 0.3, 0.4),
            "n": 1000,
            "trials": 5,
        },
        rounds=1,
        iterations=1,
    )
    report = artifact.report
    print_report(report)

    # Theorem 2.17: success w.h.p. at every noise level, 1/eps^2 growth.
    assert all(row["success_rate"] >= 0.8 for row in report.rows)
    normalised = [row["rounds_times_eps_sq"] for row in report.rows]
    assert max(normalised) / min(normalised) < 3.0, "rounds * eps^2 should stay roughly constant"
    rounds = [row["mean_rounds"] for row in report.rows]
    assert rounds[0] > rounds[-1], "noisier channels (smaller eps) must need more rounds"
