"""Speedup of the instrumented stage kernels on E4/E5/E6/E9/E11-style workloads.

Runs the same Monte-Carlo workload two ways per experiment family — the
serial reference (one engine per trial through ``run_trials``) and the
vectorised ``(R, n)`` batch path (:mod:`repro.exec.stage_batching` /
:mod:`repro.exec.batching`) — and records wall-clock times and speedups in
``benchmarks/results/stage_batch_speedup.json``.  This is the perf record of
the PR that closed the batch-coverage gap: E4 (phase-0 dissemination), E5
(Stage-I layer growth), E6 (Stage-II boosting), E9 (clock-free variants) and
E11 (lower-bound references) were the last serial-only experiments.

The test asserts the headline claim — at least a 2x single-core batch
speedup for each of E4, E5 and E6 — and records (without asserting, they mix
several sub-simulators) the measured E9/E11 speedups alongside.

``build_workloads(toy=True)`` shrinks every instance so the smoke gate in
``tests/unit/test_smoke_gates.py`` can execute the measurement end to end in
well under a second.
"""

from __future__ import annotations

import functools
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Tuple

from repro.analysis.experiments import run_trials
from repro.api import ExecutionConfig, run_experiment
from repro.core.parameters import ProtocolParameters
from repro.experiments.e4_phase0 import _phase0_batch_result, _phase0_only_parameters, _phase0_trial
from repro.experiments.e5_stage1_growth import _stage1_batch_result, _stage1_trial
from repro.experiments.e6_stage2_boost import _stage2_batch_result, _stage2_trial

BASE_SEED = 42
RESULTS_PATH = Path(__file__).parent / "results" / "stage_batch_speedup.json"

#: Families whose single-core batch speedup the test asserts to be >= 2x.
ASSERTED_FAMILIES = ("E4", "E5", "E6")


def build_workloads(toy: bool = False) -> Dict[str, Dict[str, Any]]:
    """Per-family workload descriptions: a serial and a batch thunk plus metadata.

    ``toy=True`` shrinks every instance to smoke-gate scale (the structure is
    identical; only sizes and trial counts change).
    """
    if toy:
        e4 = dict(n=200, epsilon=0.3, trials=3)
        e5 = dict(n=250, epsilon=0.35, beta_override=4, trials=2)
        e6 = dict(n=150, epsilon=0.3, trials=2)
        e9 = dict(n=120, epsilon=0.3, skews=(4,), trials=1)
        e11 = dict(n=60, epsilon=0.3, trials=1)
    else:
        e4 = dict(n=600, epsilon=0.2, trials=40)
        e5 = dict(n=900, epsilon=0.35, beta_override=8, trials=14)
        e6 = dict(n=500, epsilon=0.25, trials=12)
        e9 = dict(n=400, epsilon=0.25, skews=(8, 32), trials=4)
        e11 = dict(n=150, epsilon=0.3, trials=4)

    e4_parameters = _phase0_only_parameters(e4["n"], e4["epsilon"])
    e5_parameters = ProtocolParameters.calibrated(
        e5["n"], e5["epsilon"], s0=1.0, beta_override=e5["beta_override"]
    ).stage1
    e6_parameters = ProtocolParameters.calibrated(e6["n"], e6["epsilon"]).stage2
    e6_bias = 0.12

    def driver_pair(experiment_id: str, overrides: Dict[str, Any]) -> Tuple[Callable, Callable]:
        serial = functools.partial(run_experiment, experiment_id, **overrides)
        batched = functools.partial(
            run_experiment, experiment_id, config=ExecutionConfig(batch=True), **overrides
        )
        return serial, batched

    e9_serial, e9_batch = driver_pair("E9", e9)
    e11_serial, e11_batch = driver_pair("E11", e11)

    return {
        "E4": {
            "description": "phase-0 dissemination (Claim 2.2), instrumented Stage-I kernel",
            "workload": e4,
            "serial": lambda: run_trials(
                "stage-bench-e4",
                functools.partial(
                    _phase0_trial, n=e4["n"], epsilon=e4["epsilon"], parameters=e4_parameters
                ),
                num_trials=e4["trials"],
                base_seed=BASE_SEED,
            ),
            "batch": lambda: _phase0_batch_result(
                "stage-bench-e4", e4["n"], e4["epsilon"], e4["trials"], BASE_SEED, e4_parameters
            ),
        },
        "E5": {
            "description": "Stage-I layer growth (Claims 2.4-2.8), instrumented Stage-I kernel",
            "workload": e5,
            "serial": lambda: run_trials(
                "stage-bench-e5",
                functools.partial(
                    _stage1_trial, n=e5["n"], epsilon=e5["epsilon"], parameters=e5_parameters
                ),
                num_trials=e5["trials"],
                base_seed=BASE_SEED,
            ),
            "batch": lambda: _stage1_batch_result(
                "stage-bench-e5", e5["n"], e5["epsilon"], e5["trials"], BASE_SEED, e5_parameters
            ),
        },
        "E6": {
            "description": "Stage-II bias boosting (Lemma 2.14), instrumented Stage-II kernel",
            "workload": {**e6, "initial_bias": e6_bias},
            "serial": lambda: run_trials(
                "stage-bench-e6",
                functools.partial(
                    _stage2_trial,
                    n=e6["n"],
                    epsilon=e6["epsilon"],
                    initial_bias=e6_bias,
                    parameters=e6_parameters,
                ),
                num_trials=e6["trials"],
                base_seed=BASE_SEED,
            ),
            "batch": lambda: _stage2_batch_result(
                "stage-bench-e6", e6["n"], e6["epsilon"], e6["trials"], BASE_SEED,
                e6_bias, e6_parameters,
            ),
        },
        "E9": {
            "description": "clock-free variants (Theorem 3.1), windowed batch executors",
            "workload": e9,
            "serial": e9_serial,
            "batch": e9_batch,
        },
        "E11": {
            "description": "lower-bound references (Section 1.4), batched baseline rules",
            "workload": e11,
            "serial": e11_serial,
            "batch": e11_batch,
        },
    }


def measure(workloads: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Time every family's serial and batch thunks and assemble the payload."""
    families: Dict[str, Any] = {}
    for family, spec in workloads.items():
        start = time.perf_counter()
        spec["serial"]()
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        spec["batch"]()
        batch_seconds = time.perf_counter() - start
        families[family] = {
            "description": spec["description"],
            "workload": spec["workload"],
            "seconds": {
                "serial": round(serial_seconds, 3),
                "batch": round(batch_seconds, 3),
            },
            "speedup_vs_serial": {"batch": round(serial_seconds / batch_seconds, 2)},
        }
    return {
        "workload": {
            "experiment": "stage-level batch coverage (E4, E5, E6, E9, E11)",
            "base_seed": BASE_SEED,
        },
        "host": {"cpu_count": os.cpu_count()},
        "families": families,
    }


def test_stage_batch_speedup(print_report):
    """Measure serial vs batched for every stage-level family and record the JSON."""
    payload = measure(build_workloads())
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(json.dumps(payload, indent=2))

    for family in ASSERTED_FAMILIES:
        speedup = payload["families"][family]["speedup_vs_serial"]["batch"]
        assert speedup >= 2.0, (
            f"expected the batched {family} stage path to be at least 2x faster than serial, "
            f"got {speedup}x (recorded in {RESULTS_PATH})"
        )
