"""E3 — total message/bit complexity (Theorem 2.17)."""

from repro.api import run_experiment


def test_e3_message_complexity(benchmark, print_report, exec_config):
    artifact = benchmark.pedantic(
        run_experiment,
        args=("E3",),
        kwargs={
            "config": exec_config,
            "sizes": (500, 1000, 2000),
            "epsilons": (0.15, 0.25),
            "trials": 3,
        },
        rounds=1,
        iterations=1,
    )
    report = artifact.report
    print_report(report)

    assert all(row["success_rate"] >= 0.8 for row in report.rows)
    # Theorem 2.17: messages / (n ln n / eps^2) bounded across the grid.
    normalised = [row["messages_over_nlogn_eps2"] for row in report.rows]
    assert max(normalised) / min(normalised) < 3.0
    # Every agent sends at most one bit per round.
    assert all(row["messages_per_agent_over_rounds"] <= 1.0 + 1e-9 for row in report.rows)
