"""E10 — the noisy-sampling majority lemma (Lemma 2.11)."""

from repro.api import run_experiment


def test_e10_majority_lemma(benchmark, print_report, exec_config):
    artifact = benchmark.pedantic(
        run_experiment,
        args=("E10",),
        kwargs={
            "config": exec_config,
            "epsilon": 0.2,
            "r0": 8.0,
            "monte_carlo_reps": 40_000,
        },
        rounds=1,
        iterations=1,
    )
    report = artifact.report
    print_report(report)

    for row in report.rows:
        # Lemma 2.11's lower bound holds exactly ...
        assert row["bound_satisfied"]
        # ... and the Monte-Carlo estimate agrees with the exact binomial value.
        assert abs(row["monte_carlo_majority_prob"] - row["exact_majority_prob"]) < 0.02
    # Success probability is monotone in the population bias delta.
    exact = [row["exact_majority_prob"] for row in report.rows]
    assert all(later >= earlier - 1e-12 for earlier, later in zip(exact, exact[1:]))
