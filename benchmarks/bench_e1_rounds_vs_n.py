"""E1 — broadcast round complexity versus n (Theorem 2.17)."""

from repro.api import run_experiment


def test_e1_rounds_vs_n(benchmark, print_report, exec_config):
    artifact = benchmark.pedantic(
        run_experiment,
        args=("E1",),
        kwargs={
            "config": exec_config,
            "sizes": (250, 500, 1000, 2000, 4000),
            "epsilon": 0.2,
            "trials": 5,
        },
        rounds=1,
        iterations=1,
    )
    report = artifact.report
    print_report(report)

    # Theorem 2.17: success w.h.p. at every size, and logarithmic growth in n.
    assert all(row["success_rate"] >= 0.8 for row in report.rows)
    normalised = [row["rounds_over_log_n"] for row in report.rows]
    assert max(normalised) / min(normalised) < 2.0, "rounds / log n should stay roughly constant"
