"""Speedup of the batched majority-consensus path on an E8-style sweep.

Runs the same Monte-Carlo sweep (majority consensus over a grid of
``(|A|, bias)`` points) three ways — serial reference, vectorised batch
(:func:`repro.exec.batching.run_majority_batch` via
:func:`~repro.exec.batching.run_sweep_batched`), and batch combined with
point-level parallelism (``point_jobs``) — and records wall-clock times and
speedups in ``benchmarks/results/e8_batch_speedup.json``.

The batch path amortises Python-level per-round overhead across all
replicates of a sweep point and delivers its speedup even on a single core;
``point_jobs`` additionally scales with the number of CPUs by running
independent grid points concurrently (on a 1-CPU host it degenerates
gracefully to roughly batch speed).  The test asserts the PR's headline
claim: at least a 2x single-core batch speedup over the serial reference on
this workload.
"""

from __future__ import annotations

import functools
import json
import os
import time
from pathlib import Path

from repro.analysis.sweeps import parameter_grid, run_sweep
from repro.exec.batching import run_sweep_batched
from repro.experiments.e8_majority import _majority_trial

N = 1000
EPSILON = 0.25
SET_SIZES = (100, 300)
BIASES = (0.15, 0.3)
TRIALS = 6
BASE_SEED = 808
RESULTS_PATH = Path(__file__).parent / "results" / "e8_batch_speedup.json"


def _points() -> list:
    return parameter_grid(set_size=list(SET_SIZES), bias=list(BIASES))


def _run_serial():
    """The E8-style sweep through ``run_sweep`` with the serial reference."""
    return run_sweep(
        name="e8-batch-speedup",
        points=_points(),
        trial_fn=functools.partial(_majority_trial, n=N, epsilon=EPSILON),
        trials_per_point=TRIALS,
        base_seed=BASE_SEED,
    )


def _run_batched(point_jobs=None):
    """The same sweep through the batched majority simulator."""
    return run_sweep_batched(
        name="e8-batch-speedup",
        points=_points(),
        trials_per_point=TRIALS,
        base_seed=BASE_SEED,
        defaults={"n": N, "epsilon": EPSILON},
        shape="majority",
        point_jobs=point_jobs,
    )


def test_e8_batch_speedup(print_report):
    """Measure serial vs batched vs batched+point-parallel and record the JSON."""
    start = time.perf_counter()
    serial_sweep = _run_serial()
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_sweep = _run_batched()
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pooled_sweep = _run_batched(point_jobs=0)
    pooled_seconds = time.perf_counter() - start

    # Statistical-equivalence contract: the majority schedule is fixed by
    # (parameters, start_phase), so per-point round counts match the serial
    # path exactly; the point-parallel batch is bit-identical to the
    # in-process batch; and well-initialised points succeed on both paths.
    assert [r.to_dict() for r in pooled_sweep.results] == [
        r.to_dict() for r in batched_sweep.results
    ]
    for serial_result, batched_result in zip(serial_sweep.results, batched_sweep.results):
        assert serial_result.mean("rounds") == batched_result.mean("rounds")
        if batched_result.config["bias"] >= 0.3:
            assert batched_result.rate("success") >= 0.5
            assert serial_result.rate("success") >= 0.5

    payload = {
        "workload": {
            "experiment": "E8-style majority-consensus sweep",
            "n": N,
            "epsilon": EPSILON,
            "set_sizes": list(SET_SIZES),
            "biases": list(BIASES),
            "trials_per_point": TRIALS,
            "base_seed": BASE_SEED,
        },
        "host": {"cpu_count": os.cpu_count()},
        "seconds": {
            "serial": round(serial_seconds, 3),
            "batch": round(batch_seconds, 3),
            "batch_point_parallel": round(pooled_seconds, 3),
        },
        "speedup_vs_serial": {
            "batch": round(serial_seconds / batch_seconds, 2),
            "batch_point_parallel": round(serial_seconds / pooled_seconds, 2),
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(json.dumps(payload, indent=2))

    assert payload["speedup_vs_serial"]["batch"] >= 2.0, (
        f"expected the batched majority path to be at least 2x faster than serial, "
        f"got {payload['speedup_vs_serial']} (recorded in {RESULTS_PATH})"
    )
