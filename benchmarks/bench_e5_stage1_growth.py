"""E5 — Stage I layer growth and bias deterioration (Claims 2.4/2.8)."""

from repro.api import run_experiment


def test_e5_stage1_growth(benchmark, print_report, exec_config):
    artifact = benchmark.pedantic(
        run_experiment,
        args=("E5",),
        kwargs={
            "config": exec_config,
            "n": 8000,
            "epsilon": 0.35,
            "beta_override": 8,
            "trials": 5,
        },
        rounds=1,
        iterations=1,
    )
    report = artifact.report
    print_report(report)

    # Layer sizes X_i must grow monotonically and end with (nearly) everyone activated.
    sizes = [row["mean_X_i"] for row in report.rows]
    assert all(later >= earlier for earlier, later in zip(sizes, sizes[1:]))
    assert sizes[-1] >= 0.99 * 8000

    # Claim 2.8: the bias of newly activated layers stays above eps^(i+1)/2 on average.
    for row in report.rows:
        if row["mean_Y_i"] > 0:
            assert row["mean_bias_eps_i"] >= row["claimed_min_bias"] * 0.5, (
                "layer bias fell far below the Claim 2.8 floor"
            )
