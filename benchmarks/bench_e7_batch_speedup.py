"""Speedup of the batched baseline-protocol path on an E7-style workload.

Runs the same Monte-Carlo comparison (the Section 1.6 comparator family E7
argues against: immediate forwarding, the noisy voter dynamics and the
direct-from-source reference) three ways — serial reference (one
:class:`~repro.substrate.engine.SimulationEngine` per trial), vectorised
batch (:func:`repro.exec.batching.run_baseline_batch` via the ``baseline``
shape of :func:`~repro.exec.batching.run_sweep_batched`), and batch combined
with point-level parallelism (``point_jobs``) — and records wall-clock times
and speedups in ``benchmarks/results/e7_batch_speedup.json``.

The baselines were the slowest remaining serial workload: hundreds of
pure-Python engine rounds per trial (the voter's budget alone is hundreds of
rounds).  The batch path pays one ``deliver_batch`` / ``transmit_batch``
call per round for *all* replicates, so it delivers its speedup even on a
single core.  The test asserts the PR's headline claim: at least a 2x
single-core batch speedup over the serial E7 trial loop on this workload.
"""

from __future__ import annotations

import functools
import json
import os
import time
from pathlib import Path

from repro.analysis.experiments import run_trials
from repro.exec.batching import run_sweep_batched
from repro.experiments.e7_baselines import _direct_trial, _forwarding_trial, _voter_trial

N = 1000
EPSILON = 0.2
TRIALS = 8
VOTER_ROUNDS = 300
BASE_SEED = 707
RESULTS_PATH = Path(__file__).parent / "results" / "e7_batch_speedup.json"


def _serial_trial_fns() -> dict:
    return {
        "immediate-forwarding": functools.partial(_forwarding_trial, n=N, epsilon=EPSILON),
        "noisy-voter": functools.partial(
            _voter_trial, n=N, epsilon=EPSILON, voter_rounds=VOTER_ROUNDS
        ),
        "direct-source-reference": functools.partial(_direct_trial, n=N, epsilon=EPSILON),
    }


def _baseline_points() -> list:
    return [
        {"protocol": "immediate-forwarding"},
        {"protocol": "noisy-voter", "max_rounds": VOTER_ROUNDS},
        {"protocol": "direct-source-reference"},
    ]


def _run_serial() -> dict:
    """The E7 comparator family through run_trials with the serial reference."""
    return {
        name: run_trials(
            name=f"e7-batch-speedup-{name}",
            trial_fn=trial_fn,
            num_trials=TRIALS,
            base_seed=BASE_SEED,
        )
        for name, trial_fn in _serial_trial_fns().items()
    }


def _run_batched(point_jobs=None):
    """The same comparator family through the batched baseline simulator."""
    return run_sweep_batched(
        name="e7-batch-speedup",
        points=_baseline_points(),
        trials_per_point=TRIALS,
        base_seed=BASE_SEED,
        defaults={"n": N, "epsilon": EPSILON},
        shape="baseline",
        point_jobs=point_jobs,
    )


def test_e7_batch_speedup(print_report):
    """Measure serial vs batched vs batched+point-parallel and record the JSON."""
    start = time.perf_counter()
    serial_results = _run_serial()
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_sweep = _run_batched()
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pooled_sweep = _run_batched(point_jobs=0)
    pooled_seconds = time.perf_counter() - start

    # Statistical-equivalence contract: deterministic round budgets match the
    # serial path exactly (the forwarding budget and the direct-source
    # sampling budget are fixed by (n, epsilon); the noisy voter exhausts its
    # budget under noise on both paths), the point-parallel batch is
    # bit-identical to the in-process batch, and the baselines stay near the
    # coin flip while the direct reference converges.
    assert [r.to_dict() for r in pooled_sweep.results] == [
        r.to_dict() for r in batched_sweep.results
    ]
    batched = {
        point.as_dict()["protocol"]: result for point, result in batched_sweep
    }
    for name in ("immediate-forwarding", "noisy-voter", "direct-source-reference"):
        assert batched[name].mean("rounds") == serial_results[name].mean("rounds")
    assert batched["immediate-forwarding"].mean("fraction") < 0.8
    assert batched["noisy-voter"].rate("converged") == 0.0
    assert batched["direct-source-reference"].rate("all_correct") == 1.0

    payload = {
        "workload": {
            "experiment": "E7-style baseline-protocol comparison",
            "n": N,
            "epsilon": EPSILON,
            "protocols": [point["protocol"] for point in _baseline_points()],
            "voter_rounds": VOTER_ROUNDS,
            "trials_per_protocol": TRIALS,
            "base_seed": BASE_SEED,
        },
        "host": {"cpu_count": os.cpu_count()},
        "seconds": {
            "serial": round(serial_seconds, 3),
            "batch": round(batch_seconds, 3),
            "batch_point_parallel": round(pooled_seconds, 3),
        },
        "speedup_vs_serial": {
            "batch": round(serial_seconds / batch_seconds, 2),
            "batch_point_parallel": round(serial_seconds / pooled_seconds, 2),
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(json.dumps(payload, indent=2))

    assert payload["speedup_vs_serial"]["batch"] >= 2.0, (
        f"expected the batched baseline path to be at least 2x faster than the serial "
        f"E7 trial loop, got {payload['speedup_vs_serial']} (recorded in {RESULTS_PATH})"
    )
