"""Shared configuration for the benchmark harness.

Each ``bench_e*.py`` file regenerates one experiment of the E1–E11 table in
``README.md`` by running its driver under ``pytest-benchmark`` (so wall-clock
cost is recorded) and printing the driver's report table.  Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the report tables; omit it if you only want the benchmark
timings and the pass/fail assertions.)

The drivers execute their Monte-Carlo trials through the trial-execution
subsystem (:mod:`repro.exec`).  By default trials run serially; set
``REPRO_BENCH_JOBS`` to fan them out over worker processes (``0`` = one per
CPU, ``k`` = ``k`` workers) — results are identical either way, only the
wall-clock changes.  ``benchmarks/bench_exec_speedup.py`` and
``benchmarks/bench_e8_batch_speedup.py`` measure the speedups of the
parallel, batched and point-parallel paths explicitly and record them as
JSON under ``benchmarks/results/``.
"""

from __future__ import annotations

import pytest

from repro.exec import runner_from_env


@pytest.fixture
def print_report():
    """Return a helper that prints an ExperimentReport on its own lines."""

    def _print(report) -> None:
        print()
        print(report.render())
        print()

    return _print


@pytest.fixture
def exec_runner():
    """Trial runner shared by every benchmark, configured via ``REPRO_BENCH_JOBS``."""
    return runner_from_env("REPRO_BENCH_JOBS")
