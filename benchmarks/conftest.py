"""Shared configuration for the benchmark harness.

Each ``bench_e*.py`` file regenerates one experiment of the E1–E11 table in
``README.md`` by running its driver through the unified experiment API
(:func:`repro.api.run_experiment`) under ``pytest-benchmark`` (so wall-clock
cost is recorded) and printing the driver's report table.  Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the report tables; omit it if you only want the benchmark
timings and the pass/fail assertions.)

Execution strategy comes from one place: the ``exec_config`` fixture builds
an :class:`repro.api.ExecutionConfig` from the ``REPRO_BENCH_JOBS``
environment variable (``0`` = one worker per CPU, ``k`` = ``k`` workers,
unset = serial) — results are identical either way, only the wall-clock
changes.  Two companions select the execution backend
(:mod:`repro.exec.backends`): ``REPRO_BACKEND`` names it (``in-process``,
``local`` or ``remote``; unset = the historical per-call dispatch) and
``REPRO_WORKERS`` sets its worker count (pool size for ``local``,
auto-spawned localhost workers for ``remote``) — e.g.
``REPRO_BACKEND=local REPRO_WORKERS=4 pytest benchmarks/`` runs every
benchmark on one persistent four-worker pool.  Results are bit-identical on
every backend.  ``benchmarks/bench_backend_dispatch.py`` measures the
dispatch overhead of each backend and the persistent pool's reuse win over
per-call spawn-up.  ``benchmarks/bench_exec_speedup.py``,
``benchmarks/bench_e7_batch_speedup.py``,
``benchmarks/bench_e8_batch_speedup.py`` and
``benchmarks/bench_stage_batch_speedup.py`` measure the speedups of the
parallel, batched and point-parallel paths explicitly and record them as
JSON under ``benchmarks/results/``; at the end of every benchmark session
``benchmarks/collect_results.py`` merges those files into the top-level
``BENCH_SUMMARY.json`` so the perf trajectory stays machine-readable across
PRs.
"""

from __future__ import annotations

import pytest

from repro.api import ExecutionConfig


def pytest_sessionfinish(session, exitstatus):
    """Regenerate the top-level BENCH_SUMMARY.json after a benchmark run."""
    import importlib.util
    from pathlib import Path

    script = Path(__file__).parent / "collect_results.py"
    spec = importlib.util.spec_from_file_location("_bench_collect_results", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if module.RESULTS_DIR.is_dir() and any(module.RESULTS_DIR.glob("*.json")):
        module.collect()


@pytest.fixture
def print_report():
    """Return a helper that prints an ExperimentReport on its own lines."""

    def _print(report) -> None:
        print()
        print(report.render())
        print()

    return _print


@pytest.fixture
def exec_config() -> ExecutionConfig:
    """Execution settings shared by every benchmark, from ``REPRO_BENCH_JOBS``."""
    return ExecutionConfig.from_env("REPRO_BENCH_JOBS")
