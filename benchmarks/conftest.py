"""Shared configuration for the benchmark harness.

Each ``bench_e*.py`` file regenerates one experiment from DESIGN.md Section 4
by running its driver under ``pytest-benchmark`` (so wall-clock cost is
recorded) and printing the driver's report table.  Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the report tables; omit it if you only want the benchmark
timings and the pass/fail assertions.)
"""

from __future__ import annotations

import pytest


@pytest.fixture
def print_report():
    """Return a helper that prints an ExperimentReport on its own lines."""

    def _print(report) -> None:
        print()
        print(report.render())
        print()

    return _print
