"""E11 — lower-bound reference points (Section 1.4)."""

from repro.api import run_experiment


def test_e11_lower_bounds(benchmark, print_report, exec_config):
    artifact = benchmark.pedantic(
        run_experiment,
        args=("E11",),
        kwargs={
            "config": exec_config,
            "n": 400,
            "epsilon": 0.25,
            "trials": 3,
        },
        rounds=1,
        iterations=1,
    )
    report = artifact.report
    print_report(report)

    rows = {row["scheme"]: row for row in report.rows}
    direct = rows["direct-from-source (idealised)"]
    listen_only = rows["listen-only (silent wait, Flip model)"]

    # Both reference schemes are correct (they are brute-force majorities).
    assert direct["success_rate"] >= 0.6
    assert listen_only["success_rate"] >= 0.6

    # The idealised scheme needs Theta(log n / eps^2) rounds (within a small constant factor).
    assert 0.2 <= direct["ratio_to_reference"] <= 5.0

    # Listen-only is slower by a factor on the order of n.
    assert listen_only["mean_rounds"] > 50 * direct["mean_rounds"]
