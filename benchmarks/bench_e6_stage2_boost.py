"""E6 — Stage II bias boosting (Lemmas 2.11/2.14, Corollary 2.15)."""

from repro.api import run_experiment


def test_e6_stage2_boost(benchmark, print_report, exec_config):
    artifact = benchmark.pedantic(
        run_experiment,
        args=("E6",),
        kwargs={
            "config": exec_config,
            "n": 4000,
            "epsilon": 0.2,
            "trials": 8,
        },
        rounds=1,
        iterations=1,
    )
    report = artifact.report
    print_report(report)

    # The bias trajectory must be (weakly) increasing until it saturates near 1/2.
    biases = [row["mean_bias_after"] for row in report.rows]
    assert biases[-1] >= 0.49, "Stage II must end at essentially full consensus"
    # Early phases (bias still small) must amplify by a factor comfortably above 1.
    early = [
        row["amplification_vs_previous"]
        for row in report.rows
        if row["mean_bias_after"] < 0.3 and not row["is_final_phase"]
    ]
    assert all(factor >= 1.3 for factor in early), "small biases must be amplified each phase"
