"""Throughput of the experiment service: cold simulation vs warm store hits.

The service's perf claim extends the store's: once a parameter point is in
the run store, repeated HTTP requests for it must be served at plain
request/response speed — no job queued, no backend created, no simulation.
This benchmark starts a real :class:`~repro.service.app.ExperimentService`
on an ephemeral port, then drives it through
:class:`~repro.service.client.ServiceClient` in two phases —

* **cold** — ``distinct_points`` fresh parameter points submitted and
  waited to completion: every one is a miss that pays for simulation;
* **warm** — the same points requested ``warm_sweeps`` more times each
  from multiple client threads: every request must come back as an
  immediate 200 store hit —

and records requests/sec for both phases, the warm/cold speedup and the
service's own ``/metrics`` cache statistics in
``benchmarks/results/service_load.json`` (flattened into the top-level
``BENCH_SUMMARY.json`` by ``collect_results.py``).

``build_workloads(toy=True)`` shrinks the sweep so the smoke gate in
``tests/unit/test_smoke_gates.py`` can execute the measurement end to end
in seconds.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.service import ServiceClient, create_server

RESULTS_PATH = Path(__file__).parent / "results" / "service_load.json"


def build_workloads(toy: bool = False) -> Dict[str, Any]:
    """The E8 service-load workload (``toy=True`` = smoke-gate scale)."""
    base = dict(n=60, epsilon=0.3, set_sizes=(10,), trials=2, base_seed=5)
    if toy:
        return {
            "experiment": "E8",
            "base_overrides": base,
            "distinct_points": 2,
            "warm_sweeps": 3,
            "client_threads": 2,
            "workers": 2,
        }
    return {
        "experiment": "E8",
        "base_overrides": dict(n=200, epsilon=0.3, set_sizes=(40,), trials=3),
        "distinct_points": 4,
        "warm_sweeps": 25,
        "client_threads": 4,
        "workers": 2,
    }


def _point_params(workload: Dict[str, Any], index: int) -> Dict[str, Any]:
    """The ``index``-th distinct parameter point: the base sweep, new bias."""
    params = dict(workload["base_overrides"])
    params["biases"] = (round(0.1 + 0.05 * index, 2),)
    return params


def measure(workload: Dict[str, Any]) -> Dict[str, Any]:
    """Run the cold and warm phases against a fresh service instance."""
    store_root = Path(tempfile.mkdtemp(prefix="bench-service-")) / "store"
    server = create_server(store_root, port=0, workers=workload["workers"])
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        port = server.server_address[1]
        experiment = workload["experiment"]
        points = [_point_params(workload, index) for index in range(workload["distinct_points"])]

        # Cold phase: every distinct point pays for simulation exactly once.
        client = ServiceClient(port=port)
        start = time.perf_counter()
        rendered: List[str] = []
        for params in points:
            final = client.result(client.submit(experiment, params=params))
            assert final["cache"] == "miss", "fresh points must miss an empty store"
            rendered.append(final["result"]["rendered"])
        cold_seconds = time.perf_counter() - start

        # Warm phase: multi-threaded clients replay the same points; every
        # request must be an immediate 200 served from the store.
        warm_requests = workload["distinct_points"] * workload["warm_sweeps"]
        failures: List[str] = []
        lock = threading.Lock()

        def replay(thread_index: int, assigned: List[int]) -> None:
            thread_client = ServiceClient(port=port)
            for position in assigned:
                params = points[position % len(points)]
                body = thread_client.submit(experiment, params=params)
                ok = (
                    body["cache"] == "hit"
                    and body["job_id"] is None
                    and body["result"]["rendered"] == rendered[position % len(points)]
                )
                if not ok:
                    with lock:
                        failures.append(f"thread {thread_index} request {position}: {body['cache']}")

        assignments: List[List[int]] = [[] for _ in range(workload["client_threads"])]
        for position in range(warm_requests):
            assignments[position % len(assignments)].append(position)
        threads = [
            threading.Thread(target=replay, args=(index, assigned))
            for index, assigned in enumerate(assignments)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        warm_seconds = time.perf_counter() - start
        assert not failures, f"warm requests were not all store hits: {failures[:5]}"

        metrics = client.metrics()
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()
        shutil.rmtree(store_root.parent, ignore_errors=True)

    cold_rps = workload["distinct_points"] / cold_seconds
    warm_rps = warm_requests / warm_seconds
    return {
        "description": "experiment service over HTTP: cold simulation vs warm store hits",
        "workload": {
            "experiment": f"{workload['experiment']} majority sweep over the service",
            **workload["base_overrides"],
            "distinct_points": workload["distinct_points"],
            "warm_requests": warm_requests,
            "client_threads": workload["client_threads"],
            "service_workers": workload["workers"],
            "cache_hit_rate": metrics["cache"]["hit_rate"],
            "cache": metrics["cache"],
        },
        "host": {"cpu_count": os.cpu_count()},
        "seconds": {
            "cold_phase": round(cold_seconds, 4),
            "warm_phase": round(warm_seconds, 4),
        },
        "requests_per_second": {
            "cold": round(cold_rps, 2),
            "warm": round(warm_rps, 2),
        },
        "speedup_vs_serial": {
            "warm_vs_cold_rps": round(warm_rps / cold_rps, 2),
        },
    }


def test_service_load():
    """Measure cold vs warm service throughput and record the JSON record."""
    payload = measure(build_workloads())
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(json.dumps(payload, indent=2))

    hit_rate = payload["workload"]["cache_hit_rate"]
    assert hit_rate is not None and hit_rate > 0.5, (
        f"warm phase should dominate the service cache statistics, got {hit_rate}"
    )
    warm_win = payload["speedup_vs_serial"]["warm_vs_cold_rps"]
    assert warm_win > 1.0, (
        f"expected warm store hits to outpace cold simulation, got {warm_win}x "
        f"(recorded in {RESULTS_PATH})"
    )
