"""Micro-benchmarks of the simulation substrate itself.

These do not correspond to a paper claim; they document the simulator's raw
throughput (gossip rounds per second at different population sizes), which is
what determines how far the experiment sweeps can be pushed on a laptop.
"""

import numpy as np
import pytest

from repro.substrate import BinarySymmetricChannel, PushGossipNetwork, SimulationEngine


@pytest.mark.parametrize("n", [1_000, 10_000, 100_000])
def test_gossip_round_throughput(benchmark, n):
    """One full push-gossip round with every agent speaking."""
    network = PushGossipNetwork(size=n)
    channel = BinarySymmetricChannel(epsilon=0.2)
    rng = np.random.default_rng(12345)
    senders = np.arange(n, dtype=np.int64)
    bits = rng.integers(0, 2, size=n).astype(np.int8)

    benchmark(network.deliver, senders, bits, channel, rng)


def test_full_broadcast_run(benchmark):
    """End-to-end broadcast at n = 2000, eps = 0.25 (the default experiment scale)."""
    from repro.core import NoisyBroadcastProtocol, ProtocolParameters

    parameters = ProtocolParameters.calibrated(2000, 0.25)

    def run_once():
        engine = SimulationEngine.create(n=2000, epsilon=0.25, seed=99)
        return NoisyBroadcastProtocol(parameters).run(engine, correct_opinion=1)

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.success
