"""Speedup of the trial-execution subsystem on an E1-style broadcast sweep.

Runs the same Monte-Carlo sweep (noisy broadcast over a grid of population
sizes) three ways — serial reference, process-parallel
(:class:`~repro.exec.runner.ParallelTrialRunner`), and vectorised batch
(:mod:`repro.exec.batching`) — and records wall-clock times and speedups in
``benchmarks/results/exec_speedup.json``.

The batch path amortises Python-level per-round overhead across all
replicates of a sweep point and delivers its speedup even on a single core;
the parallel path additionally scales with the number of CPUs (on a 1-CPU
host it degenerates gracefully to roughly serial speed).  The test asserts
the subsystem's headline claim: at least a 2x end-to-end speedup over the
serial reference on this host.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis.sweeps import run_sweep
from repro.exec import ParallelTrialRunner, SerialTrialRunner, run_broadcast_sweep_batched
from repro.experiments.e1_rounds_vs_n import _broadcast_trial

import functools

SIZES = (500, 1000, 2000)
EPSILON = 0.25
TRIALS = 6
BASE_SEED = 101
RESULTS_PATH = Path(__file__).parent / "results" / "exec_speedup.json"


def _run_once(runner) -> "object":
    """One E1-style sweep through ``run_sweep`` with the given runner."""
    return run_sweep(
        name="exec-speedup",
        points=[{"n": n} for n in SIZES],
        trial_fn=functools.partial(_broadcast_trial, epsilon=EPSILON),
        trials_per_point=TRIALS,
        base_seed=BASE_SEED,
        runner=runner,
    )


def test_exec_speedup(print_report):
    """Measure serial vs parallel vs batched wall-clock and record the JSON."""
    start = time.perf_counter()
    serial_sweep = _run_once(SerialTrialRunner())
    serial_seconds = time.perf_counter() - start

    parallel_runner = ParallelTrialRunner(jobs=None)
    start = time.perf_counter()
    parallel_sweep = _run_once(parallel_runner)
    parallel_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_sweep = run_broadcast_sweep_batched(
        name="exec-speedup",
        points=[{"n": n} for n in SIZES],
        trials_per_point=TRIALS,
        base_seed=BASE_SEED,
        defaults={"epsilon": EPSILON},
    )
    batch_seconds = time.perf_counter() - start

    # Identical-results contract: the parallel sweep is bit-identical to the
    # serial one; the batched sweep reproduces every schedule-determined
    # observable exactly (the round count is fixed by (n, epsilon)).
    assert [r.to_dict() for r in parallel_sweep.results] == [
        r.to_dict() for r in serial_sweep.results
    ]
    for serial_result, batched_result in zip(serial_sweep.results, batched_sweep.results):
        assert serial_result.mean("rounds") == batched_result.mean("rounds")
        assert batched_result.rate("success") >= 0.8

    payload = {
        "workload": {
            "experiment": "E1-style broadcast sweep",
            "sizes": list(SIZES),
            "epsilon": EPSILON,
            "trials_per_point": TRIALS,
            "base_seed": BASE_SEED,
        },
        "host": {"cpu_count": os.cpu_count(), "parallel_jobs": parallel_runner.effective_jobs},
        "seconds": {
            "serial": round(serial_seconds, 3),
            "parallel": round(parallel_seconds, 3),
            "batch": round(batch_seconds, 3),
        },
        "speedup_vs_serial": {
            "parallel": round(serial_seconds / parallel_seconds, 2),
            "batch": round(serial_seconds / batch_seconds, 2),
        },
        "parallel_fallback_reason": parallel_runner.last_fallback_reason,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(json.dumps(payload, indent=2))

    best_speedup = max(payload["speedup_vs_serial"].values())
    assert best_speedup >= 2.0, (
        f"expected the exec subsystem to be at least 2x faster than serial, "
        f"got {payload['speedup_vs_serial']} (recorded in {RESULTS_PATH})"
    )
