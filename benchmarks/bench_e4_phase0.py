"""E4 — Stage I phase 0: activated set size and bias (Claim 2.2)."""

from repro.experiments import e4_phase0


def test_e4_phase0(benchmark, print_report, exec_runner):
    report = benchmark.pedantic(
        e4_phase0.run,
        kwargs={"n": 4000, "epsilons": (0.1, 0.2, 0.3), "trials": 30, "runner": exec_runner},
        rounds=1,
        iterations=1,
    )
    print_report(report)

    for row in report.rows:
        # Claim 2.2: beta_s/3 <= X0 <= beta_s ...
        assert row["x0_bound_rate"] >= 0.9
        # ... and bias at least eps/2 (empirically the bias concentrates near eps).
        assert row["bias_bound_rate"] >= 0.9
        assert row["mean_bias0"] >= row["claimed_min_bias"]
