"""E4 — Stage I phase 0: activated set size and bias (Claim 2.2)."""

from repro.api import run_experiment


def test_e4_phase0(benchmark, print_report, exec_config):
    artifact = benchmark.pedantic(
        run_experiment,
        args=("E4",),
        kwargs={
            "config": exec_config,
            "n": 4000,
            "epsilons": (0.1, 0.2, 0.3),
            "trials": 30,
        },
        rounds=1,
        iterations=1,
    )
    report = artifact.report
    print_report(report)

    for row in report.rows:
        # Claim 2.2: beta_s/3 <= X0 <= beta_s ...
        assert row["x0_bound_rate"] >= 0.9
        # ... and bias at least eps/2 (empirically the bias concentrates near eps).
        assert row["bias_bound_rate"] >= 0.9
        assert row["mean_bias0"] >= row["claimed_min_bias"]
