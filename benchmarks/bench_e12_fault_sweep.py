"""E12 — fault-fraction sweep: paper protocol vs. the fault-tolerant comparator.

Runs the E12 driver's sweep for both fault kinds (crash-stop and Byzantine
senders) two ways — the serial per-trial path and the batched ``(R, n)``
rules of :mod:`repro.exec.fault_batching` — and records wall times and
speedups per fault family in ``benchmarks/results/e12_fault_sweep.json``
(aggregated into ``BENCH_SUMMARY.json`` by ``collect_results.py``).

The test asserts the sweep's physics, not a speedup floor (the comparator is
cheap, so the family mixes very different per-trial costs): the f=0 column
must be a clean baseline for both protocols, and the comparator — which is
*configured* to tolerate exactly the injected ``f`` — must keep succeeding
at fault fractions well past where tolerances are meaningful.

``build_workloads(toy=True)`` shrinks the sweep so the smoke gate in
``tests/unit/test_smoke_gates.py`` executes the measurement end to end in
well under a second.
"""

from __future__ import annotations

import functools
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Tuple

from repro.api import ExecutionConfig, run_experiment

BASE_SEED = 1212
RESULTS_PATH = Path(__file__).parent / "results" / "e12_fault_sweep.json"

#: Fault kinds swept, one benchmark family each.
FAULT_KINDS = ("crash", "byzantine")


def build_workloads(toy: bool = False) -> Dict[str, Dict[str, Any]]:
    """Per-fault-kind workloads: serial and batch thunks plus metadata."""
    if toy:
        shared = dict(n=150, epsilon=0.3, fault_fractions=(0.0, 0.2), trials=2)
    else:
        shared = dict(n=400, epsilon=0.25, fault_fractions=(0.0, 0.1, 0.2, 0.3), trials=6)

    def driver_pair(fault_kind: str) -> Tuple[Callable, Callable]:
        overrides = {**shared, "fault_kind": fault_kind, "base_seed": BASE_SEED}
        serial = functools.partial(run_experiment, "E12", **overrides)
        batched = functools.partial(
            run_experiment, "E12", config=ExecutionConfig(batch=True), **overrides
        )
        return serial, batched

    workloads: Dict[str, Dict[str, Any]] = {}
    for fault_kind in FAULT_KINDS:
        serial, batched = driver_pair(fault_kind)
        workloads[fault_kind] = {
            "description": (
                f"E12 {fault_kind} fault sweep: paper protocol vs. phased "
                "approximate-consensus comparator"
            ),
            "workload": {**shared, "fault_kind": fault_kind},
            "serial": serial,
            "batch": batched,
        }
    return workloads


def measure(workloads: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Time each fault family both ways and assemble the families payload."""
    families: Dict[str, Any] = {}
    for family, spec in workloads.items():
        start = time.perf_counter()
        serial_artifact = spec["serial"]()
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        batch_artifact = spec["batch"]()
        batch_seconds = time.perf_counter() - start
        families[family] = {
            "description": spec["description"],
            "workload": spec["workload"],
            "seconds": {
                "serial": round(serial_seconds, 3),
                "batch": round(batch_seconds, 3),
            },
            "speedup_vs_serial": {"batch": round(serial_seconds / batch_seconds, 2)},
            "reports": {
                "serial": serial_artifact.report.to_dict(),
                "batch": batch_artifact.report.to_dict(),
            },
        }
    return {
        "workload": {
            "experiment": "E12 fault-injection sweep (crash, byzantine)",
            "base_seed": BASE_SEED,
        },
        "host": {"cpu_count": os.cpu_count()},
        "families": families,
    }


def _assert_sweep_physics(families: Dict[str, Any]) -> None:
    """The sweep's invariants, checked on every measured report."""
    for family, payload in families.items():
        for path in ("serial", "batch"):
            rows = payload["reports"][path]["rows"]
            for row in rows:
                if row["fault_fraction"] == 0.0:
                    # Clean baseline: no declared faults, both protocols win.
                    assert row["num_faulty"] == 0, (family, path, row)
                    assert row["success_rate"] == 1.0, (family, path, row)
                if row["protocol"] == "phased-approximate-consensus":
                    # The comparator tolerates its configured f by design
                    # (crash faults; Byzantine equivocation keeps the spread
                    # an averaged mix, still near-always within eps here).
                    if row["fault_fraction"] <= 0.2:
                        assert row["success_rate"] >= 0.5, (family, path, row)


def test_e12_fault_sweep(print_report):
    """Measure the E12 sweep per fault kind and record the JSON payload."""
    payload = measure(build_workloads())
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(json.dumps({k: v["seconds"] for k, v in payload["families"].items()}, indent=2))

    _assert_sweep_physics(payload["families"])
