"""E8 — majority-consensus feasibility region (Corollary 2.18)."""

from repro.api import run_experiment


def test_e8_majority_consensus(benchmark, print_report, exec_config):
    artifact = benchmark.pedantic(
        run_experiment,
        args=("E8",),
        kwargs={
            "config": exec_config,
            "n": 2000,
            "epsilon": 0.2,
            "set_sizes": (50, 200, 800),
            "biases": (0.02, 0.05, 0.1, 0.2, 0.35),
            "trials": 4,
        },
        rounds=1,
        iterations=1,
    )
    report = artifact.report
    print_report(report)

    above = [row for row in report.rows if row["above_threshold"]]
    below = [row for row in report.rows if not row["above_threshold"]]
    assert above, "the grid must contain configurations above the Corollary 2.18 threshold"
    assert below, "the grid must contain configurations below the threshold"

    # Corollary 2.18: above the threshold the protocol succeeds (w.h.p.).
    assert all(row["success_rate"] >= 0.75 for row in above)
    # The guarantee genuinely needs the threshold: well below it, success degrades.
    weakest = [row for row in below if row["initial_bias"] <= 0.05 and row["set_size"] <= 200]
    assert any(row["success_rate"] <= 0.75 for row in weakest)
