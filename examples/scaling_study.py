#!/usr/bin/env python
"""Scenario: verifying the O(log n / eps^2) scaling on your own machine.

This example runs experiments E1 and E2 — round complexity versus population
size and versus noise margin — through the unified experiment API
(:func:`repro.api.run_experiment`): one call per experiment, execution
strategy in an :class:`repro.api.ExecutionConfig` (the vectorised batch path
here; pass ``jobs=`` to fan sweep points over worker processes), parameter
overrides as keyword arguments.  Each run comes back as a
:class:`repro.api.RunArtifact` whose report embeds the Theorem 2.17 scaling
fits; the artifacts are saved to a directory and reloaded to show the
round-trip every recorded number supports.

It is the quickest way to see Theorem 2.17's scaling with your own eyes (and
to check how long larger runs would take on your hardware before launching
the full benchmark suite).

Run with::

    python examples/scaling_study.py [artifact_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.api import ExecutionConfig, load_run, run_experiment, save_run


def main() -> int:
    artifact_root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="repro-scaling-"))
    config = ExecutionConfig(batch=True)  # vectorised trials; add jobs=0 for all CPUs

    study = {
        "e1-rounds-vs-n": run_experiment(
            "E1",
            config=config,
            sizes=(250, 500, 1000, 2000, 4000),
            epsilon=0.25,
            trials=3,
        ),
        "e2-rounds-vs-eps": run_experiment(
            "E2",
            config=config,
            epsilons=(0.1, 0.15, 0.2, 0.3, 0.4),
            n=1000,
            trials=3,
        ),
    }

    for name, artifact in study.items():
        print(artifact.report.render())
        print()
        destination = save_run(artifact, artifact_root / name)
        reloaded = load_run(destination)
        assert reloaded.report.render() == artifact.report.render(), "artifact round-trip changed the table"
        print(
            f"({artifact.spec_id} took {artifact.wall_time_seconds:.2f}s; "
            f"artifact saved to {destination} and reloaded identically)"
        )
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
