#!/usr/bin/env python
"""Scenario: verifying the O(log n / eps^2) scaling on your own machine.

This example is a condensed version of experiments E1/E2: it sweeps the
population size at fixed noise and the noise at fixed population size, fits
the measured round counts against the theoretical shapes, and prints both the
raw numbers and the fits.  It is the quickest way to see Theorem 2.17's
scaling with your own eyes (and to check how long larger runs would take on
your hardware before launching the full benchmark suite).

Run with::

    python examples/scaling_study.py
"""

from __future__ import annotations

import math
import time

from repro import solve_noisy_broadcast
from repro.analysis import fit_inverse_square_epsilon, fit_log_n_scaling, render_table


def sweep_population_sizes() -> None:
    epsilon = 0.25
    rows = []
    sizes = (250, 500, 1000, 2000, 4000)
    mean_rounds = []
    for n in sizes:
        start = time.perf_counter()
        result = solve_noisy_broadcast(n=n, epsilon=epsilon, seed=97)
        elapsed = time.perf_counter() - start
        mean_rounds.append(result.rounds)
        rows.append(
            {
                "n": n,
                "rounds": result.rounds,
                "rounds / ln n": result.rounds / math.log(n),
                "messages": result.messages_sent,
                "all correct": result.success,
                "wall time (s)": round(elapsed, 2),
            }
        )
    fit = fit_log_n_scaling(list(sizes), mean_rounds)
    print(render_table(rows, title=f"Rounds versus n at eps = {epsilon}"))
    print(f"\nfit: rounds ~ {fit.slope:.1f} * ln(n) + {fit.intercept:.1f}   (R^2 = {fit.r_squared:.3f})\n")


def sweep_noise_levels() -> None:
    n = 1000
    rows = []
    epsilons = (0.1, 0.15, 0.2, 0.3, 0.4)
    mean_rounds = []
    for epsilon in epsilons:
        result = solve_noisy_broadcast(n=n, epsilon=epsilon, seed=98)
        mean_rounds.append(result.rounds)
        rows.append(
            {
                "epsilon": epsilon,
                "flip probability": round(0.5 - epsilon, 2),
                "rounds": result.rounds,
                "rounds * eps^2": result.rounds * epsilon**2,
                "all correct": result.success,
            }
        )
    fit = fit_inverse_square_epsilon(list(epsilons), mean_rounds)
    print(render_table(rows, title=f"Rounds versus epsilon at n = {n}"))
    print(f"\nfit: rounds ~ {fit.slope:.2f} / eps^2 + {fit.intercept:.1f}   (R^2 = {fit.r_squared:.3f})")


def main() -> int:
    sweep_population_sizes()
    sweep_noise_levels()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
