#!/usr/bin/env python
"""Scenario: verifying the O(log n / eps^2) scaling on your own machine.

This example runs experiments E1 and E2 — round complexity versus population
size and versus noise margin — through the content-addressed run store
(:class:`repro.store.RunStore`): each study is requested with
``store.get_or_run(...)``, so the first invocation computes and persists
the run while every later invocation of this script (same parameters, same
package version) is served from the store as a **cache hit** — no
simulation, byte-identical tables.  Execution strategy still comes from an
:class:`repro.api.ExecutionConfig` (the vectorised batch path here; pass
``jobs=`` to fan sweep points over worker processes), and deliberately does
not participate in the cache key.

It is the quickest way to see Theorem 2.17's scaling with your own eyes
(and, on the second run, to see the run store amortise it to milliseconds).

Run with::

    python examples/scaling_study.py [store_dir]

Pass a persistent ``store_dir`` (e.g. ``runs/store``) to keep the cache
across invocations; the default is a throwaway temporary directory, so
both the cold and the warm path are demonstrated within one process.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.api import ExecutionConfig, RunStore

STUDY = {
    "E1": dict(sizes=(250, 500, 1000, 2000, 4000), epsilon=0.25, trials=3),
    "E2": dict(epsilons=(0.1, 0.15, 0.2, 0.3, 0.4), n=1000, trials=3),
}


def run_study(store: RunStore, config: ExecutionConfig) -> None:
    """Run (or serve) every study experiment through the store, printing tables."""
    for experiment_id, overrides in STUDY.items():
        started = time.perf_counter()
        artifact = store.get_or_run(experiment_id, config=config, **overrides)
        elapsed = time.perf_counter() - started
        print(artifact.report.render())
        print()
        print(
            f"({experiment_id}: cache {artifact.execution['cache']} in {elapsed:.2f}s; "
            f"fingerprint {artifact.fingerprint[:12]}..., stored under {store.root})"
        )
        print()


def main() -> int:
    store_root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="repro-scaling-")) / "store"
    store = RunStore(store_root)
    config = ExecutionConfig(batch=True)  # vectorised trials; add jobs=0 for all CPUs

    print("=== first pass (cold store: computes and persists) ===\n")
    run_study(store, config)

    print("=== second pass (warm store: served from disk) ===\n")
    started = time.perf_counter()
    run_study(store, config)
    warm_elapsed = time.perf_counter() - started

    # The whole warm pass is served from the store — assert it, loudly.
    for experiment_id, overrides in STUDY.items():
        again = store.get_or_run(experiment_id, config=config, **overrides)
        assert again.execution["cache"] == "hit", f"{experiment_id} was not served from the store"
    print(f"(warm pass took {warm_elapsed:.2f}s total — no simulation ran)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
