#!/usr/bin/env python
"""Scenario: spreading a predator alarm through a flock (noisy broadcast).

The paper motivates the broadcast problem with vigilance in animal groups: a
single individual that has spotted a predator ("the source") must propagate
the escape direction to the whole group through short, unreliable signals
(Section 1.2 and footnote 2 — the two opinions are symmetric directions,
e.g. north/south).

This example compares three ways the flock could spread the alarm:

* the paper's "breathe before speaking" protocol;
* naive immediate forwarding (every bird repeats the first signal it hears);
* the adopt-the-last-signal (noisy voter) dynamic.

It prints the fraction of the flock that ends up fleeing in the *correct*
direction under each strategy, at two noise levels, reproducing the
Section 1.6 story: fast-but-unreliable relaying leaves the flock split, while
the paper's protocol aligns everyone.

Run with::

    python examples/predator_alarm.py
"""

from __future__ import annotations

from repro import solve_noisy_broadcast
from repro.analysis import render_table
from repro.protocols import ImmediateForwardingBroadcast, NoisyVoterBroadcast
from repro.substrate import SimulationEngine

FLOCK_SIZE = 1500
TRIALS = 3


def run_strategy(name: str, epsilon: float, seed: int) -> dict:
    """Run one strategy once and report its outcome."""
    if name == "breathe-before-speaking":
        result = solve_noisy_broadcast(n=FLOCK_SIZE, epsilon=epsilon, seed=seed)
        return {"fraction": result.final_correct_fraction, "rounds": result.rounds}
    engine = SimulationEngine.create(n=FLOCK_SIZE, epsilon=epsilon, seed=seed)
    if name == "immediate-forwarding":
        outcome = ImmediateForwardingBroadcast().run(engine, correct_opinion=1)
    else:
        outcome = NoisyVoterBroadcast(max_rounds=500).run(engine, correct_opinion=1)
    return {"fraction": outcome.final_correct_fraction, "rounds": outcome.rounds}


def main() -> int:
    rows = []
    for epsilon in (0.1, 0.25):
        for strategy in ("breathe-before-speaking", "immediate-forwarding", "noisy-voter"):
            fractions = []
            rounds = []
            for trial in range(TRIALS):
                outcome = run_strategy(strategy, epsilon, seed=7000 + trial)
                fractions.append(outcome["fraction"])
                rounds.append(outcome["rounds"])
            rows.append(
                {
                    "signal noise (flip prob)": round(0.5 - epsilon, 2),
                    "strategy": strategy,
                    "mean fraction fleeing correctly": sum(fractions) / TRIALS,
                    "mean rounds used": sum(rounds) / TRIALS,
                }
            )

    print(f"Flock of {FLOCK_SIZE} birds; one bird has spotted the predator.\n")
    print(render_table(rows, title="Fraction of the flock escaping in the correct direction"))
    print()
    print(
        "Immediate forwarding and voter dynamics leave the flock close to a 50/50 split (the relayed "
        "signal decays like (2*eps)^hops); the paper's protocol aligns essentially the whole flock."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
