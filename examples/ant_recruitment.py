#!/usr/bin/env python
"""Scenario: noisy recruitment in an ant colony (majority-consensus).

The paper's introduction motivates majority-consensus with biological
examples: ants choosing between two candidate nest sites reach consensus on
the site favoured by the larger number of scouts, even though individual
ant-to-ant interactions are short and unreliable (Razin et al. 2013, cited as
[55]; Franks et al. 2002, cited as [31]).

This example casts that story in the Flip model:

* a colony of ``n`` ants, of which only a small set of *scouts* has visited a
  nest site and holds an opinion (site 0 or site 1);
* the better site has a modest majority among the scouts;
* every interaction transmits a single bit ("my site is the good one") and is
  misunderstood with probability ``1/2 - epsilon``.

The colony runs the paper's majority-consensus protocol, and the example
sweeps the scout majority to show the feasibility threshold of
Corollary 2.18: with too thin a majority the colony can lock onto the wrong
site; with a ``sqrt(log n / |A|)`` majority it reliably picks the right one.

Run with::

    python examples/ant_recruitment.py
"""

from __future__ import annotations

from repro import solve_noisy_majority_consensus
from repro.analysis import render_table
from repro.core.theory import majority_consensus_min_bias

COLONY_SIZE = 2000
SCOUTS = 200
EPSILON = 0.2  # an interaction is misread with probability 0.3
TRIALS = 5


def main() -> int:
    threshold = majority_consensus_min_bias(SCOUTS, COLONY_SIZE)
    rows = []
    for scout_bias in (0.02, 0.05, 0.10, 0.20, 0.35):
        successes = 0
        rounds = 0
        for trial in range(TRIALS):
            result = solve_noisy_majority_consensus(
                n=COLONY_SIZE,
                epsilon=EPSILON,
                initial_set_size=SCOUTS,
                majority_bias=scout_bias,
                seed=1000 + trial,
            )
            successes += int(result.success)
            rounds += result.rounds
        rows.append(
            {
                "scout majority-bias": scout_bias,
                "scouts for good site": int(SCOUTS * (0.5 + scout_bias)),
                "scouts for bad site": SCOUTS - int(SCOUTS * (0.5 + scout_bias)),
                "above sqrt(log n/|A|) threshold": scout_bias >= threshold,
                "colony picks good site": f"{successes}/{TRIALS}",
                "mean rounds": rounds / TRIALS,
            }
        )

    print(
        f"Colony of {COLONY_SIZE} ants, {SCOUTS} scouts, interactions misread with probability "
        f"{0.5 - EPSILON:.2f}; Corollary 2.18 bias threshold ~ {threshold:.3f}\n"
    )
    print(render_table(rows, title="Nest-site consensus versus scout majority"))
    print()
    print(
        "Above the threshold the colony reliably converges on the better site in O(log n / eps^2) "
        "rounds; below it the thin scout majority is drowned by interaction noise."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
