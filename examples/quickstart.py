#!/usr/bin/env python
"""Quickstart: solve one noisy-broadcast instance and inspect the run.

This example builds a population of ``n`` anonymous agents, gives one source
agent the correct opinion, and runs the paper's two-stage protocol over the
noisy push-gossip substrate.  It then prints the per-stage story: how Stage I
("breathe before speaking") spreads a weakly reliable opinion to everyone,
and how Stage II's repeated noisy majorities boost that weak signal to full
consensus.

It closes with the unified experiment API (:mod:`repro.api`): the same claim
as a registered experiment, run through ``run_experiment`` with an
``ExecutionConfig`` — which is how the E1–E11 drivers, the CLI
(``repro-flip experiment``) and the benchmarks all execute.

Run with::

    python examples/quickstart.py [n] [epsilon]
"""

from __future__ import annotations

import sys

from repro import ProtocolParameters, solve_noisy_broadcast
from repro.analysis import render_kv, render_table
from repro.api import ExecutionConfig, run_experiment


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    epsilon = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2

    parameters = ProtocolParameters.calibrated(n, epsilon)
    print(render_kv(parameters.describe()["stage1"], title=f"Stage I parameters (n={n}, eps={epsilon})"))
    print()
    print(render_kv(parameters.describe()["stage2"], title="Stage II parameters"))
    print()

    result = solve_noisy_broadcast(n=n, epsilon=epsilon, seed=42, parameters=parameters)

    print(render_kv(
        {
            "success (all agents hold B)": result.success,
            "rounds": result.rounds,
            "messages (= bits) sent": result.messages_sent,
            "messages per agent": round(result.messages_per_agent, 1),
            "bias after Stage I": round(result.stage1.final_bias, 4),
            "final correct fraction": result.final_correct_fraction,
        },
        title="Outcome",
    ))
    print()

    stage1_rows = [
        {
            "phase": phase.phase,
            "rounds": phase.rounds,
            "senders": phase.senders,
            "activated_total (X_i)": phase.activated_total,
            "newly_activated (Y_i)": phase.newly_activated,
            "bias of new opinions (eps_i)": phase.bias_of_new,
        }
        for phase in result.stage1.phases
    ]
    print(render_table(stage1_rows, title="Stage I: spreading in synchronized layers"))
    print()

    stage2_rows = [
        {
            "phase": phase.phase,
            "rounds": phase.rounds,
            "successful agents": phase.successful_agents,
            "bias before": phase.bias_before,
            "bias after": phase.bias_after,
        }
        for phase in result.stage2.phases
    ]
    print(render_table(stage2_rows, title="Stage II: boosting by repeated noisy majorities"))
    print()

    # The same claim through the unified experiment API: experiment E1 sweeps
    # n and fits the Theorem 2.17 round bound; the vectorised batch path
    # simulates all trials of a sweep point at once.
    artifact = run_experiment(
        "E1",
        config=ExecutionConfig(batch=True),
        sizes=(max(n // 4, 100), max(n // 2, 200), n),
        epsilon=epsilon,
        trials=3,
    )
    print(artifact.report.render())
    print()
    print(
        f"(unified API: repro.api.run_experiment ran spec {artifact.spec_id} "
        f"in {artifact.wall_time_seconds:.2f}s; save_run(artifact, DIR) persists it)"
    )
    return 0 if result.success else 1


if __name__ == "__main__":
    raise SystemExit(main())
