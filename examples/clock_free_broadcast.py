#!/usr/bin/env python
"""Scenario: broadcast without a shared clock (Section 3).

Biological agents do not share a global clock.  Section 3 of the paper shows
that the protocol survives this: an initial *activation phase* (everyone
relays an arbitrary "wake up" signal and resets its clock a fixed delay after
first hearing it) bounds the clock skew by ``D = 2 log n``, and then every
phase is padded with a ``D``-round guard window so that agents whose clocks
disagree still execute each phase in disjoint global windows.

This example runs the fully-synchronous protocol and the clock-free protocol
on the same instances and reports the additive overhead — Theorem 3.1's
``O(log^2 n)`` term — and the (unchanged) message complexity.

Run with::

    python examples/clock_free_broadcast.py
"""

from __future__ import annotations

import math

from repro import ProtocolParameters, run_clock_free_broadcast, solve_noisy_broadcast
from repro.analysis import render_table
from repro.core.synchronizer import default_guard

EPSILON = 0.25
TRIALS = 3


def main() -> int:
    rows = []
    for n in (500, 1000, 2000):
        parameters = ProtocolParameters.calibrated(n, EPSILON)
        sync_rounds, sync_messages, async_rounds, async_messages, successes = 0, 0, 0, 0, 0
        for trial in range(TRIALS):
            sync = solve_noisy_broadcast(n=n, epsilon=EPSILON, seed=300 + trial, parameters=parameters)
            clock_free = run_clock_free_broadcast(
                n=n, epsilon=EPSILON, seed=300 + trial, parameters=parameters
            )
            sync_rounds += sync.rounds
            sync_messages += sync.messages_sent
            async_rounds += clock_free.rounds
            async_messages += clock_free.messages_sent
            successes += int(clock_free.success)
        rows.append(
            {
                "n": n,
                "guard D = 2 log2 n": default_guard(n),
                "sync rounds": sync_rounds / TRIALS,
                "clock-free rounds": async_rounds / TRIALS,
                "overhead rounds": (async_rounds - sync_rounds) / TRIALS,
                "log2(n)^2": round(math.log2(n) ** 2),
                "message overhead": round((async_messages / max(sync_messages, 1) - 1) * 100, 1),
                "clock-free success": f"{successes}/{TRIALS}",
            }
        )

    print(render_table(rows, title="Cost of removing the global clock (Theorem 3.1)"))
    print()
    print(
        "The round overhead tracks D * (number of phases) = O(log^2 n), while the extra messages come "
        "only from the activation phase's 2 log n 'wake up' pushes per agent (column in percent)."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
