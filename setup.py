"""Package metadata and installation for the PODC 2014 reproduction.

Installs the ``repro`` package (a from-scratch reproduction of
Feinerman–Haeupler–Korman, "Breathe before Speaking", PODC 2014) and the
``repro-flip`` command-line interface.  The long description is the
top-level ``README.md``, so PyPI-style metadata stays in sync with the
repository documentation.
"""

from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).parent / "README.md"

setup(
    name="repro-flip",
    version="1.0.0",
    description=(
        "Noisy broadcast and majority consensus in the Flip model — a reproduction of "
        "Feinerman, Haeupler & Korman, 'Breathe before Speaking' (PODC 2014)"
    ),
    long_description=README.read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    url="https://example.invalid/repro-flip",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest>=7", "hypothesis>=6", "pytest-benchmark>=4"],
    },
    entry_points={
        "console_scripts": [
            "repro-flip = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Operating System :: OS Independent",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Distributed Computing",
    ],
    keywords=[
        "distributed-computing",
        "gossip-protocols",
        "noisy-communication",
        "population-protocols",
        "simulation",
        "reproducibility",
    ],
    zip_safe=False,
)
