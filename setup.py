"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists only
so that environments without the ``wheel`` package (which PEP 660 editable
installs require) can still do a legacy ``python setup.py develop`` /
``pip install -e .`` editable install.
"""

from setuptools import setup

setup()
