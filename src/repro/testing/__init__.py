"""repro.testing — systems-level test instrumentation for the serving stack.

Home of the **chaos harness** (:mod:`repro.testing.chaos`), the
systems-layer sibling of the simulation-layer
:class:`~repro.substrate.faults.FaultInjector` from PR 6: where the fault
injector perturbs *messages inside a simulation* (crashed senders,
Byzantine noise), the chaos registry perturbs the *infrastructure running
the simulations* — a store write that raises mid-``put``, a job-queue
worker that dies without recording an outcome, a remote worker's completed
chunk vanishing in flight.

Production modules guard well-known **fault points** with
:func:`repro.testing.chaos.fire`; the call is a no-op dictionary miss until
a test (or the ``REPRO_CHAOS`` environment variable, for faults that must
land inside a subprocess) arms the point with a fault.  The recovery tests
in ``tests/unit/service/test_recovery.py`` and the CI chaos smoke gate are
the consumers.
"""

from __future__ import annotations

from .chaos import (
    ChaosFault,
    active_faults,
    fire,
    inject,
    install,
    install_from_env,
    reset,
    uninstall,
)

__all__ = [
    "ChaosFault",
    "active_faults",
    "fire",
    "inject",
    "install",
    "install_from_env",
    "reset",
    "uninstall",
]
