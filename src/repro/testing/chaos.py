"""A fault-point registry for chaos-testing the serving/store/dispatch stack.

The simulation layer already has a first-class fault story
(:mod:`repro.substrate.faults`); this module gives the *systems* layers the
same discipline.  Production code marks the places where infrastructure can
fail with a named **fault point**::

    from ..testing import chaos
    chaos.fire("store.put", fingerprint=fingerprint)   # no-op unless armed

and tests arm those points with faults — an exception to raise, a delay to
insert, a message to drop, a worker to kill — either in-process::

    with chaos.inject("store.put", raises=OSError("disk full"), times=1):
        ...   # the next store put fails exactly once

or across a process boundary through the ``REPRO_CHAOS`` environment
variable (parsed by :func:`install_from_env`, which ``repro-flip serve``
calls on startup), so the CI chaos gate can make a *served subprocess*
misbehave deterministically::

    REPRO_CHAOS="queue.worker:sleep:5" repro-flip serve --store runs/store

Known fault points (:data:`KNOWN_POINTS` — :func:`install` rejects typos):

==================  ========================================================
point               instrumented site
==================  ========================================================
``store.put``       :meth:`repro.store.cache.RunStore.put`, before staging
                    the artifact (a raise becomes a
                    :class:`~repro.store.cache.StoreWriteError` — the
                    disk-full / read-only-filesystem stand-in)
``journal.append``  :meth:`repro.service.journal.JobJournal.record`, before
                    the locked append
``queue.worker``    :meth:`repro.service.jobs.JobQueue` worker loop, after a
                    job is marked running but before it executes (``die``
                    kills the worker thread leaving the job in-flight —
                    the crash the journal replay must recover; ``sleep``
                    widens the kill window for ``kill -9`` tests)
``dispatch.done``   :func:`repro.exec.backends.dispatch.dispatch_chunks`, on
                    receiving a chunk completion (``drop`` discards it —
                    a remote worker killed after computing but before its
                    result survived transport)
==================  ========================================================

Faults fire a bounded number of ``times`` (or without limit when ``None``)
and are process-global; :func:`reset` (used by test fixtures) clears
everything.  The un-armed fast path is one dictionary emptiness check, so
leaving the ``fire`` calls in production code costs nothing measurable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

import contextlib

from ..errors import ExperimentError

__all__ = [
    "KNOWN_POINTS",
    "ChaosFault",
    "active_faults",
    "fire",
    "inject",
    "install",
    "install_from_env",
    "reset",
    "uninstall",
]

#: Every fault point production code guards with :func:`fire`; installs
#: against any other name are rejected so a typo cannot silently never fire.
KNOWN_POINTS = frozenset({"store.put", "journal.append", "queue.worker", "dispatch.done"})

#: Actions a fault may perform when its point fires.
_ACTIONS = ("raise", "sleep", "drop", "die")

#: Exception names accepted by the ``REPRO_CHAOS`` ``raise`` action.
_ENV_EXCEPTIONS = {"oserror": OSError, "experimenterror": ExperimentError}


@dataclass
class ChaosFault:
    """One armed fault: what a fault point does while this is installed.

    ``action`` is one of ``raise`` (raise ``exception``), ``sleep`` (delay
    ``seconds`` then continue), or the site-interpreted directives ``drop``
    / ``die`` (returned to the instrumented call site, which knows what
    dropping a message or dying means locally).  ``times`` bounds how often
    the fault fires before disarming itself (``None`` = every time).
    """

    point: str
    action: str
    exception: Optional[BaseException] = None
    seconds: float = 0.0
    times: Optional[int] = None
    fired: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        """Validate the point name and the action/argument combination."""
        if self.point not in KNOWN_POINTS:
            raise ExperimentError(
                f"unknown chaos fault point {self.point!r}; known points: "
                f"{', '.join(sorted(KNOWN_POINTS))}"
            )
        if self.action not in _ACTIONS:
            raise ExperimentError(
                f"unknown chaos action {self.action!r}; known actions: {', '.join(_ACTIONS)}"
            )
        if self.action == "raise" and self.exception is None:
            raise ExperimentError("a 'raise' chaos fault needs an exception instance")
        if self.action == "sleep" and self.seconds <= 0:
            raise ExperimentError("a 'sleep' chaos fault needs seconds > 0")
        if self.times is not None and self.times < 1:
            raise ExperimentError(f"a chaos fault must fire at least once, got times={self.times}")


_LOCK = threading.Lock()
_FAULTS: Dict[str, ChaosFault] = {}


def install(fault: ChaosFault) -> ChaosFault:
    """Arm ``fault`` at its point (replacing any fault already armed there)."""
    with _LOCK:
        _FAULTS[fault.point] = fault
    return fault


def uninstall(point: str) -> None:
    """Disarm the fault at ``point`` (a no-op when nothing is armed)."""
    with _LOCK:
        _FAULTS.pop(point, None)


def reset() -> None:
    """Disarm every fault — test fixtures call this between tests."""
    with _LOCK:
        _FAULTS.clear()


def active_faults() -> List[ChaosFault]:
    """A snapshot of the currently armed faults (for assertions/logging)."""
    with _LOCK:
        return list(_FAULTS.values())


@contextlib.contextmanager
def inject(
    point: str,
    *,
    raises: Optional[BaseException] = None,
    sleep: float = 0.0,
    action: Optional[str] = None,
    times: Optional[int] = None,
) -> Iterator[ChaosFault]:
    """Arm a fault for the ``with`` body and disarm it on exit.

    Exactly one behaviour must be given: ``raises=SomeError(...)``,
    ``sleep=seconds``, or ``action="drop"``/``"die"``.
    """
    if sum((raises is not None, sleep > 0, action is not None)) != 1:
        raise ExperimentError("chaos.inject needs exactly one of raises=, sleep=, action=")
    if raises is not None:
        fault = ChaosFault(point, "raise", exception=raises, times=times)
    elif sleep > 0:
        fault = ChaosFault(point, "sleep", seconds=sleep, times=times)
    else:
        fault = ChaosFault(point, str(action), times=times)
    install(fault)
    try:
        yield fault
    finally:
        uninstall(point)


def fire(point: str, **context: Any) -> Optional[str]:
    """Trigger ``point``: the guarded call site invokes this unconditionally.

    Returns ``None`` when no fault is armed (the overwhelmingly common
    case), raises the armed exception for ``raise`` faults, blocks for
    ``sleep`` faults, and returns the directive string for ``drop``/``die``
    faults — the call site interprets those.  ``context`` keyword arguments
    (job ids, fingerprints, chunk ids) exist for debuggability; they are
    attached to raised exceptions via ``exception.chaos_context``.
    """
    if not _FAULTS:  # fast path: nothing armed anywhere
        return None
    with _LOCK:
        fault = _FAULTS.get(point)
        if fault is None:
            return None
        fault.fired += 1
        if fault.times is not None and fault.fired >= fault.times:
            del _FAULTS[point]
    if fault.action == "raise":
        error = fault.exception
        error.chaos_context = dict(context)  # type: ignore[union-attr]
        raise error  # type: ignore[misc]
    if fault.action == "sleep":
        time.sleep(fault.seconds)
        return "sleep"
    return fault.action


def install_from_env(environ: Optional[Mapping[str, str]] = None) -> List[ChaosFault]:
    """Arm faults described by the ``REPRO_CHAOS`` environment variable.

    The format is a comma-separated list of ``point:action[:arg][:times]``
    clauses; ``arg`` is the exception name for ``raise`` (``oserror`` /
    ``experimenterror``) and the seconds for ``sleep``, and is absent for
    ``drop``/``die`` (whose third field, when present, is ``times``)::

        REPRO_CHAOS="store.put:raise:oserror:1"     one OSError from put
        REPRO_CHAOS="queue.worker:sleep:5"          every job starts 5s late
        REPRO_CHAOS="dispatch.done:drop:1"          first chunk result lost

    ``repro-flip serve`` calls this on startup so the chaos CI gate (and
    any operator rehearsing a failure) can arm faults inside the served
    process without patching code.  Malformed clauses raise a labelled
    :class:`~repro.errors.ExperimentError` — chaos must be deliberate.
    """
    import os

    source = environ if environ is not None else os.environ
    spec = (source.get("REPRO_CHAOS") or "").strip()
    if not spec:
        return []
    installed: List[ChaosFault] = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) < 2:
            raise ExperimentError(
                f"malformed REPRO_CHAOS clause {clause!r} (expected point:action[:arg][:times])"
            )
        point, action, rest = parts[0], parts[1], parts[2:]
        try:
            if action == "raise":
                name = rest[0] if rest else "oserror"
                if name not in _ENV_EXCEPTIONS:
                    raise ExperimentError(
                        f"REPRO_CHAOS raise action knows {sorted(_ENV_EXCEPTIONS)}, got {name!r}"
                    )
                times = int(rest[1]) if len(rest) > 1 else None
                fault = ChaosFault(
                    point, "raise",
                    exception=_ENV_EXCEPTIONS[name](f"chaos fault armed at {point}"),
                    times=times,
                )
            elif action == "sleep":
                if not rest:
                    raise ExperimentError("REPRO_CHAOS sleep action needs seconds")
                fault = ChaosFault(
                    point, "sleep",
                    seconds=float(rest[0]),
                    times=int(rest[1]) if len(rest) > 1 else None,
                )
            else:
                fault = ChaosFault(point, action, times=int(rest[0]) if rest else None)
        except ValueError as error:
            raise ExperimentError(
                f"malformed REPRO_CHAOS clause {clause!r}: {error}"
            ) from error
        installed.append(install(fault))
    return installed
