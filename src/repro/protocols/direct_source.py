"""The idealised "everyone hears the source directly" reference (Section 1.4).

The paper's lower-bound argument observes that even if every agent received
an *independent noisy copy of the source's bit in every round* — a far
stronger communication model than the Flip model — each agent would still
need ``Theta(log n / eps^2)`` copies before a majority vote is correct with
probability ``1 - 1/n^c``.  The paper's protocol matches this bound up to
constants, which is why it is called "as fast as if each agent were informed
directly by the source".

:class:`DirectSourceReference` simulates that idealised process: it is *not*
a Flip-model protocol (the source magically reaches all agents at once); it
exists purely as the optimal-reference series in experiments E1/E2/E11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.opinions import validate_opinion
from ..errors import ParameterError
from ..substrate.engine import SimulationEngine
from .base import BaselineProtocol, ProtocolResult

__all__ = ["DirectSourceReference"]


@dataclass
class DirectSourceReference(BaselineProtocol):
    """Every agent receives one independent noisy source sample per round.

    Parameters
    ----------
    rounds:
        Number of sampling rounds; ``None`` uses ``ceil(4 ln n / eps^2)``.
    """

    rounds: Optional[int] = None
    name: str = "direct-source-reference"

    @staticmethod
    def default_rounds(n: int, epsilon: float) -> int:
        """Default sampling budget ``ceil(4 ln n / eps^2)``.

        Single source of truth shared with the batched step rule in
        :mod:`repro.exec.batching`, so the two paths can never drift apart.
        """
        return int(math.ceil(4.0 * math.log(n) / (epsilon**2)))

    def run(self, engine: SimulationEngine, correct_opinion: int = 1) -> ProtocolResult:
        correct_opinion = validate_opinion(correct_opinion)
        population = engine.population
        n = engine.n
        total_rounds = self.rounds
        if total_rounds is None:
            total_rounds = self.default_rounds(n, engine.epsilon)
        if total_rounds < 1:
            raise ParameterError("rounds must be at least 1")

        rng = engine.random.stream("direct-source")
        ones = np.zeros(n, dtype=np.int64)
        start_round = engine.now
        first_all_correct: Optional[int] = None

        source_bits = np.full(n, correct_opinion, dtype=np.int8)
        for round_index in range(1, total_rounds + 1):
            noisy = engine.channel.transmit(source_bits, rng)
            ones += noisy.astype(np.int64)
            engine.clock.tick()
            engine.metrics.observe_round(messages_sent=n, messages_delivered=n, messages_dropped=0)
            if first_all_correct is None:
                majority_now = self._majority(ones, round_index, rng)
                if bool(np.all(majority_now == correct_opinion)):
                    first_all_correct = round_index

        final = self._majority(ones, total_rounds, rng)
        population.set_opinions(np.arange(n), final)
        population.activate(np.arange(n), phase=0, round_index=engine.now)

        return self._result(
            engine,
            correct_opinion,
            converged=True,
            rounds=engine.now - start_round,
            messages_sent=n * total_rounds,
            first_all_correct_round=first_all_correct,
        )

    @staticmethod
    def _majority(ones: np.ndarray, rounds_so_far: int, rng: np.random.Generator) -> np.ndarray:
        """Per-agent majority of the samples collected so far (random tie-break)."""
        doubled = 2 * ones
        verdict = np.where(doubled > rounds_so_far, 1, 0).astype(np.int8)
        ties = doubled == rounds_so_far
        if np.any(ties):
            verdict[ties] = rng.integers(0, 2, size=int(np.count_nonzero(ties))).astype(np.int8)
        return verdict
