"""The "stay silent and wait" strategy discussed in Sections 1.4 and 1.6.

In this strategy nobody relays anything: only the source speaks, one message
per round, and every other agent simply accumulates the (noisy) bits it
happens to receive directly from the source and decides by majority once it
has collected ``threshold`` of them.

Two facts from the paper are reproduced with this baseline:

* Section 1.6 (birthday paradox): the first agent to hear *two* messages
  needs ``Omega(sqrt(n))`` rounds, because the source's pushes must collide
  on a recipient.
* Section 1.4: completing the broadcast this way — every agent individually
  collecting ``Theta(log n / eps^2)`` source samples — takes
  ``Theta(n log n / eps^2)`` rounds, a factor ``n`` slower than the paper's
  protocol even though it uses the same number of messages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.opinions import validate_opinion
from ..errors import ParameterError, SimulationError
from ..substrate.engine import SimulationEngine
from .base import BaselineProtocol, ProtocolResult

__all__ = ["SilentWaitBroadcast", "default_decision_threshold"]


def default_decision_threshold(n: int, epsilon: float, constant: float = 4.0) -> int:
    """Samples an agent needs for a w.h.p.-correct majority: ``Theta(log n / eps^2)``."""
    if n < 2:
        raise ParameterError("n must be at least 2")
    threshold = int(math.ceil(constant * math.log(n) / (epsilon * epsilon)))
    # An odd threshold avoids ties in the final majority vote.
    return threshold | 1


@dataclass
class SilentWaitBroadcast(BaselineProtocol):
    """Broadcast in which only the source ever speaks.

    Parameters
    ----------
    threshold:
        Number of source samples an agent waits for before deciding by
        majority.  ``None`` uses :func:`default_decision_threshold`.
    max_rounds:
        Round budget; ``None`` uses ``8 * n * threshold`` which is enough for
        every agent to collect its quota w.h.p. (the coupon-collector style
        slowdown is the point of the baseline).
    """

    threshold: Optional[int] = None
    max_rounds: Optional[int] = None
    name: str = "silent-wait"

    def run(self, engine: SimulationEngine, correct_opinion: int = 1) -> ProtocolResult:
        correct_opinion = validate_opinion(correct_opinion)
        population = engine.population
        if population.source is None:
            raise SimulationError("silent-wait requires a source agent")
        population.set_source_opinion(correct_opinion)
        source = population.source
        n = engine.n

        threshold = self.threshold
        if threshold is None:
            threshold = default_decision_threshold(n, engine.epsilon)
        if threshold < 1:
            raise ParameterError("threshold must be at least 1")
        budget = self.max_rounds if self.max_rounds is not None else 8 * n * threshold

        received = np.zeros(n, dtype=np.int64)
        ones = np.zeros(n, dtype=np.int64)
        decided = np.zeros(n, dtype=bool)
        decided[source] = True

        messages_before = engine.metrics.messages_sent
        first_double_round: Optional[int] = None
        senders = np.asarray([source], dtype=np.int64)
        sender_bits = np.asarray([correct_opinion], dtype=np.int8)

        rounds_run = 0
        for round_index in range(budget):
            report = engine.gossip_round(senders, sender_bits, correct_opinion=correct_opinion)
            rounds_run += 1
            if report.recipients.size:
                received[report.recipients] += 1
                ones[report.recipients] += report.bits.astype(np.int64)
                if first_double_round is None and int(received[report.recipients].max()) >= 2:
                    first_double_round = round_index + 1
                ready = report.recipients[received[report.recipients] >= threshold]
                if ready.size:
                    verdict = (2 * ones[ready] > received[ready]).astype(np.int8)
                    population.set_opinions(ready, verdict)
                    population.activate(ready, phase=0, round_index=engine.now)
                    decided[ready] = True
            if bool(decided.all()):
                break

        return self._result(
            engine,
            correct_opinion,
            converged=bool(decided.all()),
            rounds=rounds_run,
            messages_sent=engine.metrics.messages_sent - messages_before,
            threshold=threshold,
            decided_fraction=float(np.count_nonzero(decided)) / n,
            first_round_with_two_messages=first_double_round,
        )
