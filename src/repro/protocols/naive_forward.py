"""The "forward immediately" strategy discussed in Section 1.6.

In this naive broadcast strategy every agent, as soon as it hears its first
message, adopts the received bit as its opinion and starts repeating it every
round.  There is no breathing period and no majority correction.

The paper explains why this fails: the dissemination pattern forms a tree of
depth ``Theta(log n)``, and a bit relayed over ``c`` noisy hops is correct
with probability only ``1/2 + (2 eps)^c``, so the typical agent's opinion is
barely better than a coin flip.  Experiment E7 measures exactly this: the
final correct fraction of the population hovers near ``1/2`` while the
paper's protocol reaches 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.opinions import validate_opinion
from ..errors import SimulationError
from ..substrate.engine import SimulationEngine
from ..substrate.population import NO_OPINION
from .base import BaselineProtocol, ProtocolResult

__all__ = ["ImmediateForwardingBroadcast"]


@dataclass
class ImmediateForwardingBroadcast(BaselineProtocol):
    """Broadcast by immediate, unfiltered forwarding of the first heard bit.

    Parameters
    ----------
    max_rounds:
        Round budget.  ``None`` uses ``ceil(4 log2 n)`` rounds, which is
        ample for the rumor itself to reach everyone — the point of the
        baseline is that *reach* is easy but *reliability* is lost.
    keep_first_opinion:
        When ``True`` (the default, matching Section 1.6's description) an
        agent adopts only the first bit it ever hears and repeats it forever.
        When ``False`` the agent re-adopts every bit it hears, which turns
        the strategy into the noisy voter dynamic of
        :mod:`repro.protocols.noisy_voter`.
    """

    max_rounds: Optional[int] = None
    keep_first_opinion: bool = True
    name: str = "immediate-forwarding"

    @staticmethod
    def default_budget(n: int) -> int:
        """Default round budget ``ceil(4 log2 n) + 8`` (ample for full reach).

        Single source of truth shared with the batched step rule in
        :mod:`repro.exec.batching`, so the two paths can never drift apart.
        """
        return int(math.ceil(4 * math.log2(n))) + 8

    def run(self, engine: SimulationEngine, correct_opinion: int = 1) -> ProtocolResult:
        correct_opinion = validate_opinion(correct_opinion)
        population = engine.population
        if population.source is None:
            raise SimulationError("immediate forwarding requires a source agent")
        population.set_source_opinion(correct_opinion)

        budget = self.max_rounds
        if budget is None:
            budget = self.default_budget(engine.n)

        messages_before = engine.metrics.messages_sent
        start_round = engine.now
        all_active_round: Optional[int] = None

        for round_index in range(budget):
            senders = np.flatnonzero(population.opinions != NO_OPINION)
            bits = population.opinions[senders].astype(np.int8)
            report = engine.gossip_round(senders, bits, correct_opinion=correct_opinion)
            if report.recipients.size:
                if self.keep_first_opinion:
                    fresh_mask = ~population.activated[report.recipients]
                    targets = report.recipients[fresh_mask]
                    values = report.bits[fresh_mask]
                else:
                    targets = report.recipients
                    values = report.bits
                population.set_opinions(targets, values)
                population.activate(report.recipients, phase=0, round_index=engine.now)
            if all_active_round is None and population.num_activated() == population.size:
                all_active_round = round_index + 1

        return self._result(
            engine,
            correct_opinion,
            converged=population.num_activated() == population.size,
            rounds=engine.now - start_round,
            messages_sent=engine.metrics.messages_sent - messages_before,
            all_informed_round=all_active_round,
        )
