"""Baseline and comparator protocols.

These are the algorithms the paper's protocol is compared against in the
experiments (notably E7 and E11, see README.md): the naive strategies whose failure modes
Section 1.6 discusses, the idealised direct-from-source reference of
Section 1.4, and the related-work dynamics (noisy voter model, two-choices
majority, three-state approximate majority).
"""

from .base import BaselineProtocol, ProtocolResult, consensus_round
from .direct_source import DirectSourceReference
from .fault_tolerant import (
    ConsensusOutcome,
    PhasedApproximateConsensus,
    consensus_phase_budget,
    declared_fault_tolerance,
)
from .naive_forward import ImmediateForwardingBroadcast
from .noisy_voter import NoisyVoterBroadcast
from .registry import available_protocols, make_protocol, register_protocol
from .silent_wait import SilentWaitBroadcast, default_decision_threshold
from .three_state import ThreeStateApproximateMajority
from .two_choices import TwoChoicesMajority

__all__ = [
    "BaselineProtocol",
    "ProtocolResult",
    "consensus_round",
    "DirectSourceReference",
    "ImmediateForwardingBroadcast",
    "NoisyVoterBroadcast",
    "SilentWaitBroadcast",
    "default_decision_threshold",
    "ThreeStateApproximateMajority",
    "TwoChoicesMajority",
    "available_protocols",
    "make_protocol",
    "register_protocol",
    "ConsensusOutcome",
    "PhasedApproximateConsensus",
    "consensus_phase_budget",
    "declared_fault_tolerance",
]
