"""The three-state approximate-majority protocol of Angluin et al. (baseline).

Angluin, Aspnes and Eisenstat ("A simple population protocol for fast robust
approximate majority", Distributed Computing 2008) solve majority-consensus
with a third *blank* state: when an agent holding an opinion receives the
opposite opinion it becomes blank, and a blank agent adopts whatever opinion
it receives.  The paper cites this protocol and explains why it cannot be
used in the Flip model: it inherently needs three message symbols while the
Flip model allows only one bit, and it is not robust to channel noise.

The implementation here squeezes the dynamics into the push-gossip substrate
(messages still carry a single bit — only opinionated agents speak, and the
"blank" state exists only in the receivers' memory), which preserves the
protocol's character while keeping it inside the simulator.  Experiments use
it to demonstrate the noise fragility the paper asserts: with
``epsilon = 1/2`` (no noise) it converges quickly to the initial majority,
while for small ``epsilon`` it frequently converges to the wrong opinion or
fails to converge at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.opinions import validate_opinion
from ..errors import SimulationError
from ..substrate.engine import SimulationEngine
from ..substrate.population import NO_OPINION
from .base import BaselineProtocol, ProtocolResult

__all__ = ["ThreeStateApproximateMajority"]


@dataclass
class ThreeStateApproximateMajority(BaselineProtocol):
    """Blank-state approximate majority dynamics under push gossip.

    Parameters
    ----------
    max_rounds:
        Round budget.
    check_every:
        Consensus check frequency in rounds.
    """

    max_rounds: int = 1000
    check_every: int = 8
    name: str = "three-state-majority"

    def run(self, engine: SimulationEngine, correct_opinion: int = 1) -> ProtocolResult:
        correct_opinion = validate_opinion(correct_opinion)
        population = engine.population
        if population.num_opinionated() == 0:
            raise SimulationError("three-state majority needs an initially opinionated population")

        messages_before = engine.metrics.messages_sent
        converged = False
        rounds_run = 0

        for round_index in range(self.max_rounds):
            senders = np.flatnonzero(population.opinions != NO_OPINION)
            if senders.size == 0:
                break
            bits = population.opinions[senders].astype(np.int8)
            report = engine.gossip_round(senders, bits, correct_opinion=correct_opinion)
            rounds_run += 1
            if report.recipients.size:
                current = population.opinions[report.recipients]
                received = report.bits
                # Blank receivers adopt the received opinion; opinionated
                # receivers hit by the opposite opinion become blank.
                new_values = current.copy()
                blank = current == NO_OPINION
                new_values[blank] = received[blank]
                conflict = (~blank) & (current != received)
                new_values[conflict] = NO_OPINION
                population.opinions[report.recipients] = new_values.astype(np.int8)
                population.activate(report.recipients, phase=0, round_index=engine.now)
            if (round_index + 1) % self.check_every == 0 and population.consensus_opinion() is not None:
                converged = True
                break

        return self._result(
            engine,
            correct_opinion,
            converged=converged,
            rounds=rounds_run,
            messages_sent=engine.metrics.messages_sent - messages_before,
            consensus_opinion=population.consensus_opinion(),
            blank_fraction=float(np.count_nonzero(population.opinions == NO_OPINION)) / engine.n,
        )
