"""The two-choices majority dynamics of Doerr et al. (related-work baseline).

Doerr, Goldberg, Minder, Sauerwald and Scheideler ("Stabilizing consensus
with the power of two choices", SPAA 2011) analyse the dynamics in which each
agent repeatedly samples the opinions of two uniformly random agents and
adopts the majority among the two samples and its own opinion.  Without
noise this converges to the initial majority in ``O(log n)`` rounds whenever
the initial bias is ``Omega(sqrt(log n / n))`` — it is the canonical
"repeated sampling + majority" building block the paper's Stage II adapts.

The baseline here plays two roles in the experiments:

* **noiseless mode** reproduces the classical behaviour and serves as a
  best-case reference for the majority-consensus experiments (E8);
* **noisy mode** applies the Flip model's per-sample bit flips, showing that
  the plain dynamics stall at a noise-limited bias instead of reaching full
  consensus — motivating the paper's longer final phase.

Note that the dynamics are *pull*-based and use two messages per agent per
round, so they live outside the strict Flip model; they are implemented
directly on the opinion vector rather than through the push network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.opinions import validate_opinion
from ..errors import SimulationError
from ..substrate.engine import SimulationEngine
from ..substrate.noise import PerfectChannel
from ..substrate.population import NO_OPINION
from .base import BaselineProtocol, ProtocolResult

__all__ = ["TwoChoicesMajority"]


@dataclass
class TwoChoicesMajority(BaselineProtocol):
    """Repeated "sample two, majority of three" dynamics.

    Parameters
    ----------
    max_rounds:
        Round budget.
    noisy:
        Apply the engine's channel to every sampled opinion (Flip-model
        noise); when ``False`` samples are read exactly (the classical
        setting of Doerr et al.).
    check_every:
        Consensus check frequency in rounds.
    """

    max_rounds: int = 400
    noisy: bool = True
    check_every: int = 4
    name: str = "two-choices-majority"

    def run(self, engine: SimulationEngine, correct_opinion: int = 1) -> ProtocolResult:
        correct_opinion = validate_opinion(correct_opinion)
        population = engine.population
        if population.num_opinionated() == 0:
            raise SimulationError("two-choices needs an initially opinionated population")

        n = engine.n
        rng = engine.random.stream("two-choices")
        channel = engine.channel if self.noisy else PerfectChannel()

        messages = 0
        converged = False
        rounds_run = 0

        for round_index in range(self.max_rounds):
            opinions = population.opinions.copy()
            holders = np.flatnonzero(opinions != NO_OPINION)
            if holders.size == 0:
                break
            # Each agent samples two uniformly random *opinionated* agents.
            first = holders[rng.integers(0, holders.size, size=n)]
            second = holders[rng.integers(0, holders.size, size=n)]
            sample_one = channel.transmit(opinions[first].astype(np.int8), rng)
            sample_two = channel.transmit(opinions[second].astype(np.int8), rng)
            messages += 2 * n

            own = opinions.copy()
            # Agents without an opinion adopt the majority of their two samples
            # (ties broken by the first sample), mirroring how the dynamics are
            # bootstrapped when only a subset starts opinionated.
            blank = own == NO_OPINION
            own[blank] = sample_one[blank]
            votes = own.astype(np.int32) + sample_one.astype(np.int32) + sample_two.astype(np.int32)
            new_opinions = (votes >= 2).astype(np.int8)
            population.set_opinions(np.arange(n), new_opinions)
            population.activate(np.arange(n), phase=0, round_index=engine.now)

            engine.clock.tick()
            engine.metrics.observe_round(messages_sent=2 * n, messages_delivered=2 * n, messages_dropped=0)
            rounds_run += 1
            if (round_index + 1) % self.check_every == 0 and population.consensus_opinion() is not None:
                converged = True
                break

        return self._result(
            engine,
            correct_opinion,
            converged=converged,
            rounds=rounds_run,
            messages_sent=messages,
            consensus_opinion=population.consensus_opinion(),
        )
