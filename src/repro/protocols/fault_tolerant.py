"""A fault-tolerant approximate-consensus comparator (``AlgorithmTwo``-style).

The paper's protocol tolerates *channel noise* but has no notion of faulty
*agents*.  To give experiment E12 a meaningful yardstick, this module ports
the classic phased approximate-consensus algorithm for ``f`` faulty servers
(the ``AlgorithmTwo`` family referenced in SNIPPETS.md) to the repository's
synchronous simulation conventions:

* every server starts with a value drawn uniformly from ``[0, K]``
  (``K = initial_range``);
* the algorithm runs a fixed budget of ``p_end`` phases with
  ``K * (f / (n - f))^{p_end} <= eps``, i.e.
  ``p_end = ceil(log(eps / K) / log(f / (n - f)))`` — exactly the snippet's
  termination bound;
* in each phase every correct, non-crashed server broadcasts its value and,
  if it received values from at least ``n - f`` servers, replaces its value
  by the average of what it received; otherwise it stalls for the phase;
* Byzantine servers send an independent uniform fake value from the fault
  stream to *every* receiver (the classic equivocation adversary); crashed
  servers send nothing;
* success means the spread (max - min) of the correct, surviving servers'
  values is at most ``eps`` after the phase budget.

The serial implementation here is the differential reference for the batched
``(R, n)`` rule in :mod:`repro.exec.fault_batching`: phase budgets agree
exactly, success rates statistically (pinned by
``tests/unit/exec/test_fault_batching.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ParameterError
from ..substrate.faults import (
    ByzantineSenders,
    CrashStop,
    FaultInjector,
    FaultModel,
    NoFaults,
    build_injector,
)

__all__ = [
    "declared_fault_tolerance",
    "consensus_phase_budget",
    "ConsensusOutcome",
    "PhasedApproximateConsensus",
]


def declared_fault_tolerance(model: Optional[FaultModel], n: int) -> int:
    """The ``f`` the algorithm is configured to tolerate under ``model``.

    For crash-stop and Byzantine models this is the size of the fault-prone
    set (``floor(fraction * eligible)``); for :class:`NoFaults` (or fault
    models without an agent-fault notion, like burst noise) it is zero.
    """
    if isinstance(model, (CrashStop, ByzantineSenders)):
        eligible = n - len(set(int(i) for i in model.immune))
        return int(math.floor(model.fraction * eligible))
    return 0


def consensus_phase_budget(
    n: int,
    num_faulty: int,
    initial_range: float = 1.0,
    agreement_eps: float = 0.05,
    max_phases: int = 64,
) -> int:
    """The snippet's ``p_end``: phases needed to contract ``K`` down to ``eps``.

    ``ceil(log(eps / K) / log(f / (n - f)))``, clamped to ``[1, max_phases]``;
    ``f = 0`` needs a single averaging phase and ``2 f >= n`` (no correct
    majority) gets the cap, since the bound is vacuous there.
    """
    if n < 2:
        raise ParameterError(f"consensus needs n >= 2, got {n}")
    if not 0.0 < agreement_eps < initial_range:
        raise ParameterError(
            f"agreement_eps must be in (0, initial_range), got {agreement_eps}"
        )
    if num_faulty <= 0:
        return 1
    if 2 * num_faulty >= n:
        return max_phases
    ratio = num_faulty / (n - num_faulty)
    phases = math.ceil(math.log(agreement_eps / initial_range) / math.log(ratio))
    return max(1, min(max_phases, phases))


@dataclass(frozen=True)
class ConsensusOutcome:
    """Outcome of one phased approximate-consensus run.

    ``success`` is the snippet's agreement criterion (spread of correct
    survivors at most ``agreement_eps``); ``agreement_fraction`` is the
    fraction of correct survivors within ``agreement_eps`` of their mean —
    the graded analogue reported by E12's tables.
    """

    success: bool
    spread: float
    phases: int
    num_faulty: int
    agreement_fraction: float
    stalled_phases: int


class PhasedApproximateConsensus:
    """Serial synchronous port of the ``AlgorithmTwo`` comparator.

    Construct once (the instance is immutable configuration) and call
    :meth:`run` per trial with fresh generators; nothing is shared between
    runs, so the class is trivially picklable for the process-pool runner.
    """

    name = "phased-approximate-consensus"

    def __init__(
        self,
        initial_range: float = 1.0,
        agreement_eps: float = 0.05,
        max_phases: int = 64,
    ) -> None:
        if initial_range <= 0:
            raise ParameterError(f"initial_range must be positive, got {initial_range}")
        self.initial_range = float(initial_range)
        self.agreement_eps = float(agreement_eps)
        self.max_phases = int(max_phases)
        # Validate eagerly so a bad configuration fails at construction.
        consensus_phase_budget(2, 0, self.initial_range, self.agreement_eps, self.max_phases)

    def phase_budget(self, n: int, model: Optional[FaultModel]) -> int:
        """Phases the algorithm will run for ``n`` servers under ``model``."""
        return consensus_phase_budget(
            n,
            declared_fault_tolerance(model, n),
            self.initial_range,
            self.agreement_eps,
            self.max_phases,
        )

    def run(
        self,
        n: int,
        model: Optional[FaultModel],
        rng: np.random.Generator,
        fault_rng: np.random.Generator,
    ) -> ConsensusOutcome:
        """Run one instance: ``n`` servers, faults per ``model``.

        ``rng`` supplies the honest randomness (initial values); every fault
        decision and Byzantine fake value comes from ``fault_rng`` — the same
        dedicated-stream discipline as the gossip substrate.
        """
        if model is None:
            model = NoFaults()
        num_faulty = declared_fault_tolerance(model, n)
        phases = self.phase_budget(n, model)
        injector: Optional[FaultInjector] = build_injector(model, n, fault_rng)
        values = rng.random(n) * self.initial_range

        byzantine = (
            injector.byzantine[0].copy()
            if injector is not None
            else np.zeros(n, dtype=bool)
        )
        num_byzantine = int(byzantine.sum())
        stalled = 0
        for _ in range(phases):
            if injector is not None:
                injector.begin_round()
            alive = ~injector.crashed[0] if injector is not None else np.ones(n, dtype=bool)
            correct_alive = alive & ~byzantine
            received = int(correct_alive.sum()) + num_byzantine
            if received < n - num_faulty or not correct_alive.any():
                stalled += 1
                continue
            honest_sum = float(values[correct_alive].sum())
            if num_byzantine:
                # One independent fake per (Byzantine sender, receiver) pair:
                # the equivocation adversary, drawn from the fault stream.
                fakes = fault_rng.random((num_byzantine, n)) * self.initial_range
                fake_sums = fakes.sum(axis=0)
            else:
                fake_sums = np.zeros(n)
            averaged = (honest_sum + fake_sums) / received
            values = np.where(correct_alive, averaged, values)

        final_alive = ~injector.crashed[0] if injector is not None else np.ones(n, dtype=bool)
        survivors = values[final_alive & ~byzantine]
        if survivors.size == 0:
            return ConsensusOutcome(False, float("inf"), phases, num_faulty, 0.0, stalled)
        spread = float(survivors.max() - survivors.min())
        near_mean = np.abs(survivors - survivors.mean()) <= self.agreement_eps
        return ConsensusOutcome(
            success=spread <= self.agreement_eps,
            spread=spread,
            phases=phases,
            num_faulty=num_faulty,
            agreement_fraction=float(near_mean.mean()),
            stalled_phases=stalled,
        )
