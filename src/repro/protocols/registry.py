"""Name-based registry of baseline protocols.

The experiment drivers refer to baselines by their string names so that
sweeps can be configured declaratively (and so the CLI can expose
``--protocol``).  The registry maps each name to a zero-argument factory
returning a fresh protocol instance with default settings; callers that need
non-default settings construct the protocol class directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .base import BaselineProtocol
from .direct_source import DirectSourceReference
from .naive_forward import ImmediateForwardingBroadcast
from .noisy_voter import NoisyVoterBroadcast
from .silent_wait import SilentWaitBroadcast
from .three_state import ThreeStateApproximateMajority
from .two_choices import TwoChoicesMajority

__all__ = ["available_protocols", "make_protocol", "register_protocol"]

_FACTORIES: Dict[str, Callable[[], BaselineProtocol]] = {
    ImmediateForwardingBroadcast.name: ImmediateForwardingBroadcast,
    SilentWaitBroadcast.name: SilentWaitBroadcast,
    DirectSourceReference.name: DirectSourceReference,
    NoisyVoterBroadcast.name: NoisyVoterBroadcast,
    TwoChoicesMajority.name: TwoChoicesMajority,
    ThreeStateApproximateMajority.name: ThreeStateApproximateMajority,
}


def available_protocols() -> List[str]:
    """Sorted list of registered baseline protocol names."""
    return sorted(_FACTORIES)


def make_protocol(name: str) -> BaselineProtocol:
    """Instantiate the registered baseline protocol called ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        ) from None
    return factory()


def register_protocol(name: str, factory: Callable[[], BaselineProtocol]) -> None:
    """Register an additional protocol factory (e.g. from user code or tests)."""
    if name in _FACTORIES:
        raise ConfigurationError(f"protocol {name!r} is already registered")
    _FACTORIES[name] = factory
