"""A noisy voter model with a zealot source (Section 1.2's physics baseline).

The paper contrasts its approach with the physics literature on voter models
and consensus around a zealot [49, 50]: those dynamics are simple — an agent
adopts whatever opinion it just heard — but their convergence time around a
single zealot is polynomial in ``n``, and under channel noise the population
never locks onto the correct opinion at all (the adopt-the-last-bit map has
its fixed point at bias 0 because every received bit is only ``2 eps`` -
correlated with the sender's opinion).

:class:`NoisyVoterBroadcast` implements the push-flavoured version inside
the Flip model: every opinionated agent pushes its current opinion each
round, the zealot source never changes its opinion, and a receiver adopts
whatever (noisy) bit it accepted.  Experiment E7 uses it to show the
long-convergence / no-convergence behaviour the paper predicts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.opinions import validate_opinion
from ..errors import SimulationError
from ..substrate.engine import SimulationEngine
from ..substrate.population import NO_OPINION
from .base import BaselineProtocol, ProtocolResult

__all__ = ["NoisyVoterBroadcast"]


@dataclass
class NoisyVoterBroadcast(BaselineProtocol):
    """Push voter dynamics with a zealot source under channel noise.

    Parameters
    ----------
    max_rounds:
        Round budget; the dynamics rarely reach full consensus under noise,
        so a finite budget is mandatory.
    check_every:
        How often (in rounds) to test for full consensus.
    """

    max_rounds: int = 2000
    check_every: int = 16
    name: str = "noisy-voter"

    def run(self, engine: SimulationEngine, correct_opinion: int = 1) -> ProtocolResult:
        correct_opinion = validate_opinion(correct_opinion)
        population = engine.population
        if population.source is None:
            raise SimulationError("the voter baseline requires a zealot source agent")
        population.set_source_opinion(correct_opinion)
        source = population.source

        messages_before = engine.metrics.messages_sent
        converged = False
        rounds_run = 0

        for round_index in range(self.max_rounds):
            senders = np.flatnonzero(population.opinions != NO_OPINION)
            bits = population.opinions[senders].astype(np.int8)
            report = engine.gossip_round(senders, bits, correct_opinion=correct_opinion)
            rounds_run += 1
            if report.recipients.size:
                # Every receiver adopts the bit it accepted, except the zealot.
                keep = report.recipients != source
                population.set_opinions(report.recipients[keep], report.bits[keep])
                population.activate(report.recipients, phase=0, round_index=engine.now)
            if (round_index + 1) % self.check_every == 0 and population.all_correct(correct_opinion):
                converged = True
                break

        return self._result(
            engine,
            correct_opinion,
            converged=converged,
            rounds=rounds_run,
            messages_sent=engine.metrics.messages_sent - messages_before,
        )
