"""Common interface for baseline protocols.

Every comparator implemented in :mod:`repro.protocols` — the naive
strategies of Section 1.6, the physics-style noisy voter model, the
two-choices and three-state majority dynamics — exposes the same ``run``
interface and produces the same :class:`ProtocolResult` so the experiment
drivers can sweep over protocols uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..core.opinions import validate_opinion
from ..substrate.engine import SimulationEngine

__all__ = ["ProtocolResult", "BaselineProtocol", "consensus_round"]


@dataclass(frozen=True)
class ProtocolResult:
    """Uniform result record for baseline protocols.

    Attributes
    ----------
    name:
        Protocol identifier.
    success:
        True when every agent ended holding the correct opinion.
    converged:
        True when the protocol stopped because it reached (some) consensus or
        met its own stopping rule, as opposed to exhausting the round budget.
    rounds / messages_sent:
        Complexity actually incurred.
    final_correct_fraction / final_bias:
        State of the population at the end.
    extra:
        Protocol-specific measurements (e.g. the round at which the first
        agent heard two messages for the silent-wait strategy).
    """

    name: str
    success: bool
    converged: bool
    n: int
    epsilon: float
    rounds: int
    messages_sent: int
    final_correct_fraction: float
    final_bias: float
    extra: Dict[str, Any] = field(default_factory=dict)


class BaselineProtocol(abc.ABC):
    """Abstract base class for baseline dissemination/consensus protocols."""

    #: Short, stable identifier used by the registry and result records.
    name: str = "baseline"

    @abc.abstractmethod
    def run(self, engine: SimulationEngine, correct_opinion: int = 1) -> ProtocolResult:
        """Run the protocol to completion (or budget exhaustion) on ``engine``."""

    # ------------------------------------------------------------------
    def _result(
        self,
        engine: SimulationEngine,
        correct_opinion: int,
        converged: bool,
        rounds: int,
        messages_sent: int,
        **extra: Any,
    ) -> ProtocolResult:
        """Assemble a :class:`ProtocolResult` from the engine's final state."""
        correct_opinion = validate_opinion(correct_opinion)
        population = engine.population
        return ProtocolResult(
            name=self.name,
            success=population.all_correct(correct_opinion),
            converged=converged,
            n=engine.n,
            epsilon=engine.epsilon,
            rounds=rounds,
            messages_sent=messages_sent,
            final_correct_fraction=population.correct_fraction(correct_opinion),
            final_bias=population.bias(correct_opinion),
            extra=dict(extra),
        )


def consensus_round(correct_fraction_series: np.ndarray, threshold: float = 1.0) -> Optional[int]:
    """First round index at which the correct fraction reached ``threshold``.

    Returns ``None`` when the threshold was never reached.  Used by
    experiments that compare convergence speed across protocols from their
    recorded time series.
    """
    series = np.asarray(correct_fraction_series, dtype=float)
    hits = np.flatnonzero(series >= threshold)
    if hits.size == 0:
        return None
    return int(hits[0])
