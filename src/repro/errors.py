"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause without
masking programming errors (``TypeError`` etc.) raised by misuse of Python
itself.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ParameterError",
    "SimulationError",
    "ScheduleError",
    "ProtocolError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was configured inconsistently (bad wiring, missing pieces)."""


class ParameterError(ConfigurationError):
    """A numeric parameter is outside its admissible range.

    Raised, for example, when ``epsilon`` does not satisfy the paper's
    requirement ``epsilon > n**(-1/2 + eta)`` or when a population size is
    not large enough to run the requested protocol.
    """


class ScheduleError(ConfigurationError):
    """A phase schedule is malformed (overlapping or non-contiguous phases)."""


class SimulationError(ReproError):
    """The simulation engine reached an invalid state at run time."""


class ProtocolError(SimulationError):
    """A protocol implementation violated the Flip-model contract.

    Typical causes: sending more than one message per agent per round, or
    sending a message with a value outside ``{0, 1}``.
    """


class ExperimentError(ReproError):
    """An experiment driver was given an unusable specification."""
