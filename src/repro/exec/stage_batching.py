"""Vectorised, *instrumented* stage kernels for the two-stage protocol.

:mod:`repro.exec.batching` batches whole protocol runs — Theorem 2.17's
broadcast, Corollary 2.18's majority consensus, the Section 1.6 baselines —
as ``(R, n)`` array programs, but until this module existed the *stage-level*
experiments (E4's phase-0 dissemination, E5's per-phase layer growth, E6's
per-phase bias boosting, E9's clock-free variants) could only run serially:
their drivers need the per-phase observables ``X_i`` / ``Y_i`` / ``eps_i``
(Claims 2.2–2.8) and ``delta_i`` (Lemma 2.14) that the protocol-level batch
kernels deliberately do not record.

This module closes that gap.  It hosts the single implementation of the
batched Stage-I and Stage-II round loops — :func:`run_stage1_batch`
mirroring :func:`repro.core.stage1.execute_stage_one` (sender masks fixed at
phase start, :class:`~repro.core.stage1.ReceptionAccumulator` reservoir
semantics, newly-activated measurement per phase) and
:func:`run_stage2_batch` mirroring
:func:`repro.core.stage2.execute_stage_two`
(:class:`~repro.core.stage2.SampleAccumulator` counting plus the
hypergeometric simulation of
:func:`~repro.core.stage2.majority_of_random_subset`) — and returns
replicate-vector phase summaries shaped exactly like the serial
:class:`~repro.core.stage1.StageOnePhaseSummary` /
:class:`~repro.core.stage2.StageTwoPhaseSummary`.  The protocol-level
simulators in :mod:`repro.exec.batching` delegate their stage loops here, so
there is exactly one batched transcription of each stage rule in the
repository.

On top of the synchronous kernels, the module batches the Section-3
executors used by experiment E9: :func:`run_bounded_skew_batch` (Section 3.1
guard windows) and :func:`run_clock_free_batch` (Section 3.2 activation
phase followed by guarded stages), both mirroring
:mod:`repro.core.synchronizer` with per-replicate clock offsets, schedules
and guards.

Determinism contract
--------------------
Identical to :mod:`repro.exec.batching` (see that module's docstring): a
batch is fully determined by its ``(n, epsilon, num_replicates, base_seed,
parameters)`` inputs — two identical calls return bit-identical arrays — and
per-replicate dynamics are statistically equivalent to the serial executors,
with every *deterministic* observable (the phase schedule, per-phase round
counts, phase-0 sender counts, message counts of schedule-fixed phases, the
``SimulationError`` raised on unopinionated populations) bit-identical to
the serial path.  Stochastic observables come from one batch-level stream
rather than one stream tree per engine, which is what makes a single
:meth:`~repro.substrate.network.PushGossipNetwork.deliver_batch` call per
round possible in the first place; ``docs/ARCHITECTURE.md`` spells out why
that is the only part of serial/batch bit-identity that is *not* attainable.
The differential tests in ``tests/unit/exec/test_stage_batching.py`` pin
both halves phase by phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.parameters import (
    ProtocolParameters,
    StageOneParameters,
    StageTwoParameters,
)
from ..core.opinions import counts_from_bias, opposite, validate_opinion
from ..core.schedule import PhaseSchedule, build_stage1_schedule, build_stage2_schedule
from ..core.synchronizer import default_guard
from ..errors import ExperimentError, ParameterError, SimulationError
from ..substrate.network import PushGossipNetwork
from ..substrate.noise import BinarySymmetricChannel, NoiseChannel
from ..substrate.population import NO_OPINION
from ..substrate.rng import spawn_generator

__all__ = [
    "BatchState",
    "StageOnePhaseBatchSummary",
    "StageOneBatchResult",
    "StageTwoPhaseBatchSummary",
    "StageTwoBatchResult",
    "BatchWindowedResult",
    "population_bias_grid",
    "source_batch_state",
    "seeded_batch_state",
    "run_stage1_batch",
    "run_stage2_batch",
    "run_stage1_instrumented",
    "run_stage2_instrumented",
    "run_bounded_skew_batch",
    "run_clock_free_batch",
]


@dataclass
class BatchState:
    """Mutable replicate-grid state shared by every batched protocol.

    Mirrors :class:`~repro.substrate.population.Population` across ``R``
    replicates at once: an ``(R, n)`` opinion grid, an ``(R, n)`` activation
    grid, per-replicate message counters and the shared round counter.
    """

    opinions: np.ndarray
    activated: np.ndarray
    messages_sent: np.ndarray
    rounds: int = 0

    @property
    def shape(self) -> Tuple[int, int]:
        """The replicate-grid shape ``(R, n)``."""
        return self.opinions.shape


@dataclass(frozen=True)
class StageOnePhaseBatchSummary:
    """Replicate-vector counterpart of :class:`~repro.core.stage1.StageOnePhaseSummary`.

    Scalar fields (``phase``, ``rounds``) are shared by every replicate
    because the paper's schedule is deterministic; the array fields hold one
    entry per replicate, in replicate order — ``activated_total`` is the
    paper's ``X_i``, ``newly_activated`` is ``Y_i``, ``newly_correct`` is
    ``Z_i`` and ``bias_of_new`` is ``eps_i``.
    """

    phase: int
    rounds: int
    senders: np.ndarray
    activated_total: np.ndarray
    newly_activated: np.ndarray
    newly_correct: np.ndarray
    bias_of_new: np.ndarray
    messages_sent: np.ndarray


@dataclass(frozen=True)
class StageOneBatchResult:
    """Replicate-vector counterpart of :class:`~repro.core.stage1.StageOneResult`."""

    phases: Tuple[StageOnePhaseBatchSummary, ...]
    rounds: int
    messages_sent: np.ndarray
    all_activated: np.ndarray
    initially_correct: np.ndarray
    initially_correct_fraction: np.ndarray
    final_bias: np.ndarray

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R`` in the batch."""
        return int(self.messages_sent.size)

    def phase(self, index: int) -> StageOnePhaseBatchSummary:
        """Return the summary of phase ``index``."""
        for summary in self.phases:
            if summary.phase == index:
                return summary
        raise KeyError(f"no Stage-I phase {index} in this result")


@dataclass(frozen=True)
class StageTwoPhaseBatchSummary:
    """Replicate-vector counterpart of :class:`~repro.core.stage2.StageTwoPhaseSummary`.

    ``bias_before`` / ``bias_after`` are the population biases ``delta_i``
    and ``delta_{i+1}`` that the analysis of Lemma 2.14 tracks, one entry
    per replicate.
    """

    phase: int
    rounds: int
    successful_agents: np.ndarray
    bias_before: np.ndarray
    bias_after: np.ndarray
    correct_fraction_after: np.ndarray
    messages_sent: np.ndarray


@dataclass(frozen=True)
class StageTwoBatchResult:
    """Replicate-vector counterpart of :class:`~repro.core.stage2.StageTwoResult`."""

    phases: Tuple[StageTwoPhaseBatchSummary, ...]
    rounds: int
    messages_sent: np.ndarray
    final_correct_fraction: np.ndarray
    final_bias: np.ndarray
    consensus_reached: np.ndarray

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R`` in the batch."""
        return int(self.messages_sent.size)

    def phase(self, index: int) -> StageTwoPhaseBatchSummary:
        """Return the summary of phase ``index`` (1-based, as in the paper)."""
        for summary in self.phases:
            if summary.phase == index:
                return summary
        raise KeyError(f"no Stage-II phase {index} in this result")


# ----------------------------------------------------------------------
# State builders
# ----------------------------------------------------------------------


def source_batch_state(n: int, num_replicates: int, correct_opinion: int) -> BatchState:
    """Broadcast-shaped initial state: agent 0 is the opinionated source.

    Mirrors :meth:`~repro.substrate.engine.SimulationEngine.create` followed
    by :meth:`~repro.substrate.population.Population.set_source_opinion`,
    replicated ``R`` times.
    """
    correct_opinion = validate_opinion(correct_opinion)
    opinions = np.full((num_replicates, n), NO_OPINION, dtype=np.int8)
    activated = np.zeros((num_replicates, n), dtype=bool)
    opinions[:, 0] = correct_opinion  # agent 0 is the source in every replicate
    activated[:, 0] = True
    return BatchState(
        opinions=opinions,
        activated=activated,
        messages_sent=np.zeros(num_replicates, dtype=np.int64),
    )


def seeded_batch_state(
    n: int,
    num_replicates: int,
    initial_set_size: int,
    majority_bias: float,
    majority_opinion: int,
    rng: np.random.Generator,
) -> BatchState:
    """Majority-shaped initial state: a random opinionated set per replicate.

    One independent instance per replicate: the first ``initial_set_size``
    columns of a random permutation are a uniformly random subset in
    uniformly random order, so giving the first ``correct_count`` of them
    the majority opinion realises the same distribution as
    :meth:`~repro.core.majority.MajorityInstance.generate`'s shuffle.  The
    correct/wrong split is the deterministic
    :func:`~repro.core.opinions.counts_from_bias` split, exactly as in the
    serial generator.
    """
    majority_opinion = validate_opinion(majority_opinion)
    if not 1 <= initial_set_size <= n:
        raise ParameterError(f"initial set size must be in [1, n], got {initial_set_size}")
    if majority_bias < 0:
        raise ParameterError("majority bias must be non-negative")
    R = num_replicates
    members = np.argsort(rng.random((R, n)), axis=1)[:, :initial_set_size]
    correct_count, _wrong_count = counts_from_bias(initial_set_size, majority_bias)
    member_opinions = np.full((R, initial_set_size), opposite(majority_opinion), dtype=np.int8)
    member_opinions[:, :correct_count] = majority_opinion

    opinions = np.full((R, n), NO_OPINION, dtype=np.int8)
    activated = np.zeros((R, n), dtype=bool)
    replicate_rows = np.repeat(np.arange(R), initial_set_size)
    opinions[replicate_rows, members.ravel()] = member_opinions.ravel()
    activated[replicate_rows, members.ravel()] = True
    return BatchState(
        opinions=opinions, activated=activated, messages_sent=np.zeros(R, dtype=np.int64)
    )


def population_bias_grid(opinions: np.ndarray, correct_opinion: int) -> np.ndarray:
    """Per-replicate majority-bias of the opinionated agents (Section 1.3.1).

    Grid-shaped transcription of
    :meth:`~repro.substrate.population.Population.bias`: ``(correct - wrong)
    / (2 * opinionated)``, ``0.0`` for replicates where nobody holds an
    opinion yet.
    """
    correct = (opinions == correct_opinion).sum(axis=1)
    wrong = ((opinions != correct_opinion) & (opinions != NO_OPINION)).sum(axis=1)
    opinionated = correct + wrong
    return np.where(
        opinionated > 0, (correct - wrong) / np.maximum(2 * opinionated, 1), 0.0
    ).astype(float)


def _bias_of_new_grid(newly_correct: np.ndarray, newly_activated: np.ndarray) -> np.ndarray:
    """Vectorised :func:`~repro.core.opinions.bias_from_counts` over replicates."""
    totals = np.maximum(newly_activated, 1)
    return np.where(
        newly_activated > 0, (2 * newly_correct - newly_activated) / (2 * totals), 0.0
    ).astype(float)


# ----------------------------------------------------------------------
# Stage I — spreading in synchronized layers (Section 2.1)
# ----------------------------------------------------------------------


class _ReservoirScratch:
    """Hoisted per-phase scratch grids of the batched Stage-I reservoir.

    The serial :class:`~repro.core.stage1.ReceptionAccumulator` allocates its
    per-agent buffers once per Stage-I execution and ``reset()``s them per
    phase; this is the ``(R, n)`` analogue — allocated once per batch, wiped
    with ``fill`` at phase boundaries, never reallocated.  The allocation pin
    in ``tests/unit/exec/test_stage_batching.py`` counts the grid
    allocations of a multi-phase run to keep it that way.
    """

    def __init__(self, shape: Tuple[int, int]) -> None:
        self.heard_counts = np.zeros(shape, dtype=np.int64)
        self.chosen = np.full(shape, NO_OPINION, dtype=np.int8)

    def reset(self) -> None:
        self.heard_counts.fill(0)
        self.chosen.fill(NO_OPINION)


def run_stage1_batch(
    state: BatchState,
    network: PushGossipNetwork,
    channel: NoiseChannel,
    rng: np.random.Generator,
    parameters: StageOneParameters,
    correct_opinion: int,
    start_phase: int = 0,
    faults=None,
    topology=None,
) -> StageOneBatchResult:
    """Stage I on ``(R, n)`` grids, mirroring :func:`repro.core.stage1.execute_stage_one`.

    Parameters
    ----------
    state:
        Freshly initialised replicate grids whose populations already contain
        the initially opinionated agents: the source (broadcast, phase 0) or
        the seeded set ``A`` (majority consensus, ``start_phase = i_A``).
        Mutated in place, exactly as the serial executor mutates its engine.
    network, channel, rng:
        The shared batch network, noise channel and batch-level stream.
    parameters:
        Stage-I round budget (shared by every replicate).
    correct_opinion:
        The opinion ``B`` (used only for measurement, never by agents).
    start_phase:
        First phase to execute (Corollary 2.18), exactly as in the serial
        executor.
    faults, topology:
        Optional :class:`~repro.substrate.faults.FaultInjector` /
        :class:`~repro.substrate.topology.ContactTopology`.  When either is
        set the kernel switches to the positional resilient mode: delivery
        goes through the resilient network path and the reservoir draw uses
        a full ``(R, n)`` grid per round, so main-stream consumption is
        independent of the crash/churn pattern.  With both ``None`` the
        original code path runs byte for byte.

    Returns
    -------
    StageOneBatchResult
        Per-phase replicate-vector summaries plus aggregate complexities.
    """
    correct_opinion = validate_opinion(correct_opinion)
    R, n = state.shape
    opinionated_counts = (state.opinions != NO_OPINION).sum(axis=1)
    if not opinionated_counts.all():
        raise SimulationError(
            "Stage I needs at least one initially opinionated agent (source or seeded set)"
        )

    scratch = _ReservoirScratch((R, n))
    summaries: List[StageOnePhaseBatchSummary] = []
    messages_before = state.messages_sent.copy()
    start_round = state.rounds

    for phase in range(start_phase, parameters.num_phases):
        phase_length = parameters.phase_length(phase)
        # Senders are fixed at phase start: activated and opinionated agents.
        # Newly contacted agents stay silent ("breathe") until the next phase.
        send_mask = state.activated & (state.opinions != NO_OPINION)
        bits = np.where(send_mask, state.opinions, 0).astype(np.int8)
        dormant = ~state.activated
        senders_per_replicate = send_mask.sum(axis=1)

        # Per-agent reservoir sampling over the messages heard this phase,
        # exactly as ReceptionAccumulator does serially: the m-th accepted
        # message replaces the current choice with probability 1/m.
        scratch.reset()
        heard_counts, chosen = scratch.heard_counts, scratch.chosen
        resilient = faults is not None or topology is not None
        for _ in range(phase_length):
            report = network.deliver_batch(
                send_mask, bits, channel, rng, faults=faults, topology=topology
            )
            if resilient:
                # Positional reservoir draw: one fixed (R, n) grid per round
                # so consumption never depends on who was heard (the fault
                # layer's RNG-stability contract).
                replace_grid = rng.random((R, n))
            rows, cols = np.nonzero(report.accepted & dormant)
            if rows.size:
                counts = heard_counts[rows, cols] + 1
                heard_counts[rows, cols] = counts
                if resilient:
                    replace = replace_grid[rows, cols] < 1.0 / counts
                else:
                    replace = rng.random(rows.size) < 1.0 / counts
                keep_rows, keep_cols = rows[replace], cols[replace]
                chosen[keep_rows, keep_cols] = report.bits[keep_rows, keep_cols]
            state.messages_sent += report.messages_sent if resilient else senders_per_replicate
            state.rounds += 1

        newly = (heard_counts > 0) & dormant
        state.activated |= newly
        state.opinions = np.where(newly, chosen, state.opinions)

        newly_activated = newly.sum(axis=1)
        newly_correct = (newly & (chosen == correct_opinion)).sum(axis=1)
        summaries.append(
            StageOnePhaseBatchSummary(
                phase=phase,
                rounds=phase_length,
                senders=senders_per_replicate,
                activated_total=state.activated.sum(axis=1),
                newly_activated=newly_activated,
                newly_correct=newly_correct,
                bias_of_new=_bias_of_new_grid(newly_correct, newly_activated),
                messages_sent=senders_per_replicate * phase_length,
            )
        )

    initially_correct = (state.opinions == correct_opinion).sum(axis=1)
    return StageOneBatchResult(
        phases=tuple(summaries),
        rounds=state.rounds - start_round,
        messages_sent=state.messages_sent - messages_before,
        all_activated=state.activated.all(axis=1),
        initially_correct=initially_correct,
        initially_correct_fraction=initially_correct / n,
        final_bias=population_bias_grid(state.opinions, correct_opinion),
    )


# ----------------------------------------------------------------------
# Stage II — boosting by repeated noisy majorities (Section 2.2)
# ----------------------------------------------------------------------


class _SampleScratch:
    """Hoisted per-phase scratch grids of the batched Stage-II sampler.

    The ``(R, n)`` analogue of :class:`~repro.core.stage2.SampleAccumulator`:
    allocated once per batch, wiped with ``fill`` at phase boundaries (see
    :class:`_ReservoirScratch` for the allocation pin).
    """

    def __init__(self, shape: Tuple[int, int]) -> None:
        self.totals = np.zeros(shape, dtype=np.int64)
        self.ones = np.zeros(shape, dtype=np.int64)

    def reset(self) -> None:
        self.totals.fill(0)
        self.ones.fill(0)


def _majority_of_random_subset_grid(
    totals: np.ndarray,
    ones: np.ndarray,
    successful: np.ndarray,
    subset_size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Grid-shaped :func:`~repro.core.stage2.majority_of_random_subset`.

    The majority of a uniformly random ``subset_size``-subset of each agent's
    samples depends on the samples only through the counts, so it is
    simulated exactly by a hypergeometric draw (Remark 2.10's
    order-invariance).  Parameters are clamped to a legal configuration at
    unsuccessful positions; those draws are discarded by the caller.
    """
    safe_ones = np.where(successful, ones, subset_size)
    safe_zeros = np.where(successful, totals - ones, 0)
    ones_in_subset = rng.hypergeometric(safe_ones, safe_zeros, subset_size)
    doubled = 2 * ones_in_subset
    majority = np.where(doubled > subset_size, 1, 0).astype(np.int8)
    ties = doubled == subset_size
    if np.any(ties):
        tie_break = rng.integers(0, 2, size=totals.shape).astype(np.int8)
        majority = np.where(ties, tie_break, majority)
    return majority


def run_stage2_batch(
    state: BatchState,
    network: PushGossipNetwork,
    channel: NoiseChannel,
    rng: np.random.Generator,
    parameters: StageTwoParameters,
    correct_opinion: int,
    faults=None,
    topology=None,
) -> StageTwoBatchResult:
    """Stage II on ``(R, n)`` grids, mirroring :func:`repro.core.stage2.execute_stage_two`.

    The population is expected to be (mostly) opinionated already.  Agents
    without an opinion do not send but still collect samples and adopt the
    majority of a random subset if they turn out successful, exactly as the
    serial executor allows — which makes the kernel usable as a standalone
    majority-consensus dynamic (experiment E6) as well.

    ``faults``/``topology`` switch delivery to the resilient positional path
    (see :func:`run_stage1_batch`); the phase-end hypergeometric subset draw
    consumes a data-dependent number of variates by construction and is
    documented as outside the per-round RNG-stability guarantee (it is an
    order-invariant aggregate per Remark 2.10).
    """
    correct_opinion = validate_opinion(correct_opinion)
    R, n = state.shape
    scratch = _SampleScratch((R, n))
    summaries: List[StageTwoPhaseBatchSummary] = []
    messages_before = state.messages_sent.copy()
    start_round = state.rounds

    for phase in range(1, parameters.num_phases + 1):
        phase_length = parameters.phase_length(phase)
        subset_size = phase_length // 2
        bias_before = population_bias_grid(state.opinions, correct_opinion)

        # Messages sent during the phase all carry the phase-start opinion.
        snapshot = state.opinions.copy()
        send_mask = snapshot != NO_OPINION
        bits = np.where(send_mask, snapshot, 0).astype(np.int8)
        senders_per_replicate = send_mask.sum(axis=1)

        scratch.reset()
        totals, ones = scratch.totals, scratch.ones
        resilient = faults is not None or topology is not None
        for _ in range(phase_length):
            report = network.deliver_batch(
                send_mask, bits, channel, rng, faults=faults, topology=topology
            )
            totals += report.accepted
            ones += report.bits  # zero wherever nothing was accepted
            state.messages_sent += report.messages_sent if resilient else senders_per_replicate
            state.rounds += 1

        successful = totals >= subset_size
        majority = _majority_of_random_subset_grid(totals, ones, successful, subset_size, rng)
        state.opinions = np.where(successful, majority, state.opinions)
        state.activated |= successful

        correct_now = (state.opinions == correct_opinion).sum(axis=1)
        summaries.append(
            StageTwoPhaseBatchSummary(
                phase=phase,
                rounds=phase_length,
                successful_agents=successful.sum(axis=1),
                bias_before=bias_before,
                bias_after=population_bias_grid(state.opinions, correct_opinion),
                correct_fraction_after=correct_now / n,
                messages_sent=senders_per_replicate * phase_length,
            )
        )

    correct_final = (state.opinions == correct_opinion).sum(axis=1)
    return StageTwoBatchResult(
        phases=tuple(summaries),
        rounds=state.rounds - start_round,
        messages_sent=state.messages_sent - messages_before,
        final_correct_fraction=correct_final / n,
        final_bias=population_bias_grid(state.opinions, correct_opinion),
        consensus_reached=correct_final == n,
    )


# ----------------------------------------------------------------------
# Instrumented experiment entry points (E4, E5, E6)
# ----------------------------------------------------------------------


def run_stage1_instrumented(
    n: int,
    epsilon: float,
    num_replicates: int,
    base_seed: int = 0,
    correct_opinion: int = 1,
    parameters: Optional[StageOneParameters] = None,
    start_phase: int = 0,
    channel: Optional[NoiseChannel] = None,
    allow_self_messages: bool = False,
) -> StageOneBatchResult:
    """Run ``R`` independent source-seeded Stage-I executions at once.

    The batched counterpart of the E4/E5 serial trial: build a broadcast
    instance (source holds ``B``), run Stage I alone, and return the
    per-phase observables of every replicate.  ``parameters`` defaults to
    the calibrated Stage-I preset for ``(n, epsilon)``.
    """
    if num_replicates < 1:
        raise ExperimentError("num_replicates must be at least 1")
    correct_opinion = validate_opinion(correct_opinion)
    if parameters is None:
        parameters = ProtocolParameters.calibrated(n, epsilon).stage1
    if channel is None:
        channel = BinarySymmetricChannel(epsilon=epsilon)
    rng = spawn_generator(base_seed, "batch-stage1", n)
    network = PushGossipNetwork(size=n, allow_self_messages=allow_self_messages)
    state = source_batch_state(n, num_replicates, correct_opinion)
    return run_stage1_batch(
        state, network, channel, rng, parameters, correct_opinion, start_phase=start_phase
    )


def run_stage2_instrumented(
    n: int,
    epsilon: float,
    num_replicates: int,
    initial_bias: float,
    base_seed: int = 0,
    correct_opinion: int = 1,
    parameters: Optional[StageTwoParameters] = None,
    initial_set_size: Optional[int] = None,
    channel: Optional[NoiseChannel] = None,
    allow_self_messages: bool = False,
) -> StageTwoBatchResult:
    """Run ``R`` independent bias-seeded Stage-II executions at once.

    The batched counterpart of the E6 serial trial: seed a population at
    exactly the starting bias Stage I would deliver (every agent opinionated
    by default; pass ``initial_set_size`` for a partial set), run Stage II
    alone, and return the per-phase bias trajectory of every replicate.
    ``parameters`` defaults to the calibrated Stage-II preset.
    """
    if num_replicates < 1:
        raise ExperimentError("num_replicates must be at least 1")
    correct_opinion = validate_opinion(correct_opinion)
    if parameters is None:
        parameters = ProtocolParameters.calibrated(n, epsilon).stage2
    if channel is None:
        channel = BinarySymmetricChannel(epsilon=epsilon)
    size = n if initial_set_size is None else initial_set_size
    rng = spawn_generator(base_seed, "batch-stage2", n)
    network = PushGossipNetwork(size=n, allow_self_messages=allow_self_messages)
    state = seeded_batch_state(n, num_replicates, size, initial_bias, correct_opinion, rng)
    return run_stage2_batch(state, network, channel, rng, parameters, correct_opinion)


# ----------------------------------------------------------------------
# Section 3 — batched clock-free executors (experiment E9)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BatchWindowedResult:
    """Per-replicate outcomes of a batched Section-3 (local-clock) broadcast.

    Unlike the synchronous batch results, ``rounds`` is a vector: each
    replicate's schedule is dilated by its own guard and shifted by its own
    clock offsets, so replicates finish at different global rounds — exactly
    as the serial :class:`~repro.core.synchronizer.ClockFreeBroadcastResult`
    counts them.

    Attributes
    ----------
    variant:
        ``"bounded-skew"`` (Section 3.1) or ``"clock-free"`` (Section 3.2).
    n, epsilon, correct_opinion:
        The shared instance parameters.
    rounds, messages_sent:
        ``(R,)`` complexity actually incurred per replicate (activation
        phase included for the clock-free variant).
    success, final_correct_fraction:
        ``(R,)`` end-state outcome per replicate.
    guard, skew:
        ``(R,)`` the guard each replicate's schedule was dilated by and the
        realised clock skew (``offsets.max() - offsets.min()``).
    activation_rounds, activation_all_informed:
        ``(R,)`` activation-phase cost and outcome (zeros / all-true for the
        bounded-skew variant, which runs no activation phase).
    """

    variant: str
    n: int
    epsilon: float
    correct_opinion: int
    rounds: np.ndarray
    messages_sent: np.ndarray
    success: np.ndarray
    final_correct_fraction: np.ndarray
    guard: np.ndarray
    skew: np.ndarray
    activation_rounds: np.ndarray
    activation_all_informed: np.ndarray

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R`` in the batch."""
        return int(self.rounds.size)

    def measurements(self, index: int) -> dict:
        """Replicate ``index`` as a trial-measurement mapping.

        The keys form a superset of what the serial E9 trial functions
        record (``rounds``, ``messages``, ``success``, plus ``skew`` for the
        clock-free variant), so batched and serial E9 variants produce
        interchangeable result tables.
        """
        return {
            "rounds": int(self.rounds[index]),
            "messages": int(self.messages_sent[index]),
            "success": bool(self.success[index]),
            "skew": int(self.skew[index]),
            "guard": int(self.guard[index]),
            "all_informed": bool(self.activation_all_informed[index]),
        }


def _run_activation_phase_batch(
    n: int,
    num_replicates: int,
    network: PushGossipNetwork,
    channel: NoiseChannel,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Section 3.2's activation phase on ``(R, n)`` grids.

    Mirrors :func:`repro.core.synchronizer.run_activation_phase` with the
    paper's defaults (broadcast for ``2 log n`` rounds after being informed,
    reset the clock ``4 log n`` rounds after first hearing a message):
    replicates whose informed set stops broadcasting with everyone informed
    stop early, exactly like the serial loop's break; a replicate that
    stalls with dormant agents remaining raises the same
    :class:`~repro.errors.SimulationError`.

    Returns ``(offsets, rounds, messages, all_informed)`` where ``offsets``
    is the ``(R, n)`` grid of global rounds at which each agent's reset
    clock reads zero.
    """
    broadcast_duration = default_guard(n)
    reset_delay = 2 * default_guard(n)
    R = num_replicates

    informed_at = np.full((R, n), -1, dtype=np.int64)
    informed_at[:, 0] = 0  # agent 0 is the (initially informed) source
    messages = np.zeros(R, dtype=np.int64)
    rounds = np.zeros(R, dtype=np.int64)
    alive = np.ones(R, dtype=bool)
    zeros_bits = np.zeros((R, n), dtype=np.int8)

    for now in range(reset_delay):
        relative = now - informed_at
        send_mask = (informed_at >= 0) & (relative < broadcast_duration) & alive[:, None]
        has_senders = send_mask.any(axis=1)
        fully_informed = (informed_at >= 0).all(axis=1)
        finished = alive & ~has_senders & fully_informed
        alive &= ~finished
        if np.any(alive & ~has_senders):
            # Mirrors the serial executor: nobody is broadcasting yet not
            # everyone is informed — the budget logic would be wrong.
            raise SimulationError("activation phase stalled with dormant agents remaining")
        if not alive.any():
            break
        report = network.deliver_batch(send_mask, zeros_bits, channel, rng)
        fresh = report.accepted & (informed_at < 0)
        informed_at = np.where(fresh, now + 1, informed_at)
        messages += send_mask.sum(axis=1)
        rounds += alive

    all_informed = (informed_at >= 0).all(axis=1)
    # Agents that (very unlikely) were never informed behave like the latest
    # informed agent, exactly as the serial executor keeps the run total.
    latest = np.maximum(informed_at.max(axis=1), 0)
    informed_at = np.where(informed_at < 0, latest[:, None], informed_at)
    offsets = informed_at + reset_delay
    return offsets, rounds, messages, all_informed


def _phase_windows(
    schedules: List[PhaseSchedule], position: int, min_offset: np.ndarray, max_offset: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Per-replicate local bounds and global window of phase ``position``."""
    starts = np.array([schedule.phases[position].start for schedule in schedules], dtype=np.int64)
    ends = np.array([schedule.phases[position].end for schedule in schedules], dtype=np.int64)
    global_start = int((starts + min_offset).min())
    global_end = int((ends + max_offset).max())
    index = schedules[0].phases[position].index
    return starts, ends, global_start, global_end, index


def _execute_stage_one_windowed_batch(
    state: BatchState,
    network: PushGossipNetwork,
    channel: NoiseChannel,
    rng: np.random.Generator,
    schedules: List[PhaseSchedule],
    offsets: np.ndarray,
) -> None:
    """Stage I where each agent follows its own clock, on ``(R, n)`` grids.

    Mirrors :func:`repro.core.synchronizer.execute_stage_one_windowed`: an
    agent of level ``i`` speaks only while its *local* clock is inside phase
    ``j > i``'s (guard-dilated) interval, and phase-end decisions reuse the
    reservoir rule of the synchronous kernel.  Each replicate carries its own
    schedule (its guard can differ) and its own offsets; replicates whose
    window has not started or already ended simply field no senders at that
    global round, which is exactly the serial executor's idle round.
    """
    R, n = state.shape
    min_offset = offsets.min(axis=1)
    max_offset = offsets.max(axis=1)

    first_phase = schedules[0].phases[0].index
    levels = np.full((R, n), np.iinfo(np.int32).max, dtype=np.int64)
    initially_opinionated = state.activated & (state.opinions != NO_OPINION)
    levels = np.where(initially_opinionated, first_phase - 1, levels)

    scratch = _ReservoirScratch((R, n))
    for position in range(len(schedules[0].phases)):
        starts, ends, global_start, global_end, phase_index = _phase_windows(
            schedules, position, min_offset, max_offset
        )
        scratch.reset()
        heard_counts, chosen = scratch.heard_counts, scratch.chosen
        dormant = ~state.activated
        # Opinions and levels only change at phase boundaries, so sender
        # eligibility and message bits are fixed for the whole phase.
        eligible = (levels < phase_index) & (state.opinions != NO_OPINION)
        bits_full = np.where(eligible, state.opinions, 0).astype(np.int8)
        for now in range(global_start, global_end):
            local = now - offsets
            in_window = (local >= starts[:, None]) & (local < ends[:, None])
            send_mask = in_window & eligible
            if not send_mask.any():
                continue  # the serial executor idles; no randomness is consumed
            report = network.deliver_batch(send_mask, bits_full, channel, rng)
            rows, cols = np.nonzero(report.accepted & dormant)
            if rows.size:
                counts = heard_counts[rows, cols] + 1
                heard_counts[rows, cols] = counts
                replace = rng.random(rows.size) < 1.0 / counts
                keep_rows, keep_cols = rows[replace], cols[replace]
                chosen[keep_rows, keep_cols] = report.bits[keep_rows, keep_cols]
            state.messages_sent += send_mask.sum(axis=1)

        newly = (heard_counts > 0) & dormant
        state.activated |= newly
        state.opinions = np.where(newly, chosen, state.opinions)
        levels = np.where(newly, phase_index, levels)


def _execute_stage_two_windowed_batch(
    state: BatchState,
    network: PushGossipNetwork,
    channel: NoiseChannel,
    rng: np.random.Generator,
    schedules: List[PhaseSchedule],
    offsets: np.ndarray,
) -> None:
    """Stage II where each agent follows its own clock, on ``(R, n)`` grids.

    Mirrors :func:`repro.core.synchronizer.execute_stage_two_windowed`:
    messages carry the phase-start opinion snapshot, successful agents (at
    least ``m_i / 2`` samples) adopt the majority of a random
    ``m_i / 2``-subset at their phase end.  Opinions only change at phase
    boundaries, so snapshotting at the global window start is identical to
    each replicate snapshotting at its own window start.
    """
    R, n = state.shape
    min_offset = offsets.min(axis=1)
    max_offset = offsets.max(axis=1)
    scratch = _SampleScratch((R, n))

    for position in range(len(schedules[0].phases)):
        starts, ends, global_start, global_end, _index = _phase_windows(
            schedules, position, min_offset, max_offset
        )
        subset_size = schedules[0].phases[position].length // 2
        snapshot = state.opinions.copy()
        opinionated = snapshot != NO_OPINION
        bits_full = np.where(opinionated, snapshot, 0).astype(np.int8)

        scratch.reset()
        totals, ones = scratch.totals, scratch.ones
        for now in range(global_start, global_end):
            local = now - offsets
            in_window = (local >= starts[:, None]) & (local < ends[:, None])
            send_mask = in_window & opinionated
            if not send_mask.any():
                continue  # the serial executor idles; no randomness is consumed
            report = network.deliver_batch(send_mask, bits_full, channel, rng)
            totals += report.accepted
            ones += report.bits
            state.messages_sent += send_mask.sum(axis=1)

        successful = totals >= subset_size
        majority = _majority_of_random_subset_grid(totals, ones, successful, subset_size, rng)
        state.opinions = np.where(successful, majority, state.opinions)
        state.activated |= successful


def _run_windowed_broadcast_batch(
    variant: str,
    n: int,
    epsilon: float,
    num_replicates: int,
    rng: np.random.Generator,
    offsets: np.ndarray,
    guards: np.ndarray,
    parameters: ProtocolParameters,
    channel: NoiseChannel,
    allow_self_messages: bool,
    correct_opinion: int,
    activation_rounds: np.ndarray,
    activation_messages: np.ndarray,
    activation_all_informed: np.ndarray,
) -> BatchWindowedResult:
    """Shared tail of the two Section-3 batch entry points: guarded stages.

    Builds each replicate's guard-dilated schedules, runs both windowed
    stages and assembles the result.  ``rounds`` per replicate is the end of
    its Stage-II schedule plus its largest offset — exactly where the serial
    executor's clock stops — with the activation rounds already inside that
    span for the clock-free variant (offsets are absolute global rounds).
    """
    network = PushGossipNetwork(size=n, allow_self_messages=allow_self_messages)
    state = source_batch_state(n, num_replicates, correct_opinion)
    state.messages_sent += activation_messages

    stage1_schedules: List[PhaseSchedule] = []
    stage2_schedules: List[PhaseSchedule] = []
    for guard in guards.tolist():
        stage1_schedule = build_stage1_schedule(parameters.stage1).dilated(int(guard))
        stage1_schedules.append(stage1_schedule)
        stage2_schedules.append(
            build_stage2_schedule(parameters.stage2, start_round=stage1_schedule.end).dilated(
                int(guard)
            )
        )

    _execute_stage_one_windowed_batch(state, network, channel, rng, stage1_schedules, offsets)
    _execute_stage_two_windowed_batch(state, network, channel, rng, stage2_schedules, offsets)

    max_offset = offsets.max(axis=1)
    rounds = (
        np.array([schedule.end for schedule in stage2_schedules], dtype=np.int64) + max_offset
    )
    correct_final = (state.opinions == correct_opinion).sum(axis=1)
    return BatchWindowedResult(
        variant=variant,
        n=n,
        epsilon=float(epsilon),
        correct_opinion=int(correct_opinion),
        rounds=rounds,
        messages_sent=state.messages_sent,
        success=correct_final == n,
        final_correct_fraction=correct_final / n,
        guard=guards,
        skew=(max_offset - offsets.min(axis=1)).astype(np.int64),
        activation_rounds=activation_rounds,
        activation_all_informed=activation_all_informed,
    )


def run_bounded_skew_batch(
    n: int,
    epsilon: float,
    num_replicates: int,
    max_skew: int,
    base_seed: int = 0,
    correct_opinion: int = 1,
    parameters: Optional[ProtocolParameters] = None,
    channel: Optional[NoiseChannel] = None,
    allow_self_messages: bool = False,
    **calibration_overrides: float,
) -> BatchWindowedResult:
    """Simulate ``R`` independent bounded-skew broadcasts at once (Section 3.1).

    The batched counterpart of
    :func:`repro.core.synchronizer.run_with_bounded_skew`: every replicate
    draws its own per-agent clock offsets uniformly from ``[0, max_skew)``,
    no activation phase is run, and both stages execute inside guard-dilated
    windows with ``guard = max_skew`` — isolating the cost of the per-phase
    guard windows, which is what experiment E9 sweeps.
    """
    if num_replicates < 1:
        raise ExperimentError("num_replicates must be at least 1")
    if max_skew < 1:
        raise ParameterError("max_skew must be at least 1")
    correct_opinion = validate_opinion(correct_opinion)
    if parameters is None:
        parameters = ProtocolParameters.calibrated(n, epsilon, **calibration_overrides)
    if channel is None:
        channel = BinarySymmetricChannel(epsilon=epsilon)

    rng = spawn_generator(base_seed, "batch-bounded-skew", n)
    R = num_replicates
    offsets = rng.integers(0, max_skew, size=(R, n)).astype(np.int64)
    guards = np.full(R, max_skew, dtype=np.int64)
    return _run_windowed_broadcast_batch(
        "bounded-skew",
        n,
        epsilon,
        R,
        rng,
        offsets,
        guards,
        parameters,
        channel,
        allow_self_messages,
        correct_opinion,
        activation_rounds=np.zeros(R, dtype=np.int64),
        activation_messages=np.zeros(R, dtype=np.int64),
        activation_all_informed=np.ones(R, dtype=bool),
    )


def run_clock_free_batch(
    n: int,
    epsilon: float,
    num_replicates: int,
    base_seed: int = 0,
    correct_opinion: int = 1,
    parameters: Optional[ProtocolParameters] = None,
    guard: Optional[int] = None,
    channel: Optional[NoiseChannel] = None,
    allow_self_messages: bool = False,
    **calibration_overrides: float,
) -> BatchWindowedResult:
    """Simulate ``R`` independent clock-free broadcasts at once (Section 3.2).

    The batched counterpart of
    :func:`repro.core.synchronizer.run_clock_free_broadcast`: every
    replicate runs the activation phase (clock offsets emerge from when each
    agent first heard a message), then both stages inside windows dilated by
    ``max(2 log2 n, realised skew)`` — each replicate gets its own guard,
    exactly as the serial protocol chooses it.
    """
    if num_replicates < 1:
        raise ExperimentError("num_replicates must be at least 1")
    correct_opinion = validate_opinion(correct_opinion)
    if parameters is None:
        parameters = ProtocolParameters.calibrated(n, epsilon, **calibration_overrides)
    if channel is None:
        channel = BinarySymmetricChannel(epsilon=epsilon)

    rng = spawn_generator(base_seed, "batch-clock-free", n)
    R = num_replicates
    activation_network = PushGossipNetwork(size=n, allow_self_messages=allow_self_messages)
    offsets, activation_rounds, activation_messages, all_informed = _run_activation_phase_batch(
        n, R, activation_network, channel, rng
    )
    skew = offsets.max(axis=1) - offsets.min(axis=1)
    if guard is not None:
        guards = np.full(R, guard, dtype=np.int64)
    else:
        guards = np.maximum(default_guard(n), skew).astype(np.int64)
    if np.any(guards < skew):
        raise ParameterError("guard must be at least the clock skew")
    return _run_windowed_broadcast_batch(
        "clock-free",
        n,
        epsilon,
        R,
        rng,
        offsets,
        guards,
        parameters,
        channel,
        allow_self_messages,
        correct_opinion,
        activation_rounds=activation_rounds,
        activation_messages=activation_messages,
        activation_all_informed=all_informed,
    )
