"""Batched ``(R, n)`` rules for the fault-injection experiment family (E12).

Two step rules live here, both batched from day one (the
``run_baseline_batch`` pattern):

* :func:`run_faulty_broadcast_batch` — the paper's two-stage protocol under
  a :data:`~repro.substrate.faults.FaultModel` and/or a non-uniform
  :class:`~repro.substrate.topology.ContactTopology`.  The main stream uses
  the *same* spawn label as :func:`repro.exec.batching.run_broadcast_batch`,
  so with :class:`~repro.substrate.faults.NoFaults` the two functions are
  bit-identical — the exec-level half of the ``FaultModel.NONE`` contract
  (pinned by ``tests/unit/exec/test_fault_batching.py``).  Fault decisions
  draw from a separately spawned fault stream.
* :func:`run_consensus_comparator_batch` — the ``AlgorithmTwo``-style phased
  approximate-consensus comparator
  (:class:`~repro.protocols.fault_tolerant.PhasedApproximateConsensus`),
  vectorised over replicates; phase budgets match the serial port exactly,
  outcomes statistically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from ..core.opinions import validate_opinion
from ..core.parameters import ProtocolParameters
from ..errors import ExperimentError, SimulationError
from ..protocols.fault_tolerant import (
    PhasedApproximateConsensus,
    declared_fault_tolerance,
)
from ..substrate.faults import FaultModel, build_injector
from ..substrate.network import PushGossipNetwork
from ..substrate.noise import BinarySymmetricChannel, NoiseChannel
from ..substrate.rng import spawn_generator
from ..substrate.topology import ContactTopology
from .stage_batching import source_batch_state, run_stage1_batch, run_stage2_batch

__all__ = [
    "BatchFaultBroadcastResult",
    "BatchConsensusResult",
    "run_faulty_broadcast_batch",
    "run_consensus_comparator_batch",
]


@dataclass(frozen=True)
class BatchFaultBroadcastResult:
    """Per-replicate outcomes of a batched fault-injected broadcast run.

    Mirrors :class:`~repro.exec.batching.BatchBroadcastResult` with the
    crash-aware success notion: ``success`` asks whether every *surviving*
    (non-crashed) agent finished holding ``B``, and the crash census is
    reported alongside.

    Attributes
    ----------
    n, epsilon, correct_opinion:
        The shared instance parameters.
    rounds:
        Round count (schedule-fixed by ``(n, epsilon)``, fault-independent).
    success:
        ``(R,)`` boolean vector: every surviving agent holds ``B``.
    surviving_correct_fraction:
        ``(R,)`` fraction of surviving agents holding ``B``.
    final_correct_fraction:
        ``(R,)`` fraction of *all* agents holding ``B`` (the fault-free
        notion, for comparability with E1).
    crashed:
        ``(R,)`` number of crashed agents per replicate.
    messages_sent:
        ``(R,)`` total messages pushed, per replicate.
    stage1_bias:
        ``(R,)`` population bias towards ``B`` at the end of Stage I.
    """

    n: int
    epsilon: float
    correct_opinion: int
    rounds: int
    success: np.ndarray
    surviving_correct_fraction: np.ndarray
    final_correct_fraction: np.ndarray
    crashed: np.ndarray
    messages_sent: np.ndarray
    stage1_bias: np.ndarray

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R`` in the batch."""
        return int(self.success.size)

    def measurements(self, index: int) -> Dict[str, Any]:
        """Replicate ``index`` as a trial-measurement mapping.

        Keys form a superset of the serial E12 paper-protocol trial's, so
        batched and serial sweeps produce interchangeable
        :class:`~repro.analysis.experiments.ExperimentResult` tables.
        """
        surviving = float(self.surviving_correct_fraction[index])
        return {
            "rounds": int(self.rounds),
            "messages": int(self.messages_sent[index]),
            "messages_per_agent": float(self.messages_sent[index] / self.n),
            "success": bool(self.success[index]),
            "fraction": surviving,
            "surviving_fraction": surviving,
            "final_correct_fraction": float(self.final_correct_fraction[index]),
            "crashed": int(self.crashed[index]),
            "stage1_bias": float(self.stage1_bias[index]),
        }


@dataclass(frozen=True)
class BatchConsensusResult:
    """Per-replicate outcomes of the batched approximate-consensus comparator.

    Attributes
    ----------
    n:
        Number of servers.
    phases:
        Phase budget ``p_end`` (identical for every replicate: it depends
        only on ``(n, f, initial_range, agreement_eps)`` — the exact
        differential anchor against the serial port).
    num_faulty:
        The declared fault tolerance ``f``.
    success:
        ``(R,)`` boolean vector: spread of correct survivors at most
        ``agreement_eps``.
    spread:
        ``(R,)`` final spreads (``inf`` where no correct server survived).
    agreement_fraction:
        ``(R,)`` fraction of correct survivors within ``agreement_eps`` of
        their mean.
    """

    n: int
    phases: int
    num_faulty: int
    success: np.ndarray
    spread: np.ndarray
    agreement_fraction: np.ndarray

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R`` in the batch."""
        return int(self.success.size)

    def measurements(self, index: int) -> Dict[str, Any]:
        """Replicate ``index`` as a trial-measurement mapping (E12 comparator keys)."""
        spread = float(self.spread[index])
        return {
            "rounds": int(self.phases),
            "success": bool(self.success[index]),
            "fraction": float(self.agreement_fraction[index]),
            "spread": spread if np.isfinite(spread) else None,
            "num_faulty": int(self.num_faulty),
        }


def run_faulty_broadcast_batch(
    n: int,
    epsilon: float,
    num_replicates: int,
    model: Optional[FaultModel] = None,
    base_seed: int = 0,
    correct_opinion: int = 1,
    parameters: Optional[ProtocolParameters] = None,
    channel: Optional[NoiseChannel] = None,
    allow_self_messages: bool = False,
    topology: Optional[ContactTopology] = None,
    **calibration_overrides: float,
) -> BatchFaultBroadcastResult:
    """Simulate ``R`` fault-injected noisy-broadcast runs at once.

    Structure and stream labels are exactly those of
    :func:`~repro.exec.batching.run_broadcast_batch`; the only additions are
    the fault injector (fed from a separately spawned ``"batch-faults"``
    stream) and the optional topology.  With ``model=None`` /
    :class:`~repro.substrate.faults.NoFaults` and no topology the output is
    bit-identical to ``run_broadcast_batch`` on the same ``base_seed``.
    """
    if num_replicates < 1:
        raise ExperimentError("num_replicates must be at least 1")
    correct_opinion = validate_opinion(correct_opinion)
    if parameters is None:
        parameters = ProtocolParameters.calibrated(n, epsilon, **calibration_overrides)
    if parameters.n != n:
        raise SimulationError(f"parameters were built for n={parameters.n}, not n={n}")
    if channel is None:
        channel = BinarySymmetricChannel(epsilon=epsilon)
    if topology is not None:
        topology.validate(n)

    rng = spawn_generator(base_seed, "batch-broadcast", n)
    fault_rng = spawn_generator(base_seed, "batch-faults", n)
    injector = build_injector(model, n, fault_rng, num_replicates=num_replicates)
    network = PushGossipNetwork(size=n, allow_self_messages=allow_self_messages)

    state = source_batch_state(n, num_replicates, correct_opinion)
    stage1 = run_stage1_batch(
        state, network, channel, rng, parameters.stage1, correct_opinion,
        faults=injector, topology=topology,
    )
    run_stage2_batch(
        state, network, channel, rng, parameters.stage2, correct_opinion,
        faults=injector, topology=topology,
    )

    correct = state.opinions == correct_opinion
    if injector is not None:
        alive = injector.alive_mask()
        crashed = injector.num_crashed()
    else:
        alive = np.ones(correct.shape, dtype=bool)
        crashed = np.zeros(num_replicates, dtype=np.int64)
    alive_counts = alive.sum(axis=1)
    surviving_correct = (correct & alive).sum(axis=1)
    surviving_fraction = np.where(
        alive_counts > 0, surviving_correct / np.maximum(alive_counts, 1), 0.0
    )
    return BatchFaultBroadcastResult(
        n=n,
        epsilon=float(epsilon),
        correct_opinion=int(correct_opinion),
        rounds=state.rounds,
        success=surviving_correct == alive_counts,
        surviving_correct_fraction=surviving_fraction,
        final_correct_fraction=correct.sum(axis=1) / n,
        crashed=crashed,
        messages_sent=state.messages_sent,
        stage1_bias=stage1.final_bias,
    )


def run_consensus_comparator_batch(
    n: int,
    num_replicates: int,
    model: Optional[FaultModel] = None,
    base_seed: int = 0,
    initial_range: float = 1.0,
    agreement_eps: float = 0.05,
    max_phases: int = 64,
) -> BatchConsensusResult:
    """Run ``R`` phased approximate-consensus instances at once.

    Vectorised transcription of
    :meth:`~repro.protocols.fault_tolerant.PhasedApproximateConsensus.run`:
    per phase every correct surviving server averages the honest values plus
    one per-receiver Byzantine fake sum, provided at least ``n - f`` servers
    were heard.  Honest randomness comes from the ``"batch-consensus"``
    stream, every fault decision and fake value from
    ``"batch-consensus-faults"``.
    """
    if num_replicates < 1:
        raise ExperimentError("num_replicates must be at least 1")
    algorithm = PhasedApproximateConsensus(
        initial_range=initial_range, agreement_eps=agreement_eps, max_phases=max_phases
    )
    num_faulty = declared_fault_tolerance(model, n)
    phases = algorithm.phase_budget(n, model)

    rng = spawn_generator(base_seed, "batch-consensus", n)
    fault_rng = spawn_generator(base_seed, "batch-consensus-faults", n)
    injector = build_injector(model, n, fault_rng, num_replicates=num_replicates)

    values = rng.random((num_replicates, n)) * initial_range
    if injector is not None:
        byzantine = injector.byzantine.copy()
    else:
        byzantine = np.zeros((num_replicates, n), dtype=bool)
    num_byzantine = byzantine.sum(axis=1)

    for _ in range(phases):
        if injector is not None:
            injector.begin_round()
        alive = injector.alive_mask() if injector is not None else np.ones_like(byzantine)
        correct_alive = alive & ~byzantine
        received = correct_alive.sum(axis=1) + num_byzantine
        proceed = (received >= n - num_faulty) & correct_alive.any(axis=1)
        honest_sums = (values * correct_alive).sum(axis=1)
        max_byz = int(num_byzantine.max()) if num_byzantine.size else 0
        if max_byz:
            # (R, f_max, n) fakes: one per (replicate, Byzantine slot,
            # receiver); replicates with fewer members use a prefix (the
            # member count is constant per model, so this is exact).
            fakes = fault_rng.random((num_replicates, max_byz, n)) * initial_range
            slot_active = np.arange(max_byz)[None, :] < num_byzantine[:, None]
            fake_sums = (fakes * slot_active[:, :, None]).sum(axis=1)
        else:
            fake_sums = np.zeros((num_replicates, n))
        averaged = (honest_sums[:, None] + fake_sums) / np.maximum(received, 1)[:, None]
        values = np.where(proceed[:, None] & correct_alive, averaged, values)

    final_alive = injector.alive_mask() if injector is not None else np.ones_like(byzantine)
    survivors = final_alive & ~byzantine
    survivor_counts = survivors.sum(axis=1)
    masked = np.where(survivors, values, np.nan)
    with np.errstate(invalid="ignore"):
        spread = np.nanmax(masked, axis=1) - np.nanmin(masked, axis=1)
        means = np.nanmean(masked, axis=1)
        near = np.abs(masked - means[:, None]) <= agreement_eps
        agreement = near.sum(axis=1) / np.maximum(survivor_counts, 1)
    spread = np.where(survivor_counts > 0, spread, np.inf)
    agreement = np.where(survivor_counts > 0, agreement, 0.0)
    return BatchConsensusResult(
        n=n,
        phases=phases,
        num_faulty=num_faulty,
        success=(spread <= agreement_eps) & (survivor_counts > 0),
        spread=spread,
        agreement_fraction=agreement,
    )
