"""Vectorised batch execution of the noisy-broadcast and majority protocols.

The serial execution path builds one :class:`~repro.substrate.engine.SimulationEngine`
per Monte-Carlo trial and pays Python-level bookkeeping (engine wiring,
metrics, tracing, per-round dataclasses) for every round of every trial.
Since all trials of one sweep point share ``(n, epsilon, parameters)`` — and
the protocol's round schedule is a deterministic function of those — ``R``
replicates can instead be simulated *simultaneously* as ``(R, n)`` NumPy
grids: one :meth:`~repro.substrate.network.PushGossipNetwork.deliver_batch`
call per round replaces ``R`` engine rounds.

Three protocol shapes are covered:

* :func:`run_broadcast_batch` — Theorem 2.17's two-stage broadcast
  (mirroring :func:`repro.core.broadcast.solve_noisy_broadcast`);
* :func:`run_majority_batch` — Corollary 2.18's majority-consensus variant
  (mirroring :func:`repro.core.majority.solve_noisy_majority_consensus`):
  a random initially-opinionated set per replicate, Stage I entered at the
  corollary's start phase ``i_A``, then Stage-II boosting;
* :func:`run_baseline_batch` — the Section 1.6 / Section 1.4 comparator
  family experiments E7 and E11 argue *against*, dispatched by registry
  name: immediate forwarding
  (:class:`~repro.protocols.naive_forward.ImmediateForwardingBroadcast`),
  the noisy voter dynamics (:class:`~repro.protocols.noisy_voter.NoisyVoterBroadcast`),
  the idealised direct-from-source reference
  (:class:`~repro.protocols.direct_source.DirectSourceReference`) and the
  listen-only silent-wait strategy
  (:class:`~repro.protocols.silent_wait.SilentWaitBroadcast`), each with
  a vectorised step rule mirroring its serial class round for round.

The Stage-I/Stage-II round loops underneath :func:`run_broadcast_batch` and
:func:`run_majority_batch` live in :mod:`repro.exec.stage_batching` (one
batched transcription of each stage rule, shared with the instrumented
stage-level experiments E4–E6 and the windowed E9 executors).

:func:`run_sweep_batched` dispatches whole sweeps point-by-point onto the
right batch simulator, forwarding *every* recognised point setting
(``correct_opinion``, ``allow_self_messages``, ``initial_set_size``,
``majority_bias``, calibration overrides, ...) and rejecting unrecognised
ones — the same strictness a serial ``run_sweep`` trial function gets by
construction.  Independent grid points can additionally execute concurrently
on a shared process pool (``point_jobs``), composing batch-level
vectorisation with point-level parallelism.

Determinism contract
--------------------
* A batch run is fully determined by ``(n, epsilon, num_replicates,
  base_seed, parameters)`` (plus the instance settings for the majority
  shape): two identical calls return identical arrays.  Point-parallel
  sweeps preserve this bit-for-bit: per-point batch seeds are derived in the
  parent before dispatch and results are assembled in point order, exactly
  like :class:`~repro.exec.runner.ParallelTrialRunner` does for trials.
* Per-replicate dynamics are *statistically* equivalent to
  :func:`repro.core.broadcast.solve_noisy_broadcast` /
  :func:`repro.core.majority.solve_noisy_majority_consensus` — same
  protocol, same schedule (the per-replicate round count is exactly equal),
  same distributions — but **not** bit-identical to serial trials, because
  the whole batch consumes one random stream instead of one stream tree per
  engine.  Experiments that must be replayable trial-for-trial (the default)
  use the serial or parallel runners in :mod:`repro.exec.runner`; ``--batch``
  trades that per-trial replayability for a large constant-factor speedup
  while keeping batch-level reproducibility.

The differential tests in ``tests/unit/exec/test_batching.py`` pin both
halves of the contract: exact equality where the paper's schedule is
deterministic (round counts), and distributional agreement for the stochastic
observables (success rate, message counts, final bias).
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.majority import compute_start_phase
from ..core.opinions import bias_from_counts, counts_from_bias, validate_opinion
from ..core.parameters import ProtocolParameters
from ..errors import ExperimentError, ParameterError, SimulationError
from ..protocols.direct_source import DirectSourceReference
from ..protocols.naive_forward import ImmediateForwardingBroadcast
from ..protocols.noisy_voter import NoisyVoterBroadcast
from ..protocols.silent_wait import default_decision_threshold
from ..substrate.network import PushGossipNetwork
from ..substrate.noise import BinarySymmetricChannel, NoiseChannel
from ..substrate.population import NO_OPINION
from ..substrate.rng import derive_seed, spawn_generator
from . import pool
from .runner import trial_seeds
from .stage_batching import (
    run_stage1_batch,
    run_stage2_batch,
    seeded_batch_state,
    source_batch_state,
)

__all__ = [
    "BatchBroadcastResult",
    "BatchMajorityResult",
    "BatchBaselineResult",
    "run_broadcast_batch",
    "run_majority_batch",
    "run_baseline_batch",
    "batchable_baselines",
    "batch_to_experiment_result",
    "measurements_to_experiment_result",
    "run_sweep_batched",
    "run_broadcast_sweep_batched",
]


@dataclass(frozen=True)
class BatchBroadcastResult:
    """Per-replicate outcomes of a batched noisy-broadcast run.

    Attributes
    ----------
    n, epsilon, correct_opinion:
        The shared instance parameters.
    rounds:
        Round count — identical for every replicate because the paper's
        two-stage schedule is fixed by ``(n, epsilon)``; exactly equals the
        serial :class:`~repro.core.broadcast.BroadcastResult.rounds`.
    success:
        ``(R,)`` boolean vector: did every agent finish holding ``B``?
    final_correct_fraction:
        ``(R,)`` fraction of agents holding ``B`` at the end.
    messages_sent:
        ``(R,)`` total messages pushed, per replicate.
    stage1_bias:
        ``(R,)`` population bias towards ``B`` at the end of Stage I (the
        paper's ``delta_1``).
    """

    n: int
    epsilon: float
    correct_opinion: int
    rounds: int
    success: np.ndarray
    final_correct_fraction: np.ndarray
    messages_sent: np.ndarray
    stage1_bias: np.ndarray

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R`` in the batch."""
        return int(self.success.size)

    def measurements(self, index: int) -> Dict[str, Any]:
        """Replicate ``index`` as a trial-measurement mapping.

        The keys form a superset of what the broadcast-shaped experiment
        drivers (E1–E3, and E7's paper-protocol series, which spells the
        final fraction ``fraction``) record serially, so batched and serial
        sweeps produce interchangeable
        :class:`~repro.analysis.experiments.ExperimentResult` tables.
        """
        final_fraction = float(self.final_correct_fraction[index])
        return {
            "rounds": int(self.rounds),
            "messages": int(self.messages_sent[index]),
            "messages_per_agent": float(self.messages_sent[index] / self.n),
            "success": bool(self.success[index]),
            "fraction": final_fraction,
            "final_correct_fraction": final_fraction,
            "stage1_bias": float(self.stage1_bias[index]),
        }


@dataclass(frozen=True)
class BatchMajorityResult:
    """Per-replicate outcomes of a batched majority-consensus run.

    Attributes
    ----------
    n, epsilon, majority_opinion:
        The shared instance parameters (``majority_opinion`` is the
        ground-truth majority opinion ``B``).
    initial_set_size, initial_bias:
        Size of the initially opinionated set ``A`` and the realised
        majority-bias of its opinion assignment (identical for every
        replicate: :func:`~repro.core.opinions.counts_from_bias` makes the
        correct/wrong split deterministic, exactly as
        :meth:`~repro.core.majority.MajorityInstance.generate` does).
    start_phase:
        Corollary 2.18's ``i_A`` — the Stage-I phase the protocol starts
        from; identical for every replicate because it depends only on the
        shared ``(parameters, |A|)``.
    rounds:
        Round count — identical for every replicate because the schedule is
        fixed by ``(parameters, start_phase)``; exactly equals the serial
        :class:`~repro.core.majority.MajorityConsensusResult.rounds`.
    success:
        ``(R,)`` boolean vector: did every agent finish holding ``B``?
    final_correct_fraction:
        ``(R,)`` fraction of agents holding ``B`` at the end.
    messages_sent:
        ``(R,)`` total messages pushed, per replicate.
    stage1_bias:
        ``(R,)`` population bias towards ``B`` at the end of Stage I.
    """

    n: int
    epsilon: float
    majority_opinion: int
    initial_set_size: int
    initial_bias: float
    start_phase: int
    rounds: int
    success: np.ndarray
    final_correct_fraction: np.ndarray
    messages_sent: np.ndarray
    stage1_bias: np.ndarray

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R`` in the batch."""
        return int(self.success.size)

    def measurements(self, index: int) -> Dict[str, Any]:
        """Replicate ``index`` as a trial-measurement mapping.

        The keys form a superset of what the serial E8 driver records
        (``success``, ``final_fraction``, ``rounds``), so batched and serial
        majority sweeps produce interchangeable
        :class:`~repro.analysis.experiments.ExperimentResult` tables.
        """
        final_fraction = float(self.final_correct_fraction[index])
        return {
            "rounds": int(self.rounds),
            "messages": int(self.messages_sent[index]),
            "messages_per_agent": float(self.messages_sent[index] / self.n),
            "success": bool(self.success[index]),
            "final_fraction": final_fraction,
            "final_correct_fraction": final_fraction,
            "stage1_bias": float(self.stage1_bias[index]),
            "start_phase": int(self.start_phase),
        }


@dataclass(frozen=True)
class BatchBaselineResult:
    """Per-replicate outcomes of a batched baseline-protocol run.

    Unlike the paper's protocol — whose round schedule is fixed by
    ``(n, epsilon)`` — the baselines stop per replicate: the noisy voter
    breaks out of its budget when a consensus check passes, and the
    direct-from-source reference records the first round its running
    majority went all-correct.  ``rounds`` is therefore a vector here, and
    ``converged`` separates "stopped by its own rule" from "exhausted the
    round budget" so downstream reports never conflate the two.

    Attributes
    ----------
    protocol:
        Registry name of the baseline (see :func:`batchable_baselines`).
    n, epsilon, correct_opinion:
        The shared instance parameters.
    rounds:
        ``(R,)`` rounds actually executed per replicate (the budget for
        replicates that never met their stopping rule).
    converged:
        ``(R,)`` boolean vector: did the replicate meet the protocol's own
        stopping/convergence rule (as opposed to exhausting its budget)?
        Mirrors :attr:`~repro.protocols.base.ProtocolResult.converged`.
    success:
        ``(R,)`` boolean vector: did every agent finish holding the correct
        opinion?
    final_correct_fraction:
        ``(R,)`` fraction of agents holding the correct opinion at the end.
    messages_sent:
        ``(R,)`` total messages pushed, per replicate.
    extra:
        Protocol-specific per-replicate vectors (e.g. the direct-source
        reference's ``rounds_to_all_correct``, ``NaN`` where never reached),
        mirroring :attr:`~repro.protocols.base.ProtocolResult.extra`.
    """

    protocol: str
    n: int
    epsilon: float
    correct_opinion: int
    rounds: np.ndarray
    converged: np.ndarray
    success: np.ndarray
    final_correct_fraction: np.ndarray
    messages_sent: np.ndarray
    extra: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R`` in the batch."""
        return int(self.success.size)

    def measurements(self, index: int) -> Dict[str, Any]:
        """Replicate ``index`` as a trial-measurement mapping.

        The keys form a superset of what the serial E7 trial functions
        record (``fraction``, ``success``, ``rounds``, ``converged``,
        ``rounds_converged`` plus protocol extras), so batched and serial
        comparisons produce interchangeable
        :class:`~repro.analysis.experiments.ExperimentResult` tables.
        Never-reached round markers (``NaN`` in the ``extra`` vectors) are
        reported as ``None`` — the explicit "did not happen" convention the
        result containers exclude from means.
        """
        converged = bool(self.converged[index])
        fraction = float(self.final_correct_fraction[index])
        measurements: Dict[str, Any] = {
            "rounds": int(self.rounds[index]),
            "rounds_converged": int(self.rounds[index]) if converged else None,
            "messages": int(self.messages_sent[index]),
            "messages_per_agent": float(self.messages_sent[index] / self.n),
            "success": bool(self.success[index]),
            "converged": converged,
            "fraction": fraction,
            "final_correct_fraction": fraction,
        }
        for key, values in self.extra.items():
            raw = values[index]
            if isinstance(raw, (bool, np.bool_)):
                measurements[key] = bool(raw)
                continue
            value = float(raw)
            if not math.isfinite(value):
                measurements[key] = None
            elif value.is_integer():
                measurements[key] = int(value)
            else:
                measurements[key] = value
        return measurements


# ----------------------------------------------------------------------
# The two batched protocol entry points
# ----------------------------------------------------------------------
#
# The (R, n) stage round loops themselves live in
# :mod:`repro.exec.stage_batching` (run_stage1_batch / run_stage2_batch):
# one batched transcription of each stage rule, shared between these
# protocol-level simulators and the instrumented stage-level experiments
# (E4-E6, E9).  The kernels consume the batch stream in exactly the order
# the loops formerly inlined here did, so results for a fixed base seed are
# unchanged.


def run_broadcast_batch(
    n: int,
    epsilon: float,
    num_replicates: int,
    base_seed: int = 0,
    correct_opinion: int = 1,
    parameters: Optional[ProtocolParameters] = None,
    channel: Optional[NoiseChannel] = None,
    allow_self_messages: bool = False,
    **calibration_overrides: float,
) -> BatchBroadcastResult:
    """Simulate ``num_replicates`` independent noisy-broadcast runs at once.

    This is the batched counterpart of
    :func:`repro.core.broadcast.solve_noisy_broadcast`: the same two-stage
    "breathe before speaking" protocol (Stage I spreading in synchronized
    layers, Stage II majority boosting), executed for all replicates
    simultaneously on ``(R, n)`` grids.

    Parameters
    ----------
    n, epsilon:
        Instance size and noise margin, shared by every replicate.
    num_replicates:
        Number of independent replicates ``R``.
    base_seed:
        Root seed of the batch stream; fixing it makes the whole batch
        reproducible.
    correct_opinion:
        The source's opinion ``B``.
    parameters:
        Optional explicit :class:`ProtocolParameters`; the calibrated preset
        is used when omitted (``calibration_overrides`` are forwarded).
    channel:
        Override the default :class:`BinarySymmetricChannel`.
    allow_self_messages:
        Allow agents to push messages to themselves.
    """
    if num_replicates < 1:
        raise ExperimentError("num_replicates must be at least 1")
    correct_opinion = validate_opinion(correct_opinion)
    if parameters is None:
        parameters = ProtocolParameters.calibrated(n, epsilon, **calibration_overrides)
    if parameters.n != n:
        raise SimulationError(f"parameters were built for n={parameters.n}, not n={n}")
    if channel is None:
        channel = BinarySymmetricChannel(epsilon=epsilon)

    rng = spawn_generator(base_seed, "batch-broadcast", n)
    network = PushGossipNetwork(size=n, allow_self_messages=allow_self_messages)

    # Replicate state, mirroring Population: opinion grid and activation grid.
    state = source_batch_state(n, num_replicates, correct_opinion)
    stage1 = run_stage1_batch(state, network, channel, rng, parameters.stage1, correct_opinion)
    run_stage2_batch(state, network, channel, rng, parameters.stage2, correct_opinion)

    correct_final = (state.opinions == correct_opinion).sum(axis=1)
    return BatchBroadcastResult(
        n=n,
        epsilon=float(epsilon),
        correct_opinion=int(correct_opinion),
        rounds=state.rounds,
        success=correct_final == n,
        final_correct_fraction=correct_final / n,
        messages_sent=state.messages_sent,
        stage1_bias=stage1.final_bias,
    )


def run_majority_batch(
    n: int,
    epsilon: float,
    num_replicates: int,
    initial_set_size: int,
    majority_bias: float,
    base_seed: int = 0,
    majority_opinion: int = 1,
    parameters: Optional[ProtocolParameters] = None,
    channel: Optional[NoiseChannel] = None,
    allow_self_messages: bool = False,
    start_phase: Optional[int] = None,
    **calibration_overrides: float,
) -> BatchMajorityResult:
    """Simulate ``num_replicates`` independent majority-consensus runs at once.

    This is the batched counterpart of
    :func:`repro.core.majority.solve_noisy_majority_consensus`: every
    replicate gets its own uniformly random initially opinionated set ``A``
    (size ``initial_set_size``, majority-bias ``majority_bias`` towards
    ``majority_opinion``), the protocol enters Stage I at Corollary 2.18's
    start phase ``i_A`` (so the seeded set plays the role of "the agents
    activated before phase ``i_A``"), and Stage II boosts as usual — all on
    ``(R, n)`` grids.

    Parameters
    ----------
    n, epsilon:
        Instance size and noise margin, shared by every replicate.
    num_replicates:
        Number of independent replicates ``R``.
    initial_set_size, majority_bias, majority_opinion:
        The initial opinionated set ``A``: its size and its majority-bias
        towards ``majority_opinion``.  The correct/wrong split is the
        deterministic :func:`~repro.core.opinions.counts_from_bias` split,
        exactly as in :meth:`~repro.core.majority.MajorityInstance.generate`;
        the membership of ``A`` is drawn independently per replicate.
    base_seed:
        Root seed of the batch stream.
    parameters:
        Optional explicit :class:`ProtocolParameters`; the calibrated preset
        is used when omitted (``calibration_overrides`` are forwarded).
    channel:
        Override the default :class:`BinarySymmetricChannel`.
    allow_self_messages:
        Allow agents to push messages to themselves.
    start_phase:
        Override Corollary 2.18's computed start phase (mirrors the
        ``start_phase`` argument of
        :class:`~repro.core.majority.NoisyMajorityConsensusProtocol`).
    """
    if num_replicates < 1:
        raise ExperimentError("num_replicates must be at least 1")
    majority_opinion = validate_opinion(majority_opinion)
    if parameters is None:
        parameters = ProtocolParameters.calibrated(n, epsilon, **calibration_overrides)
    if parameters.n != n:
        raise SimulationError(f"parameters were built for n={parameters.n}, not n={n}")
    if channel is None:
        channel = BinarySymmetricChannel(epsilon=epsilon)
    if not 1 <= initial_set_size <= n:
        raise ParameterError(f"initial set size must be in [1, n], got {initial_set_size}")
    if majority_bias < 0:
        raise ParameterError("majority bias must be non-negative")

    rng = spawn_generator(base_seed, "batch-majority", n)
    network = PushGossipNetwork(size=n, allow_self_messages=allow_self_messages)

    # Instance generation, one independent instance per replicate, realising
    # the same distribution as MajorityInstance.generate's shuffle.
    state = seeded_batch_state(
        n, num_replicates, initial_set_size, majority_bias, majority_opinion, rng
    )
    correct_count, wrong_count = counts_from_bias(initial_set_size, majority_bias)

    resolved_start_phase = (
        start_phase
        if start_phase is not None
        else compute_start_phase(parameters, initial_set_size)
    )

    stage1 = run_stage1_batch(
        state,
        network,
        channel,
        rng,
        parameters.stage1,
        majority_opinion,
        start_phase=resolved_start_phase,
    )
    run_stage2_batch(state, network, channel, rng, parameters.stage2, majority_opinion)

    correct_final = (state.opinions == majority_opinion).sum(axis=1)
    return BatchMajorityResult(
        n=n,
        epsilon=float(epsilon),
        majority_opinion=int(majority_opinion),
        initial_set_size=int(initial_set_size),
        initial_bias=bias_from_counts(correct_count, wrong_count),
        start_phase=int(resolved_start_phase),
        rounds=state.rounds,
        success=correct_final == n,
        final_correct_fraction=correct_final / n,
        messages_sent=state.messages_sent,
        stage1_bias=stage1.final_bias,
    )


# ----------------------------------------------------------------------
# Batched baseline protocols (the E7 / E11 comparator family)
# ----------------------------------------------------------------------


def _run_forwarding_batch(
    n: int,
    num_replicates: int,
    network: PushGossipNetwork,
    channel: NoiseChannel,
    rng: np.random.Generator,
    correct_opinion: int,
    max_rounds: Optional[int] = None,
    keep_first_opinion: bool = ImmediateForwardingBroadcast.keep_first_opinion,
) -> BatchBaselineResult:
    """Vectorised step rule mirroring
    :class:`~repro.protocols.naive_forward.ImmediateForwardingBroadcast`
    (defaults are read from the serial class, never duplicated).

    Every opinionated agent pushes its bit each round; with
    ``keep_first_opinion`` (Section 1.6's description) a recipient adopts
    only the first bit it ever hears, otherwise it re-adopts every bit.  The
    budget always runs to completion (reach is easy — reliability is what
    the baseline loses), so ``rounds`` equals the budget for every replicate
    and ``converged`` records whether everyone got informed.
    """
    budget = max_rounds
    if budget is None:
        budget = ImmediateForwardingBroadcast.default_budget(n)

    R = num_replicates
    opinions = np.full((R, n), NO_OPINION, dtype=np.int8)
    activated = np.zeros((R, n), dtype=bool)
    opinions[:, 0] = correct_opinion  # agent 0 is the source in every replicate
    activated[:, 0] = True
    messages = np.zeros(R, dtype=np.int64)
    all_informed_round = np.full(R, np.nan)

    for round_index in range(budget):
        send_mask = opinions != NO_OPINION
        bits = np.where(send_mask, opinions, 0).astype(np.int8)
        report = network.deliver_batch(send_mask, bits, channel, rng)
        if keep_first_opinion:
            adopt = report.accepted & ~activated
        else:
            adopt = report.accepted
        opinions = np.where(adopt, report.bits, opinions)
        activated |= report.accepted
        messages += send_mask.sum(axis=1)
        newly_informed = activated.all(axis=1) & np.isnan(all_informed_round)
        all_informed_round[newly_informed] = round_index + 1

    correct_final = (opinions == correct_opinion).sum(axis=1)
    return BatchBaselineResult(
        protocol="immediate-forwarding",
        n=n,
        epsilon=float(channel.epsilon),
        correct_opinion=int(correct_opinion),
        rounds=np.full(R, budget, dtype=np.int64),
        converged=activated.all(axis=1),
        success=correct_final == n,
        final_correct_fraction=correct_final / n,
        messages_sent=messages,
        extra={"all_informed_round": all_informed_round},
    )


def _run_voter_batch(
    n: int,
    num_replicates: int,
    network: PushGossipNetwork,
    channel: NoiseChannel,
    rng: np.random.Generator,
    correct_opinion: int,
    max_rounds: int = NoisyVoterBroadcast.max_rounds,
    check_every: int = NoisyVoterBroadcast.check_every,
) -> BatchBaselineResult:
    """Vectorised step rule mirroring
    :class:`~repro.protocols.noisy_voter.NoisyVoterBroadcast`
    (defaults are read from the serial class, never duplicated).

    Push voter dynamics with a zealot source: every opinionated agent pushes
    its opinion, every receiver except the zealot adopts the accepted bit,
    and every ``check_every`` rounds replicates that reached full correct
    consensus stop (their rows are frozen and they stop sending or counting
    rounds, exactly like a serial run breaking out of its loop).  Under
    channel noise this essentially never happens — the paper's point — so
    ``rounds`` typically equals the budget with ``converged`` false.
    """
    if max_rounds < 1:
        raise ParameterError(f"max_rounds must be at least 1, got {max_rounds}")
    if check_every < 1:
        raise ParameterError(f"check_every must be at least 1, got {check_every}")

    R = num_replicates
    opinions = np.full((R, n), NO_OPINION, dtype=np.int8)
    opinions[:, 0] = correct_opinion  # the zealot source never changes opinion
    messages = np.zeros(R, dtype=np.int64)
    rounds = np.zeros(R, dtype=np.int64)
    converged = np.zeros(R, dtype=bool)
    alive = np.ones(R, dtype=bool)

    for round_index in range(max_rounds):
        if not alive.any():
            break
        send_mask = (opinions != NO_OPINION) & alive[:, None]
        bits = np.where(send_mask, opinions, 0).astype(np.int8)
        report = network.deliver_batch(send_mask, bits, channel, rng)
        adopt = report.accepted.copy()
        adopt[:, 0] = False  # the zealot keeps its opinion
        opinions = np.where(adopt, report.bits, opinions)
        messages += send_mask.sum(axis=1)
        rounds += alive
        if (round_index + 1) % check_every == 0:
            now_correct = alive & (opinions == correct_opinion).all(axis=1)
            converged |= now_correct
            alive &= ~now_correct

    correct_final = (opinions == correct_opinion).sum(axis=1)
    return BatchBaselineResult(
        protocol="noisy-voter",
        n=n,
        epsilon=float(channel.epsilon),
        correct_opinion=int(correct_opinion),
        rounds=rounds,
        converged=converged,
        success=correct_final == n,
        final_correct_fraction=correct_final / n,
        messages_sent=messages,
    )


def _run_direct_source_batch(
    n: int,
    num_replicates: int,
    network: PushGossipNetwork,
    channel: NoiseChannel,
    rng: np.random.Generator,
    correct_opinion: int,
    rounds: Optional[int] = None,
) -> BatchBaselineResult:
    """Vectorised step rule mirroring
    :class:`~repro.protocols.direct_source.DirectSourceReference`
    (defaults are read from the serial class, never duplicated).

    Every agent receives one independent noisy source sample per round
    (applied via :meth:`~repro.substrate.noise.NoiseChannel.transmit_batch`
    on the full ``(R, n)`` grid); each replicate records the first round at
    which every agent's running majority was correct.  The extra vector
    ``rounds_to_all_correct`` is ``NaN`` — reported as ``None`` in
    measurements — for replicates whose majority never went all-correct
    within the sampling budget; they are *not* silently counted at the
    budget.
    """
    total_rounds = rounds
    if total_rounds is None:
        total_rounds = DirectSourceReference.default_rounds(n, channel.epsilon)
    if total_rounds < 1:
        raise ParameterError("rounds must be at least 1")

    R = num_replicates
    ones = np.zeros((R, n), dtype=np.int64)
    first_all_correct = np.full(R, np.nan)
    source_bits = np.full((R, n), correct_opinion, dtype=np.int8)
    full_mask = np.ones((R, n), dtype=bool)

    for round_index in range(1, total_rounds + 1):
        noisy = channel.transmit_batch(source_bits, full_mask, rng)
        ones += noisy.astype(np.int64)
        pending = np.isnan(first_all_correct)
        if pending.any():
            majority_now = _running_majority(ones[pending], round_index, rng)
            all_correct = (majority_now == correct_opinion).all(axis=1)
            first_all_correct[np.flatnonzero(pending)[all_correct]] = round_index

    final = _running_majority(ones, total_rounds, rng)
    correct_final = (final == correct_opinion).sum(axis=1)
    return BatchBaselineResult(
        protocol="direct-source-reference",
        n=n,
        epsilon=float(channel.epsilon),
        correct_opinion=int(correct_opinion),
        rounds=np.full(R, total_rounds, dtype=np.int64),
        converged=np.ones(R, dtype=bool),
        success=correct_final == n,
        final_correct_fraction=correct_final / n,
        messages_sent=np.full(R, n * total_rounds, dtype=np.int64),
        extra={
            "rounds_to_all_correct": first_all_correct,
            "all_correct": ~np.isnan(first_all_correct),
        },
    )


def _run_silent_wait_batch(
    n: int,
    num_replicates: int,
    network: PushGossipNetwork,
    channel: NoiseChannel,
    rng: np.random.Generator,
    correct_opinion: int,
    threshold: Optional[int] = None,
    max_rounds: Optional[int] = None,
) -> BatchBaselineResult:
    """Vectorised step rule mirroring
    :class:`~repro.protocols.silent_wait.SilentWaitBroadcast`
    (defaults are read from the serial module, never duplicated).

    Only the source ever speaks — one message per round per replicate — so
    the per-round work is a single uniform target draw plus one noisy bit per
    replicate instead of a full ``(R, n)`` delivery grid; every other agent
    accumulates the noisy source bits it happens to receive and decides by
    majority once it has collected ``threshold`` of them (re-deciding on
    every later receipt, exactly as the serial class does).  Replicates stop
    as soon as every agent has decided; ``rounds`` is therefore a vector and
    budget exhaustion shows up as ``converged`` false.  The extra vector
    ``first_round_with_two_messages`` reproduces the Section 1.6 birthday
    observation (``NaN`` — reported as ``None`` — when no agent ever heard
    two messages).
    """
    if threshold is None:
        threshold = default_decision_threshold(n, channel.epsilon)
    if threshold < 1:
        raise ParameterError("threshold must be at least 1")
    budget = max_rounds if max_rounds is not None else 8 * n * threshold
    if budget < 1:
        raise ParameterError("max_rounds must be at least 1")

    R = num_replicates
    received = np.zeros((R, n), dtype=np.int64)
    ones = np.zeros((R, n), dtype=np.int64)
    decided = np.zeros((R, n), dtype=bool)
    decided[:, 0] = True  # agent 0 is the source in every replicate
    opinions = np.full((R, n), NO_OPINION, dtype=np.int8)
    opinions[:, 0] = correct_opinion
    rounds = np.zeros(R, dtype=np.int64)
    messages = np.zeros(R, dtype=np.int64)
    first_double = np.full(R, np.nan)
    alive = np.ones(R, dtype=bool)
    alive_rows = np.flatnonzero(alive)

    for round_index in range(budget):
        if alive_rows.size == 0:
            break
        # One message per replicate: the source (agent 0) pushes its bit to a
        # uniformly random (other, unless the network allows self-messages)
        # agent; no collisions are possible, so the single-accept rule of
        # PushGossipNetwork.deliver is trivial here — but the target
        # distribution mirrors PushGossipNetwork._draw_targets exactly.
        if network.allow_self_messages:
            targets = rng.integers(0, n, size=alive_rows.size)
        else:
            draws = rng.integers(0, n - 1, size=alive_rows.size)
            targets = draws + 1  # skip over the source's own index
        bits = channel.transmit(
            np.full(alive_rows.size, correct_opinion, dtype=np.int8), rng
        )
        received[alive_rows, targets] += 1
        ones[alive_rows, targets] += bits.astype(np.int64)
        rounds[alive_rows] += 1
        messages[alive_rows] += 1

        counts_now = received[alive_rows, targets]
        fresh_double = (counts_now >= 2) & np.isnan(first_double[alive_rows])
        first_double[alive_rows[fresh_double]] = round_index + 1

        ready = counts_now >= threshold
        if ready.any():
            ready_rows = alive_rows[ready]
            ready_cols = targets[ready]
            decided[ready_rows, ready_cols] = True
            opinions[ready_rows, ready_cols] = (
                2 * ones[ready_rows, ready_cols] > received[ready_rows, ready_cols]
            ).astype(np.int8)
            done = decided[ready_rows].all(axis=1)
            if done.any():
                alive[ready_rows[done]] = False
                alive_rows = np.flatnonzero(alive)

    correct_final = (opinions == correct_opinion).sum(axis=1)
    return BatchBaselineResult(
        protocol="silent-wait",
        n=n,
        epsilon=float(channel.epsilon),
        correct_opinion=int(correct_opinion),
        rounds=rounds,
        converged=decided.all(axis=1),
        success=correct_final == n,
        final_correct_fraction=correct_final / n,
        messages_sent=messages,
        extra={
            "threshold": np.full(R, threshold, dtype=np.int64),
            "decided_fraction": decided.sum(axis=1) / n,
            "first_round_with_two_messages": first_double,
        },
    )


def _running_majority(
    ones: np.ndarray, rounds_so_far: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-agent majority of the samples collected so far (random tie-break).

    Grid-shaped transcription of
    :meth:`~repro.protocols.direct_source.DirectSourceReference._majority`.
    """
    doubled = 2 * ones
    verdict = np.where(doubled > rounds_so_far, 1, 0).astype(np.int8)
    ties = doubled == rounds_so_far
    if np.any(ties):
        verdict[ties] = rng.integers(0, 2, size=int(np.count_nonzero(ties))).astype(np.int8)
    return verdict


#: Vectorised step rule and recognised options per batchable baseline,
#: keyed by the protocol's registry name (see repro.protocols.registry).
_BASELINE_BATCH_RULES: Dict[str, Tuple[Callable[..., BatchBaselineResult], frozenset]] = {
    "immediate-forwarding": (_run_forwarding_batch, frozenset({"max_rounds", "keep_first_opinion"})),
    "noisy-voter": (_run_voter_batch, frozenset({"max_rounds", "check_every"})),
    "direct-source-reference": (_run_direct_source_batch, frozenset({"rounds"})),
    "silent-wait": (_run_silent_wait_batch, frozenset({"threshold", "max_rounds"})),
}


def batchable_baselines() -> List[str]:
    """Sorted registry names of the baseline protocols with a batched step rule."""
    return sorted(_BASELINE_BATCH_RULES)


def run_baseline_batch(
    protocol: str,
    n: int,
    epsilon: float,
    num_replicates: int,
    base_seed: int = 0,
    correct_opinion: int = 1,
    channel: Optional[NoiseChannel] = None,
    allow_self_messages: bool = False,
    **options: Any,
) -> BatchBaselineResult:
    """Simulate ``num_replicates`` independent runs of a baseline protocol at once.

    This is the batched counterpart of running a
    :class:`~repro.protocols.base.BaselineProtocol` once per trial on its own
    :class:`~repro.substrate.engine.SimulationEngine`: the protocol is looked
    up by its registry name (the same names
    :func:`repro.protocols.registry.make_protocol` accepts) and advanced for
    all replicates simultaneously on ``(R, n)`` grids, one
    :meth:`~repro.substrate.network.PushGossipNetwork.deliver_batch` (or
    :meth:`~repro.substrate.noise.NoiseChannel.transmit_batch`) call per
    round.  Per-replicate dynamics are statistically equivalent to the serial
    protocol classes — same step rule, same budgets, same stopping checks —
    under the batching module's usual determinism contract (one batch-level
    random stream; see the module docstring).

    Parameters
    ----------
    protocol:
        Registry name of the baseline; see :func:`batchable_baselines` for
        the names with a vectorised step rule.
    n, epsilon:
        Instance size and noise margin, shared by every replicate.
    num_replicates:
        Number of independent replicates ``R``.
    base_seed:
        Root seed of the batch stream.
    correct_opinion:
        The source's (correct) opinion ``B``.
    channel:
        Override the default :class:`BinarySymmetricChannel`.
    allow_self_messages:
        Allow agents to push messages to themselves.
    options:
        Protocol-specific settings mirroring the serial dataclass fields
        (``max_rounds``/``keep_first_opinion`` for immediate forwarding,
        ``max_rounds``/``check_every`` for the noisy voter, ``rounds`` for
        the direct-source reference).  ``None`` values mean "use the
        protocol's default"; unrecognised names raise
        :class:`~repro.errors.ExperimentError`.
    """
    if num_replicates < 1:
        raise ExperimentError("num_replicates must be at least 1")
    correct_opinion = validate_opinion(correct_opinion)
    try:
        rule, recognised_options = _BASELINE_BATCH_RULES[protocol]
    except KeyError:
        from ..protocols.registry import available_protocols

        known = protocol in available_protocols()
        reason = "has no batched step rule" if known else "is not a registered protocol"
        raise ExperimentError(
            f"protocol {protocol!r} {reason}; batchable baselines are "
            + ", ".join(batchable_baselines())
        ) from None

    settings = {key: value for key, value in options.items() if value is not None}
    unrecognised = sorted(set(settings) - recognised_options)
    if unrecognised:
        raise ExperimentError(
            f"batched baseline {protocol!r} has unrecognised option(s) {unrecognised}; "
            f"recognised options are {sorted(recognised_options)}"
        )
    if channel is None:
        channel = BinarySymmetricChannel(epsilon=epsilon)

    rng = spawn_generator(base_seed, "batch-baseline", protocol, n)
    network = PushGossipNetwork(size=n, allow_self_messages=allow_self_messages)
    return rule(
        n=n,
        num_replicates=num_replicates,
        network=network,
        channel=channel,
        rng=rng,
        correct_opinion=correct_opinion,
        **settings,
    )


def measurements_to_experiment_result(
    name: str,
    measurements: Sequence[Mapping[str, Any]],
    base_seed: int = 0,
    config: Optional[Mapping[str, Any]] = None,
) -> "Any":
    """Package per-replicate measurement mappings as an ``ExperimentResult``.

    Replicate ``i``'s measurements are recorded under the same identifying
    seed ``trial_seed(base_seed, name, i)`` that a serial run would use, so
    downstream summaries, tables and serialisation treat batched and serial
    experiments uniformly.  (The seed identifies the trial; the batch's
    randomness comes from the batch stream — see the module docstring's
    determinism contract.)  This is the assembly step shared by
    :func:`batch_to_experiment_result` and the stage-instrumented drivers
    (E4–E6), whose measurement keys are driver-specific.
    """
    from ..analysis.experiments import ExperimentResult, TrialResult

    seeds = trial_seeds(base_seed, name, len(measurements))
    result = ExperimentResult(name=name, config=dict(config or {}))
    for index, (seed, trial_measurements) in enumerate(zip(seeds, measurements)):
        result.trials.append(
            TrialResult(trial_index=index, seed=seed, measurements=dict(trial_measurements))
        )
    return result


def batch_to_experiment_result(
    name: str,
    batch: Any,
    base_seed: int = 0,
    config: Optional[Mapping[str, Any]] = None,
) -> "Any":
    """Package a batch as an :class:`~repro.analysis.experiments.ExperimentResult`.

    ``batch`` is any batch result exposing ``num_replicates`` and
    ``measurements`` (:class:`BatchBroadcastResult`,
    :class:`BatchMajorityResult`, :class:`BatchBaselineResult`, or the E9
    :class:`~repro.exec.stage_batching.BatchWindowedResult`); see
    :func:`measurements_to_experiment_result` for the seed contract.
    """
    return measurements_to_experiment_result(
        name,
        [batch.measurements(index) for index in range(batch.num_replicates)],
        base_seed=base_seed,
        config=config,
    )


# ----------------------------------------------------------------------
# Sweep dispatch: full settings forwarding plus point-level parallelism
# ----------------------------------------------------------------------

#: Instance settings understood by the broadcast batch simulator.
_BROADCAST_SETTINGS = frozenset({"n", "epsilon", "correct_opinion", "allow_self_messages"})

#: Instance settings understood by the majority batch simulator.
_MAJORITY_SETTINGS = frozenset(
    {
        "n",
        "epsilon",
        "initial_set_size",
        "majority_bias",
        "majority_opinion",
        "allow_self_messages",
        "start_phase",
    }
)

#: Grid-key aliases used by the serial E8 driver, normalised on dispatch.
_MAJORITY_ALIASES: Dict[str, str] = {"set_size": "initial_set_size", "bias": "majority_bias"}

#: Instance settings understood by the baseline batch simulator: the shared
#: instance settings plus the union of every per-protocol option (the exact
#: per-protocol subsets are enforced by run_baseline_batch itself).
_BASELINE_SETTINGS = frozenset(
    {"n", "epsilon", "protocol", "correct_opinion", "allow_self_messages"}
) | frozenset().union(*(options for _, options in _BASELINE_BATCH_RULES.values()))

#: Calibration overrides forwarded to ProtocolParameters.calibrated, derived
#: from its signature so the two can never drift apart.
_CALIBRATION_SETTINGS = frozenset(
    parameter_name
    for parameter_name, parameter in inspect.signature(
        ProtocolParameters.calibrated
    ).parameters.items()
    if parameter.kind is inspect.Parameter.KEYWORD_ONLY
)

_SHAPES = ("auto", "broadcast", "majority", "baseline")


def _normalise_majority_aliases(settings: Dict[str, Any], context: str) -> Dict[str, Any]:
    """Rewrite the serial E8 grid keys (``set_size``/``bias``) onto the
    canonical majority settings, in place.

    Applied to ``defaults`` and to each point *before* they are merged, so a
    point may override a default through either spelling (per-point settings
    win, as documented); naming both spellings in the *same* mapping is
    ambiguous and raises.
    """
    for alias, canonical in _MAJORITY_ALIASES.items():
        if alias in settings:
            if canonical in settings:
                raise ExperimentError(f"{context} sets both {alias!r} and {canonical!r}")
            settings[canonical] = settings.pop(alias)
    return settings


def _resolve_batch_task(
    point_name: str,
    settings: Dict[str, Any],
    trials_per_point: int,
    base_seed: int,
    shape: str,
) -> Tuple[Callable[..., Any], Dict[str, Any]]:
    """Map one grid point's merged (alias-normalised) settings onto
    ``(batch_fn, kwargs)``.

    Auto-detects the protocol shape when asked, checks required settings,
    and rejects anything unrecognised so that a typo'd or unsupported
    setting fails loudly instead of being silently dropped (the regression
    the serial path never had).
    """
    resolved_shape = shape
    if resolved_shape == "auto":
        majority_markers = {"initial_set_size", "majority_bias"}
        if "protocol" in settings:
            resolved_shape = "baseline"
        elif majority_markers & set(settings):
            resolved_shape = "majority"
        else:
            resolved_shape = "broadcast"

    if resolved_shape == "broadcast":
        recognised = _BROADCAST_SETTINGS | _CALIBRATION_SETTINGS
        required = ("n", "epsilon")
        batch_fn: Callable[..., Any] = run_broadcast_batch
    elif resolved_shape == "baseline":
        recognised = _BASELINE_SETTINGS
        required = ("n", "epsilon", "protocol")
        batch_fn = run_baseline_batch
    else:
        recognised = _MAJORITY_SETTINGS | _CALIBRATION_SETTINGS
        required = ("n", "epsilon", "initial_set_size", "majority_bias")
        batch_fn = run_majority_batch

    missing = [key for key in required if key not in settings]
    if missing:
        raise ExperimentError(
            f"batched {resolved_shape} sweep point {point_name} must define "
            + ", ".join(missing)
        )
    unrecognised = sorted(set(settings) - recognised)
    if unrecognised:
        raise ExperimentError(
            f"batched {resolved_shape} sweep point {point_name} has unrecognised "
            f"setting(s) {unrecognised}; recognised settings are {sorted(recognised)}"
        )

    # Coerce the numeric settings exactly as the serial trial functions do
    # (e.g. E8's int(point["set_size"])), so values a serial sweep accepts —
    # a float grid axis, a numpy integer — work identically batched.
    kwargs = dict(settings)
    kwargs["n"] = int(kwargs["n"])
    kwargs["epsilon"] = float(kwargs["epsilon"])
    if "initial_set_size" in kwargs:
        kwargs["initial_set_size"] = int(kwargs["initial_set_size"])
    if "majority_bias" in kwargs:
        kwargs["majority_bias"] = float(kwargs["majority_bias"])
    if kwargs.get("start_phase") is not None:
        kwargs["start_phase"] = int(kwargs["start_phase"])
    for round_setting in ("max_rounds", "check_every", "rounds", "threshold"):
        if kwargs.get(round_setting) is not None:
            kwargs[round_setting] = int(kwargs[round_setting])
    kwargs["num_replicates"] = trials_per_point
    kwargs["base_seed"] = derive_seed(base_seed, point_name, "batch")
    return batch_fn, kwargs


def run_sweep_batched(
    name: str,
    points: Iterable[Mapping[str, Any]],
    trials_per_point: int,
    base_seed: int = 0,
    defaults: Optional[Mapping[str, Any]] = None,
    shape: str = "auto",
    point_jobs: Optional[int] = None,
) -> "Any":
    """Batched counterpart of :func:`repro.analysis.sweeps.run_sweep`.

    Every grid point (merged over ``defaults``) is dispatched as a single
    :func:`run_broadcast_batch`, :func:`run_majority_batch` or
    :func:`run_baseline_batch` call with *all* its settings forwarded;
    unrecognised settings raise :class:`~repro.errors.ExperimentError`.
    Point naming and per-point seed derivation mirror ``run_sweep``
    (including the duplicate-label disambiguation of
    :func:`repro.analysis.sweeps.sweep_point_names`) so batched sweeps slot
    into the existing report builders unchanged.

    Parameters
    ----------
    name, points, trials_per_point, base_seed, defaults:
        As in :func:`repro.analysis.sweeps.run_sweep`; ``defaults`` supplies
        settings shared by every point, with per-point settings winning.
    shape:
        ``"broadcast"``, ``"majority"``, ``"baseline"``, or ``"auto"``
        (default) which picks the baseline simulator whenever a point names
        a ``protocol``, the majority simulator whenever a point defines an
        initial opinionated set, and the broadcast simulator otherwise.
    point_jobs:
        When set, independent grid points execute concurrently on one shared
        :class:`~concurrent.futures.ProcessPoolExecutor` (``0`` = one worker
        per CPU, ``1``/``None`` = in-process).  Per-point batch seeds are
        derived in the parent before dispatch and results are assembled in
        point order, so results are bit-identical to ``point_jobs=None``.
    """
    from ..analysis.sweeps import SweepPoint, SweepResult, sweep_point_names

    if trials_per_point < 1:
        raise ExperimentError("trials_per_point must be at least 1")
    if shape not in _SHAPES:
        raise ExperimentError(f"shape must be one of {_SHAPES}, got {shape!r}")
    # Alias keys only mean something to the majority simulator; leaving them
    # alone on a forced-broadcast sweep keeps "unrecognised setting" errors
    # pointing at the key the caller actually wrote.
    normalise = shape not in ("broadcast", "baseline")
    merged_defaults = dict(defaults or {})
    if normalise:
        _normalise_majority_aliases(merged_defaults, f"batched sweep {name!r} defaults")

    sweep_points = [SweepPoint.from_mapping(raw_point) for raw_point in points]
    point_names = sweep_point_names(name, sweep_points)
    tasks: List[Tuple[Callable[..., Any], Dict[str, Any]]] = []
    for point, point_name in zip(sweep_points, point_names):
        point_settings = point.as_dict()
        if normalise:
            _normalise_majority_aliases(point_settings, f"batched sweep point {point_name}")
        settings = {**merged_defaults, **point_settings}
        tasks.append(
            _resolve_batch_task(point_name, settings, trials_per_point, base_seed, shape)
        )

    jobs = pool.resolve_point_jobs(point_jobs, len(tasks))
    # A run-level backend (installed by run_experiment for --backend runs)
    # takes the whole task list even when point_jobs did not ask for a local
    # pool — that is how a batched sweep shards across remote workers with
    # zero driver changes.
    if jobs > 1 or pool.active_backend() is not None:
        batches = pool.run_tasks_in_pool(tasks, jobs)
    else:
        batches = [batch_fn(**kwargs) for batch_fn, kwargs in tasks]

    sweep = SweepResult(name=name)
    for point, point_name, batch in zip(sweep_points, point_names, batches):
        sweep.points.append(point)
        sweep.results.append(
            batch_to_experiment_result(
                point_name, batch, base_seed=base_seed, config=point.as_dict()
            )
        )
    return sweep


def run_broadcast_sweep_batched(
    name: str,
    points: Iterable[Mapping[str, Any]],
    trials_per_point: int,
    base_seed: int = 0,
    defaults: Optional[Mapping[str, Any]] = None,
    point_jobs: Optional[int] = None,
) -> "Any":
    """Broadcast-shaped convenience wrapper around :func:`run_sweep_batched`.

    Kept as the stable entry point of the broadcast-shaped drivers (E1–E3);
    every point/default setting is forwarded to :func:`run_broadcast_batch`
    (``correct_opinion``, ``allow_self_messages``, calibration overrides)
    and unrecognised settings raise :class:`~repro.errors.ExperimentError`.
    """
    return run_sweep_batched(
        name=name,
        points=points,
        trials_per_point=trials_per_point,
        base_seed=base_seed,
        defaults=defaults,
        shape="broadcast",
        point_jobs=point_jobs,
    )
