"""Vectorised batch execution of the noisy-broadcast protocol.

The serial execution path builds one :class:`~repro.substrate.engine.SimulationEngine`
per Monte-Carlo trial and pays Python-level bookkeeping (engine wiring,
metrics, tracing, per-round dataclasses) for every round of every trial.
Since all trials of one sweep point share ``(n, epsilon, parameters)`` — and
the protocol's round schedule is a deterministic function of those — ``R``
replicates can instead be simulated *simultaneously* as ``(R, n)`` NumPy
grids: one :meth:`~repro.substrate.network.PushGossipNetwork.deliver_batch`
call per round replaces ``R`` engine rounds.

Determinism contract
--------------------
* A batch run is fully determined by ``(n, epsilon, num_replicates,
  base_seed, parameters)``: two identical calls return identical arrays.
* Per-replicate dynamics are *statistically* equivalent to
  :func:`repro.core.broadcast.solve_noisy_broadcast` — same protocol, same
  schedule (the per-replicate round count is exactly equal), same
  distributions — but **not** bit-identical to serial trials, because the
  whole batch consumes one random stream instead of one stream tree per
  engine.  Experiments that must be replayable trial-for-trial (the default)
  use the serial or parallel runners in :mod:`repro.exec.runner`; ``--batch``
  trades that per-trial replayability for a large constant-factor speedup
  while keeping batch-level reproducibility.

The differential tests in ``tests/unit/exec/test_batching.py`` pin both
halves of the contract: exact equality where the paper's schedule is
deterministic (round counts), and distributional agreement for the stochastic
observables (success rate, message counts, final bias).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional

import numpy as np

from ..core.parameters import ProtocolParameters
from ..errors import ExperimentError, SimulationError
from ..substrate.network import PushGossipNetwork
from ..substrate.noise import BinarySymmetricChannel, NoiseChannel
from ..substrate.population import NO_OPINION
from ..substrate.rng import derive_seed, spawn_generator
from .runner import trial_seeds

__all__ = [
    "BatchBroadcastResult",
    "run_broadcast_batch",
    "batch_to_experiment_result",
    "run_broadcast_sweep_batched",
]


@dataclass(frozen=True)
class BatchBroadcastResult:
    """Per-replicate outcomes of a batched noisy-broadcast run.

    Attributes
    ----------
    n, epsilon, correct_opinion:
        The shared instance parameters.
    rounds:
        Round count — identical for every replicate because the paper's
        two-stage schedule is fixed by ``(n, epsilon)``; exactly equals the
        serial :class:`~repro.core.broadcast.BroadcastResult.rounds`.
    success:
        ``(R,)`` boolean vector: did every agent finish holding ``B``?
    final_correct_fraction:
        ``(R,)`` fraction of agents holding ``B`` at the end.
    messages_sent:
        ``(R,)`` total messages pushed, per replicate.
    stage1_bias:
        ``(R,)`` population bias towards ``B`` at the end of Stage I (the
        paper's ``delta_1``).
    """

    n: int
    epsilon: float
    correct_opinion: int
    rounds: int
    success: np.ndarray
    final_correct_fraction: np.ndarray
    messages_sent: np.ndarray
    stage1_bias: np.ndarray

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R`` in the batch."""
        return int(self.success.size)

    def measurements(self, index: int) -> Dict[str, Any]:
        """Replicate ``index`` as a trial-measurement mapping.

        The keys form a superset of what the broadcast-shaped experiment
        drivers (E1–E3) record serially, so batched and serial sweeps produce
        interchangeable :class:`~repro.analysis.experiments.ExperimentResult`
        tables.
        """
        return {
            "rounds": int(self.rounds),
            "messages": int(self.messages_sent[index]),
            "messages_per_agent": float(self.messages_sent[index] / self.n),
            "success": bool(self.success[index]),
            "final_correct_fraction": float(self.final_correct_fraction[index]),
            "stage1_bias": float(self.stage1_bias[index]),
        }


def run_broadcast_batch(
    n: int,
    epsilon: float,
    num_replicates: int,
    base_seed: int = 0,
    correct_opinion: int = 1,
    parameters: Optional[ProtocolParameters] = None,
    channel: Optional[NoiseChannel] = None,
    allow_self_messages: bool = False,
    **calibration_overrides: float,
) -> BatchBroadcastResult:
    """Simulate ``num_replicates`` independent noisy-broadcast runs at once.

    This is the batched counterpart of
    :func:`repro.core.broadcast.solve_noisy_broadcast`: the same two-stage
    "breathe before speaking" protocol (Stage I spreading in synchronized
    layers, Stage II majority boosting), executed for all replicates
    simultaneously on ``(R, n)`` grids.

    Parameters
    ----------
    n, epsilon:
        Instance size and noise margin, shared by every replicate.
    num_replicates:
        Number of independent replicates ``R``.
    base_seed:
        Root seed of the batch stream; fixing it makes the whole batch
        reproducible.
    correct_opinion:
        The source's opinion ``B``.
    parameters:
        Optional explicit :class:`ProtocolParameters`; the calibrated preset
        is used when omitted (``calibration_overrides`` are forwarded).
    channel:
        Override the default :class:`BinarySymmetricChannel`.
    allow_self_messages:
        Allow agents to push messages to themselves.
    """
    if num_replicates < 1:
        raise ExperimentError("num_replicates must be at least 1")
    if parameters is None:
        parameters = ProtocolParameters.calibrated(n, epsilon, **calibration_overrides)
    if parameters.n != n:
        raise SimulationError(f"parameters were built for n={parameters.n}, not n={n}")
    if channel is None:
        channel = BinarySymmetricChannel(epsilon=epsilon)

    rng = spawn_generator(base_seed, "batch-broadcast", n)
    network = PushGossipNetwork(size=n, allow_self_messages=allow_self_messages)
    R = num_replicates

    # Replicate state, mirroring Population: opinion grid and activation grid.
    opinions = np.full((R, n), NO_OPINION, dtype=np.int8)
    activated = np.zeros((R, n), dtype=bool)
    opinions[:, 0] = correct_opinion  # agent 0 is the source in every replicate
    activated[:, 0] = True
    messages_sent = np.zeros(R, dtype=np.int64)
    rounds = 0

    # ------------------------------------------------------------------
    # Stage I — spreading in synchronized layers (Section 2.1).
    # ------------------------------------------------------------------
    stage1 = parameters.stage1
    for phase in range(stage1.num_phases):
        phase_length = stage1.phase_length(phase)
        # Senders are fixed at phase start: activated and opinionated agents.
        send_mask = activated & (opinions != NO_OPINION)
        bits = np.where(send_mask, opinions, 0).astype(np.int8)
        dormant = ~activated

        # Per-agent reservoir sampling over the messages heard this phase,
        # exactly as ReceptionAccumulator does serially.
        heard_counts = np.zeros((R, n), dtype=np.int64)
        chosen = np.full((R, n), NO_OPINION, dtype=np.int8)
        senders_per_replicate = send_mask.sum(axis=1)
        for _ in range(phase_length):
            report = network.deliver_batch(send_mask, bits, channel, rng)
            rows, cols = np.nonzero(report.accepted & dormant)
            if rows.size:
                counts = heard_counts[rows, cols] + 1
                heard_counts[rows, cols] = counts
                replace = rng.random(rows.size) < 1.0 / counts
                keep_rows, keep_cols = rows[replace], cols[replace]
                chosen[keep_rows, keep_cols] = report.bits[keep_rows, keep_cols]
            messages_sent += senders_per_replicate
            rounds += 1

        newly = (heard_counts > 0) & dormant
        activated |= newly
        opinions = np.where(newly, chosen, opinions)

    correct = (opinions == correct_opinion).sum(axis=1)
    wrong = ((opinions != correct_opinion) & (opinions != NO_OPINION)).sum(axis=1)
    opinionated = correct + wrong
    stage1_bias = np.where(
        opinionated > 0, (correct - wrong) / np.maximum(2 * opinionated, 1), 0.0
    )

    # ------------------------------------------------------------------
    # Stage II — boosting by repeated noisy majorities (Section 2.2).
    # ------------------------------------------------------------------
    stage2 = parameters.stage2
    for phase in range(1, stage2.num_phases + 1):
        phase_length = stage2.phase_length(phase)
        subset_size = phase_length // 2
        # Messages sent during the phase all carry the phase-start opinion.
        snapshot = opinions.copy()
        send_mask = snapshot != NO_OPINION
        bits = np.where(send_mask, snapshot, 0).astype(np.int8)
        senders_per_replicate = send_mask.sum(axis=1)

        totals = np.zeros((R, n), dtype=np.int64)
        ones = np.zeros((R, n), dtype=np.int64)
        for _ in range(phase_length):
            report = network.deliver_batch(send_mask, bits, channel, rng)
            totals += report.accepted
            ones += report.bits  # zero wherever nothing was accepted
            messages_sent += senders_per_replicate
            rounds += 1

        successful = totals >= subset_size
        # Majority of a uniformly random subset of exactly subset_size samples,
        # simulated exactly by a hypergeometric draw (cf. stage2.majority_of_
        # random_subset).  Parameters are clamped to a legal configuration at
        # unsuccessful positions; those draws are discarded below.
        safe_ones = np.where(successful, ones, subset_size)
        safe_zeros = np.where(successful, totals - ones, 0)
        ones_in_subset = rng.hypergeometric(safe_ones, safe_zeros, subset_size)
        doubled = 2 * ones_in_subset
        majority = np.where(doubled > subset_size, 1, 0).astype(np.int8)
        ties = doubled == subset_size
        if np.any(ties):
            tie_break = rng.integers(0, 2, size=(R, n)).astype(np.int8)
            majority = np.where(ties, tie_break, majority)
        opinions = np.where(successful, majority, opinions)
        activated |= successful

    correct_final = (opinions == correct_opinion).sum(axis=1)
    return BatchBroadcastResult(
        n=n,
        epsilon=float(epsilon),
        correct_opinion=int(correct_opinion),
        rounds=rounds,
        success=correct_final == n,
        final_correct_fraction=correct_final / n,
        messages_sent=messages_sent,
        stage1_bias=stage1_bias.astype(float),
    )


def batch_to_experiment_result(
    name: str,
    batch: BatchBroadcastResult,
    base_seed: int = 0,
    config: Optional[Mapping[str, Any]] = None,
) -> "Any":
    """Package a batch as an :class:`~repro.analysis.experiments.ExperimentResult`.

    Trial ``i`` records replicate ``i``'s measurements under the same
    identifying seed ``trial_seed(base_seed, name, i)`` that a serial run
    would use, so downstream summaries, tables and serialisation treat
    batched and serial experiments uniformly.  (The seed identifies the
    trial; the batch's randomness comes from the batch stream — see the
    module docstring's determinism contract.)
    """
    from ..analysis.experiments import ExperimentResult, TrialResult

    seeds = trial_seeds(base_seed, name, batch.num_replicates)
    result = ExperimentResult(name=name, config=dict(config or {}))
    for index, seed in enumerate(seeds):
        result.trials.append(
            TrialResult(trial_index=index, seed=seed, measurements=batch.measurements(index))
        )
    return result


def run_broadcast_sweep_batched(
    name: str,
    points: Iterable[Mapping[str, Any]],
    trials_per_point: int,
    base_seed: int = 0,
    defaults: Optional[Mapping[str, Any]] = None,
) -> "Any":
    """Batched counterpart of :func:`repro.analysis.sweeps.run_sweep` for broadcast grids.

    Every grid point must (together with ``defaults``) provide ``n`` and
    ``epsilon``; all ``trials_per_point`` replicates of one point run as a
    single :func:`run_broadcast_batch` call.  Point naming and per-point seed
    derivation mirror ``run_sweep`` so batched sweeps slot into the existing
    report builders unchanged.
    """
    from ..analysis.sweeps import SweepPoint, SweepResult

    if trials_per_point < 1:
        raise ExperimentError("trials_per_point must be at least 1")
    merged_defaults = dict(defaults or {})
    sweep = SweepResult(name=name)
    for raw_point in points:
        point = SweepPoint.from_mapping(raw_point)
        settings = {**merged_defaults, **point.as_dict()}
        if "n" not in settings or "epsilon" not in settings:
            raise ExperimentError(
                f"batched broadcast sweep point {point.label()} must define n and epsilon"
            )
        point_name = f"{name}[{point.label()}]"
        batch = run_broadcast_batch(
            n=int(settings["n"]),
            epsilon=float(settings["epsilon"]),
            num_replicates=trials_per_point,
            base_seed=derive_seed(base_seed, point_name, "batch"),
        )
        sweep.points.append(point)
        sweep.results.append(
            batch_to_experiment_result(
                point_name, batch, base_seed=base_seed, config=point.as_dict()
            )
        )
    return sweep
