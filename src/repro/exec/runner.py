"""Trial runners: serial and process-parallel Monte-Carlo execution.

Every experiment in this reproduction is a set of independent trials, each
fully determined by ``(seed, trial_index)``.  A *trial runner* is the policy
object that decides **where** those trials execute:

* :class:`SerialTrialRunner` — the deterministic reference: an in-process
  loop, byte-for-byte identical to the historical behaviour of
  :func:`repro.analysis.experiments.run_trials`.
* :class:`ParallelTrialRunner` — a worker fan-out with the
  **identical-results contract**: per-trial seeds are derived in the parent
  exactly as the serial runner derives them, and results are collected in
  trial order, so for the same ``(name, trial_fn, num_trials, base_seed)``
  both runners return equal
  :class:`~repro.analysis.experiments.ExperimentResult` objects.  *Where*
  the trials execute is delegated to an execution backend
  (:mod:`repro.exec.backends`): the backend installed for the run when
  there is one — a persistent local pool, remote work-stealing workers —
  and a per-call local process pool otherwise (the historical behaviour).
  Trial functions that cannot be pickled fall back to serial execution
  (recorded in :attr:`ParallelTrialRunner.last_fallback_reason`) rather
  than failing.

Seed derivation is the single function :func:`trial_seed`, shared by both
runners and by the batched path in :mod:`repro.exec.batching`; it is the same
:class:`numpy.random.SeedSequence` machinery that
:meth:`repro.substrate.rng.RandomSource.child` uses, so per-trial streams are
statistically independent and stable across processes and platforms.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional

from ..errors import ExperimentError
from ..substrate.rng import derive_seed, derive_seeds
from . import pool

__all__ = [
    "trial_seed",
    "trial_seeds",
    "TrialRunner",
    "SerialTrialRunner",
    "ParallelTrialRunner",
    "resolve_runner",
]

#: Signature of a trial function: ``(seed, trial_index) -> measurements``.
TrialFunction = Callable[[int, int], Mapping[str, Any]]


def trial_seed(base_seed: int, name: str, trial_index: int) -> int:
    """Seed of trial ``trial_index`` of experiment ``name``.

    Single source of truth used by every runner (serial, parallel and
    batched), guaranteeing that switching runners never changes which seed a
    given trial receives.
    """
    return derive_seed(base_seed, name, trial_index)


def trial_seeds(base_seed: int, name: str, num_trials: int) -> List[int]:
    """All per-trial seeds of an experiment, in trial order."""
    return [int(seed) for seed in derive_seeds(base_seed, num_trials, name)]


class TrialRunner(abc.ABC):
    """Strategy interface for executing the trials of one experiment."""

    @abc.abstractmethod
    def run(
        self,
        name: str,
        trial_fn: TrialFunction,
        num_trials: int,
        base_seed: int = 0,
        config: Optional[Mapping[str, Any]] = None,
    ) -> "Any":
        """Run ``num_trials`` trials and return an ``ExperimentResult``.

        Implementations must derive per-trial seeds with :func:`trial_seed`
        and preserve trial order in the returned result.
        """

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(name: str, num_trials: int) -> None:
        if num_trials < 1:
            raise ExperimentError("num_trials must be at least 1")

    @staticmethod
    def _package(
        name: str,
        config: Optional[Mapping[str, Any]],
        seeds: List[int],
        raw_measurements: List[Any],
    ) -> "Any":
        """Assemble an ``ExperimentResult``, validating each trial's return value."""
        # Imported late: repro.analysis.experiments delegates to this module,
        # so a top-level import either way would be circular.
        from ..analysis.experiments import ExperimentResult, TrialResult

        result = ExperimentResult(name=name, config=dict(config or {}))
        for trial_index, (seed, measurements) in enumerate(zip(seeds, raw_measurements)):
            if not isinstance(measurements, Mapping):
                raise ExperimentError(
                    f"trial function for {name!r} must return a mapping, "
                    f"got {type(measurements).__name__}"
                )
            result.trials.append(
                TrialResult(trial_index=trial_index, seed=seed, measurements=dict(measurements))
            )
        return result


@dataclass
class SerialTrialRunner(TrialRunner):
    """Run every trial in-process, in order — the deterministic reference."""

    def run(
        self,
        name: str,
        trial_fn: TrialFunction,
        num_trials: int,
        base_seed: int = 0,
        config: Optional[Mapping[str, Any]] = None,
    ) -> "Any":
        """Execute the trials sequentially in the current process."""
        self._validate(name, num_trials)
        seeds = trial_seeds(base_seed, name, num_trials)
        raw = [trial_fn(seed, index) for index, seed in enumerate(seeds)]
        return self._package(name, config, seeds, raw)


@dataclass
class ParallelTrialRunner(TrialRunner):
    """Fan trials out over a process pool; equal results to the serial runner.

    Parameters
    ----------
    jobs:
        Number of worker processes; ``None`` means one per CPU.  ``jobs=1``
        short-circuits to the serial path (no pool overhead).

    Attributes
    ----------
    last_fallback_reason:
        After :meth:`run`: ``None`` when the pool was used, otherwise a short
        human-readable reason why the runner fell back to serial execution
        (e.g. an unpicklable closure).  The results are identical either way;
        the attribute exists so benchmarks and tests can assert which path
        actually executed.
    """

    jobs: Optional[int] = None
    last_fallback_reason: Optional[str] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.jobs is not None and self.jobs < 1:
            raise ExperimentError(f"jobs must be a positive integer, got {self.jobs}")

    @property
    def effective_jobs(self) -> int:
        """The worker count actually used (resolves ``jobs=None`` to the CPU count)."""
        return self.jobs if self.jobs is not None else pool.default_jobs()

    def run(
        self,
        name: str,
        trial_fn: TrialFunction,
        num_trials: int,
        base_seed: int = 0,
        config: Optional[Mapping[str, Any]] = None,
    ) -> "Any":
        """Execute the trials across worker processes (serial fallback if needed)."""
        self._validate(name, num_trials)
        seeds = trial_seeds(base_seed, name, num_trials)

        # A run-level backend owns its own worker fleet (remote workers may
        # not even be local CPUs), so the local-pool economics below do not
        # apply: always dispatch through it.
        backend_installed = pool.active_backend() is not None
        jobs = min(self.effective_jobs, num_trials)
        if jobs <= 1 and not backend_installed:
            self.last_fallback_reason = "single worker requested; pool not worth spawning"
            raw = [trial_fn(seed, index) for index, seed in enumerate(seeds)]
            return self._package(name, config, seeds, raw)

        pickle_problem = pool.picklability_error(trial_fn)
        if pickle_problem is not None:
            self.last_fallback_reason = f"trial function is not picklable ({pickle_problem})"
            raw = [trial_fn(seed, index) for index, seed in enumerate(seeds)]
            return self._package(name, config, seeds, raw)

        self.last_fallback_reason = None
        # Delegates to the run's execution backend: the active backend when
        # one is installed (persistent local pool, remote workers), else a
        # per-call local pool with this runner's worker count.
        raw = pool.run_trials_in_pool(trial_fn, seeds, jobs, name=name)
        return self._package(name, config, seeds, raw)


def resolve_runner(jobs: Optional[int]) -> TrialRunner:
    """Map a ``--jobs`` style option to a runner instance.

    ``None`` or ``1`` selects :class:`SerialTrialRunner`; anything larger (or
    ``0``, meaning "all CPUs") selects a :class:`ParallelTrialRunner`.
    """
    if jobs is None or jobs == 1:
        return SerialTrialRunner()
    if jobs == 0:
        return ParallelTrialRunner(jobs=None)
    if jobs < 0:
        raise ExperimentError(f"jobs must be non-negative, got {jobs}")
    return ParallelTrialRunner(jobs=jobs)
