"""Trial-execution subsystem: serial, process-parallel and batched runners.

The analysis layer (:mod:`repro.analysis`) defines *what* a Monte-Carlo
experiment is — trial functions, seed bookkeeping, result containers.  This
package defines *how* the trials execute:

* :mod:`repro.exec.runner` — :class:`SerialTrialRunner` (the deterministic
  reference) and :class:`ParallelTrialRunner` (a process-pool fan-out with an
  identical-results-for-identical-seeds contract and automatic serial
  fallback for unpicklable trial functions);
* :mod:`repro.exec.backends` — the pluggable execution-backend layer ("who
  runs a task list"): the in-process reference, a persistent local process
  pool reused across sweep-point families, and a remote work-stealing
  backend that ``python -m repro.worker`` processes attach to — all behind
  one ordered-results contract, so every backend is bit-identical;
* :mod:`repro.exec.pool` — the dispatch plumbing between the runners/sweeps
  and the backends (task construction, picklability probing, backend
  routing with the historical per-call pool as the fallback);
* :mod:`repro.exec.batching` — a vectorised path that simulates ``R``
  independent replicates of the noisy push-gossip protocols (broadcast,
  majority consensus *and* the Section 1.6 / Section 1.4 baseline family)
  as ``(R, n)`` NumPy grids instead of one engine per trial, plus a generic
  batched sweep dispatcher with an optional point-parallel mode (one shared
  pool across independent grid points);
* :mod:`repro.exec.stage_batching` — the instrumented ``(R, n)`` stage
  kernels underneath the batched protocols: Stage I / Stage II round loops
  with per-phase replicate-vector measurements (``X_i`` / ``Y_i`` /
  ``eps_i`` / ``delta_i``) for the stage-level experiments E4–E6, and the
  batched Section-3 executors (bounded skew, clock-free) for E9;
* :mod:`repro.exec.fault_batching` — the fault-injected ``(R, n)`` rules for
  E12: the paper protocol under a :mod:`repro.substrate.faults` model (or a
  non-uniform contact topology) and the batched phased approximate-consensus
  comparator, both differentially pinned against their serial references.

Experiment drivers accept a ``runner=`` argument (surfaced as ``--jobs`` on
the CLI) and — every driver, E1–E12 — a ``batch=`` flag (surfaced as
``--batch``; ``--jobs`` composes with it via point parallelism where the
driver sweeps independent cells); see ``docs/ARCHITECTURE.md`` for the
determinism contract of each path.
"""

from __future__ import annotations

import os

from .batching import (
    BatchBaselineResult,
    BatchBroadcastResult,
    BatchMajorityResult,
    batch_to_experiment_result,
    batchable_baselines,
    measurements_to_experiment_result,
    run_baseline_batch,
    run_broadcast_batch,
    run_broadcast_sweep_batched,
    run_majority_batch,
    run_sweep_batched,
)
from .fault_batching import (
    BatchConsensusResult,
    BatchFaultBroadcastResult,
    run_consensus_comparator_batch,
    run_faulty_broadcast_batch,
)
from .stage_batching import (
    BatchWindowedResult,
    StageOneBatchResult,
    StageTwoBatchResult,
    run_bounded_skew_batch,
    run_clock_free_batch,
    run_stage1_batch,
    run_stage1_instrumented,
    run_stage2_batch,
    run_stage2_instrumented,
)
from .backends import (
    ExecutionBackend,
    InProcessBackend,
    LocalPoolBackend,
    RemoteWorkerBackend,
    Task,
    active_backend,
    create_backend,
    use_backend,
)
from .runner import (
    ParallelTrialRunner,
    SerialTrialRunner,
    TrialRunner,
    resolve_runner,
    trial_seed,
    trial_seeds,
)

__all__ = [
    "TrialRunner",
    "SerialTrialRunner",
    "ParallelTrialRunner",
    "resolve_runner",
    "runner_from_env",
    "ExecutionBackend",
    "InProcessBackend",
    "LocalPoolBackend",
    "RemoteWorkerBackend",
    "Task",
    "active_backend",
    "create_backend",
    "use_backend",
    "trial_seed",
    "trial_seeds",
    "BatchBroadcastResult",
    "BatchMajorityResult",
    "BatchBaselineResult",
    "run_broadcast_batch",
    "run_majority_batch",
    "run_baseline_batch",
    "batchable_baselines",
    "batch_to_experiment_result",
    "measurements_to_experiment_result",
    "run_sweep_batched",
    "run_broadcast_sweep_batched",
    "StageOneBatchResult",
    "StageTwoBatchResult",
    "BatchWindowedResult",
    "run_stage1_batch",
    "run_stage2_batch",
    "run_stage1_instrumented",
    "run_stage2_instrumented",
    "run_bounded_skew_batch",
    "run_clock_free_batch",
    "BatchFaultBroadcastResult",
    "BatchConsensusResult",
    "run_faulty_broadcast_batch",
    "run_consensus_comparator_batch",
]


def runner_from_env(variable: str = "REPRO_JOBS") -> TrialRunner:
    """Build a runner from an environment variable (used by the benchmarks).

    The variable holds the worker count with the same convention as the CLI's
    ``--jobs`` flag: unset or ``1`` → serial, ``0`` → one worker per CPU,
    ``k > 1`` → ``k`` workers.
    """
    raw = os.environ.get(variable, "").strip()
    if not raw:
        return SerialTrialRunner()
    return resolve_runner(int(raw))
