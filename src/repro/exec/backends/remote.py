"""Remote workers attached over a socket: the distributed execution backend.

:class:`RemoteWorkerBackend` hosts a :class:`multiprocessing.managers.BaseManager`
server holding two queues; any number of ``python -m repro.worker`` processes
— on this machine or on other hosts that can reach the endpoint — connect
and pull task chunks off the shared queue (work-stealing: whichever worker
is idle takes the next chunk).  The parent side runs
:func:`~repro.exec.backends.dispatch.dispatch_chunks`, which owns the
chunking, generation-tagged messaging, capped retry/requeue on worker death
(plus an opt-in per-chunk timeout), heartbeat-based eviction and —
crucially — point-order result assembly, so
a sweep sharded over a flaky fleet of workers still produces bit-identical
:class:`~repro.analysis.experiments.ExperimentResult` payloads (all seeds
were derived in the parent before dispatch; tasks are pure).

For single-host convenience (and the CI smoke gate), ``workers=N`` spawns
``N`` local worker subprocesses attached via the loopback endpoint, so
``repro-flip experiment E8 --backend remote`` works out of the box while the
same run scales to external fleets by leaving ``workers=0`` and pointing
real workers at ``--workers-endpoint``.
"""

from __future__ import annotations

import os
import queue
import secrets
import subprocess
import sys
from multiprocessing.managers import BaseManager
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ...errors import ExperimentError
from .base import ExecutionBackend, Task
from .dispatch import DispatchSettings, dispatch_chunks

__all__ = [
    "AUTHKEY_ENV",
    "RemoteWorkerBackend",
    "connect_queues",
    "is_loopback",
    "parse_endpoint",
]

#: Environment variable carrying the shared secret to worker processes.
#: Spawned workers receive the key this way (never on argv, where it would
#: be visible in process listings); external workers may export it instead
#: of passing ``--authkey``.
AUTHKEY_ENV = "REPRO_WORKER_AUTHKEY"

# ----------------------------------------------------------------------
# Queue manager plumbing.  The server process owns the two queues; parent
# and workers both talk to them through proxies.  The singletons live in
# the *server* process (BaseManager.start forks one), so two backends in
# one parent get two servers and therefore two independent queue pairs.
# ----------------------------------------------------------------------

_SERVER_TASK_QUEUE: "queue.Queue" = queue.Queue()
_SERVER_RESULT_QUEUE: "queue.Queue" = queue.Queue()


def _server_task_queue() -> "queue.Queue":
    return _SERVER_TASK_QUEUE


def _server_result_queue() -> "queue.Queue":
    return _SERVER_RESULT_QUEUE


class _QueueManager(BaseManager):
    """Manager exposing the task and result queues over the endpoint."""


_QueueManager.register("get_task_queue", callable=_server_task_queue)
_QueueManager.register("get_result_queue", callable=_server_result_queue)


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """Parse ``"host:port"`` into an address tuple (port 0 = auto-assign)."""
    host, separator, port = endpoint.rpartition(":")
    if not separator or not host:
        raise ExperimentError(
            f"workers endpoint must be HOST:PORT (e.g. 127.0.0.1:0), got {endpoint!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ExperimentError(f"workers endpoint port must be an integer, got {port!r}")


def is_loopback(host: str) -> bool:
    """Whether ``host`` can only be reached from this machine."""
    return host in ("localhost", "::1") or host.startswith("127.")


def connect_queues(endpoint: str, authkey: str) -> Tuple[Any, Any]:
    """Attach to a backend's endpoint; returns ``(task_queue, result_queue)`` proxies.

    The worker side of the handshake (used by :mod:`repro.worker`).
    """
    manager = _QueueManager(address=parse_endpoint(endpoint), authkey=authkey.encode())
    manager.connect()
    return manager.get_task_queue(), manager.get_result_queue()


class RemoteWorkerBackend(ExecutionBackend):
    """Shard task lists across external worker processes with work-stealing.

    Parameters
    ----------
    endpoint:
        ``"host:port"`` the queue server binds; port ``0`` (the default)
        lets the OS pick one — read the resolved value from
        :attr:`address` / :meth:`describe` to point workers at it.
    workers:
        Number of local worker subprocesses to auto-spawn against the
        loopback endpoint (``0`` = none; attach external workers instead).
    authkey:
        Shared secret for the manager connection.  ``None`` (the default)
        generates a random per-run key — safe on any endpoint, and handed
        to auto-spawned workers through the :data:`AUTHKEY_ENV` environment
        variable.  A **non-loopback** endpoint requires an explicit key
        (the manager transport unpickles payloads, so a guessable key on a
        reachable port is remote code execution); external workers present
        it via ``--authkey`` or :data:`AUTHKEY_ENV`.
    chunk_size / chunk_timeout / heartbeat_timeout / max_attempts /
    startup_timeout:
        Dispatch tunables, see :class:`~repro.exec.backends.dispatch.DispatchSettings`.
        ``chunk_timeout`` is ``None`` by default — worker liveness is
        governed by heartbeats; set it only as an explicit hard per-chunk
        wall-time budget.
    """

    name = "remote"

    def __init__(
        self,
        endpoint: str = "127.0.0.1:0",
        workers: int = 0,
        authkey: Optional[str] = None,
        chunk_size: int = 1,
        chunk_timeout: Optional[float] = None,
        heartbeat_timeout: float = 15.0,
        max_attempts: int = 2,
        startup_timeout: float = 60.0,
    ) -> None:
        if workers < 0:
            raise ExperimentError(f"remote backend workers must be non-negative, got {workers}")
        host, _ = parse_endpoint(endpoint)
        if authkey is None and not is_loopback(host):
            raise ExperimentError(
                f"remote backend endpoint {endpoint!r} is reachable from other hosts: "
                "an explicit authkey is required (pass the same key to workers via "
                f"--authkey or the {AUTHKEY_ENV} environment variable)"
            )
        self.endpoint = endpoint
        self.workers = workers
        self.authkey = authkey if authkey is not None else secrets.token_hex(16)
        self.settings = DispatchSettings(
            chunk_size=chunk_size,
            chunk_timeout=chunk_timeout,
            heartbeat_timeout=heartbeat_timeout,
            max_attempts=max_attempts,
            startup_timeout=startup_timeout,
        )
        self._manager: Optional[_QueueManager] = None
        self._task_queue: Optional[Any] = None
        self._result_queue: Optional[Any] = None
        self._spawned: List[subprocess.Popen] = []
        self._workers_seen: Set[str] = set()
        self._generation = 0
        self._chunks_dispatched = 0

    @property
    def address(self) -> Optional[str]:
        """The resolved ``host:port`` workers should attach to (after start)."""
        if self._manager is None:
            return None
        host, port = self._manager.address  # type: ignore[misc]
        return f"{host}:{port}"

    def start(self) -> "RemoteWorkerBackend":
        """Bind the queue server and auto-spawn local workers if requested."""
        if self._manager is not None:
            return self
        manager = _QueueManager(
            address=parse_endpoint(self.endpoint), authkey=self.authkey.encode()
        )
        manager.start()
        self._manager = manager
        self._task_queue = manager.get_task_queue()
        self._result_queue = manager.get_result_queue()
        for _ in range(self.workers):
            # The authkey travels in the environment, not on argv, so it
            # never shows up in process listings.
            self._spawned.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.worker",
                        "--endpoint",
                        str(self.address),
                    ],
                    env={**os.environ, AUTHKEY_ENV: self.authkey},
                )
            )
        return self

    def close(self) -> None:
        """Stop workers (one sentinel each), reap spawned ones, shut the server down."""
        if self._manager is None:
            return
        try:
            # One sentinel per worker that ever attached (workers also
            # re-queue the sentinel as they exit, covering attaches the
            # dispatch loop never observed).
            for _ in range(max(len(self._spawned), len(self._workers_seen), 1)):
                self._task_queue.put(("stop",))
        except Exception:  # the server may already be gone; terminate below
            pass
        for process in self._spawned:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.terminate()
                process.wait(timeout=5)
        self._spawned = []
        self._workers_seen = set()
        self._manager.shutdown()
        self._manager = None
        self._task_queue = None
        self._result_queue = None

    def submit(self, tasks: Sequence[Task]) -> List[Any]:
        """Dispatch the tasks to the attached workers; ordered, retried, labelled."""
        self.start()
        # Each submit is its own dispatch generation: late messages from an
        # earlier submit's requeued chunks are discarded, never misread as
        # this dispatch's chunk ids (the bit-identity contract).
        self._generation += 1
        results = dispatch_chunks(
            tasks,
            self._task_queue,
            self._result_queue,
            self.settings,
            where=self.name,
            generation=self._generation,
            workers_seen=self._workers_seen,
        )
        self._chunks_dispatched += -(-len(tasks) // self.settings.chunk_size)
        return results

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly summary of the backend (recorded in run manifests)."""
        return {
            "name": self.name,
            "endpoint": self.address or self.endpoint,
            "workers_spawned": len(self._spawned),
            "chunk_size": self.settings.chunk_size,
            "max_attempts": self.settings.max_attempts,
            "chunks_dispatched": self._chunks_dispatched,
        }
