"""The :class:`ExecutionBackend` contract and the task unit it executes.

"Who runs a point task" used to be hard-coded: every dispatch site in
:mod:`repro.exec.pool` spun up its own throwaway
:class:`concurrent.futures.ProcessPoolExecutor`.  This module carves that
decision out into a small strategy interface:

* a :class:`Task` is one self-contained unit of work — a picklable callable
  with its arguments pre-resolved in the parent (including every seed), plus
  a ``context`` tuple naming what the task *is* (task index, sweep-point
  name, seed) so failures can be attributed;
* an :class:`ExecutionBackend` takes an ordered task list and returns the
  results **in task order**, whatever execution strategy it uses underneath
  (an in-process loop, a persistent local pool, remote workers pulling
  chunks off a queue).

The ordering half of the contract is what keeps the repository's bit-identity
pins alive: seeds are derived in the parent *before* ``submit`` and results
are assembled by task position, never by completion time, so a backend may
complete tasks in any order — including adversarially shuffled or retried
ones — without changing a single byte of the assembled
:class:`~repro.analysis.experiments.ExperimentResult`.

A backend is *installed* for the duration of one run with
:func:`use_backend`; the dispatch sites in :mod:`repro.exec.pool` consult
:func:`active_backend` and fall back to the historical per-call local pool
when none is installed, which is why no experiment driver needed to change.
"""

from __future__ import annotations

import abc
import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ...errors import ExperimentError

__all__ = [
    "Task",
    "run_task",
    "task_label",
    "task_failure_error",
    "ExecutionBackend",
    "active_backend",
    "use_backend",
]


@dataclass(frozen=True)
class Task:
    """One unit of work: ``fn(*args, **kwargs)`` with attribution context.

    Everything a task needs — the callable, its arguments, the seed buried in
    them — is resolved in the parent before the task is built, so executing a
    task is pure function application and its result is independent of
    *where* (or how many times) it runs.

    ``context`` is a tuple of ``(key, value)`` pairs used only for error
    attribution (e.g. ``(("point", "E8[...]"), ("seed", 12345))``); it never
    influences execution.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    context: Tuple[Tuple[str, Any], ...] = ()


def run_task(task: Task) -> Any:
    """Execute one task (shared by every backend and the remote workers)."""
    return task.fn(*task.args, **dict(task.kwargs))


def task_label(task: Task, index: int) -> str:
    """Human-readable attribution of one task, e.g. ``task 3 (point=..., seed=...)``."""
    details = ", ".join(f"{key}={value!r}" for key, value in task.context)
    return f"task {index}" + (f" ({details})" if details else "")


def task_failure_error(
    tasks: Sequence[Task], index: int, error: BaseException, *, where: str
) -> ExperimentError:
    """Build the labelled :class:`~repro.errors.ExperimentError` for a worker failure.

    A ``BrokenProcessPool`` or an exception raised inside a worker used to
    propagate with no indication of which point or seed failed; every pooled
    backend routes its failures through here so the raised error names the
    task (index, sweep-point name, seed) and the execution strategy that ran
    it.  ``index`` is the position of the first task whose result had not
    been collected when the failure surfaced — exact for in-task exceptions
    (results come back in order), a lower bound for a pool that died.
    """
    label = task_label(tasks[index], index) if 0 <= index < len(tasks) else f"task {index}"
    return ExperimentError(
        f"{where} execution failed at {label}: {type(error).__name__}: {error}"
    )


class ExecutionBackend(abc.ABC):
    """Strategy interface for executing an ordered list of :class:`Task`s.

    Lifecycle: :meth:`start` acquires resources (spawns the pool, binds the
    worker endpoint), :meth:`submit` may then be called any number of times
    — the whole point of the persistent backends is that one pool outlives
    many sweep-point families — and :meth:`close` releases everything.
    Backends are context managers (``with backend:`` is start/close).
    """

    #: Short machine-readable strategy name (also the CLI ``--backend`` value).
    name: str = "?"

    def start(self) -> "ExecutionBackend":
        """Acquire execution resources; idempotent.  Returns ``self``."""
        return self

    def close(self) -> None:
        """Release execution resources; idempotent."""

    @abc.abstractmethod
    def submit(self, tasks: Sequence[Task]) -> List[Any]:
        """Execute ``tasks`` and return their results **in task order**.

        Implementations may run tasks anywhere and complete them in any
        order, but the returned list must satisfy ``result[i] ==
        run_task(tasks[i])`` — the ordered-assembly half of the determinism
        contract.  Failures raise :class:`~repro.errors.ExperimentError`
        built by :func:`task_failure_error` (in-process execution keeps the
        raw exception, exactly like the historical serial path).
        """

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly summary of the backend (recorded in run manifests)."""
        return {"name": self.name}

    def __enter__(self) -> "ExecutionBackend":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.close()


#: The backend installed for the current run, if any (see :func:`use_backend`).
_ACTIVE_BACKEND: Optional[ExecutionBackend] = None


def active_backend() -> Optional[ExecutionBackend]:
    """The backend installed by :func:`use_backend`, or ``None``.

    ``None`` means "no backend chosen": dispatch sites keep their historical
    behaviour (in-process loops, per-call local pools).  Worker processes
    never inherit this module-level state — it does not cross the pickle
    boundary — so an installed pool backend cannot recursively spawn pools.
    """
    return _ACTIVE_BACKEND


@contextlib.contextmanager
def use_backend(backend: ExecutionBackend) -> Iterator[ExecutionBackend]:
    """Install ``backend`` as the active backend for the enclosed run.

    :func:`repro.api.run_experiment` wraps the driver invocation in this, so
    every dispatch site inside the driver — trial fan-out, point-parallel
    sweeps, batched task lists — routes through the one backend the user
    configured, with zero changes to the drivers themselves.  Nesting is
    rejected: one run, one backend.
    """
    global _ACTIVE_BACKEND
    if _ACTIVE_BACKEND is not None:
        raise ExperimentError(
            f"an execution backend ({_ACTIVE_BACKEND.name}) is already active; "
            "backends cannot be nested"
        )
    _ACTIVE_BACKEND = backend
    try:
        yield backend
    finally:
        _ACTIVE_BACKEND = None
