"""The two local backends: an in-process loop and a persistent process pool.

:class:`InProcessBackend` is the reference implementation of the
:class:`~repro.exec.backends.base.ExecutionBackend` contract — a plain
ordered loop in the calling process, byte-for-byte the historical serial
semantics (including raw exception propagation).

:class:`LocalPoolBackend` is the historical
:class:`concurrent.futures.ProcessPoolExecutor` fan-out with one crucial
difference: the pool is created once in :meth:`~LocalPoolBackend.start` and
reused across every :meth:`~LocalPoolBackend.submit` call of the run,
instead of being re-spawned per dispatch.  Multi-family drivers (a sweep
family per epsilon, per protocol, per fault model ...) used to pay a full
interpreter spawn-up per family; ``benchmarks/bench_backend_dispatch.py``
records the reuse win.  Every submission is chunked with
:func:`chunksize_for` so large task lists amortise per-task IPC.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from ...errors import ExperimentError
from .base import ExecutionBackend, Task, run_task, task_failure_error

__all__ = ["default_jobs", "chunksize_for", "InProcessBackend", "LocalPoolBackend"]

#: Target number of chunks handed to each worker, to amortise IPC overhead
#: while keeping the pool load-balanced.
CHUNKS_PER_WORKER = 4


def default_jobs() -> int:
    """Number of worker processes to use when the caller does not specify one."""
    return max(1, os.cpu_count() or 1)


def chunksize_for(num_tasks: int, jobs: int) -> int:
    """Chunk size yielding roughly :data:`CHUNKS_PER_WORKER` chunks per worker."""
    return max(1, num_tasks // max(1, jobs * CHUNKS_PER_WORKER))


class InProcessBackend(ExecutionBackend):
    """Execute every task in the calling process, in order.

    The deterministic reference: exactly the loop the dispatch sites ran
    before the backend layer existed, so exceptions propagate raw (no
    wrapping) and no pickling constraint applies to the task callables.
    """

    name = "in-process"

    def submit(self, tasks: Sequence[Task]) -> List[Any]:
        """Run the tasks sequentially in the current process."""
        return [run_task(task) for task in tasks]


class LocalPoolBackend(ExecutionBackend):
    """Fan tasks out over one persistent local process pool.

    Parameters
    ----------
    jobs:
        Worker-process count; ``None`` means one per CPU.

    Attributes
    ----------
    last_chunksize:
        The ``chunksize`` handed to the most recent ``pool.map`` — every
        submission is chunked (``tests/unit/exec/test_backends.py`` pins
        this, closing the historical gap where two of the three dispatch
        helpers paid per-task IPC).
    """

    name = "local"

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ExperimentError(f"local backend jobs must be a positive integer, got {jobs}")
        self.jobs = jobs
        self.last_chunksize: Optional[int] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def effective_jobs(self) -> int:
        """The worker count actually used (resolves ``jobs=None`` to the CPU count)."""
        return self.jobs if self.jobs is not None else default_jobs()

    def start(self) -> "LocalPoolBackend":
        """Spawn the worker pool (idempotent); reused by every ``submit``."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.effective_jobs)
        return self

    def close(self) -> None:
        """Shut the pool down cleanly (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def submit(self, tasks: Sequence[Task]) -> List[Any]:
        """Execute the tasks on the shared pool, collecting in task order.

        The pool preserves submission order in ``map`` regardless of which
        worker finishes first, so ordered assembly is structural.  A failure
        — an exception inside a worker, or the pool dying underneath us —
        is re-raised as a labelled :class:`~repro.errors.ExperimentError`
        naming the first uncollected task (its index, point and seed).
        """
        self.start()
        assert self._pool is not None  # for the type checker; start() just ran
        self.last_chunksize = chunksize_for(len(tasks), self.effective_jobs)
        results: List[Any] = []
        iterator = self._pool.map(run_task, tasks, chunksize=self.last_chunksize)
        while True:
            try:
                value = next(iterator)
            except StopIteration:
                break
            except Exception as error:
                raise task_failure_error(tasks, len(results), error, where=self.name) from error
            results.append(value)
        return results

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly summary of the backend (recorded in run manifests)."""
        return {"name": self.name, "jobs": self.effective_jobs}
