"""Chunked work-stealing dispatch with retry, timeout and worker eviction.

The remote backend's core loop, factored out over two plain queue-protocol
objects (anything with ``put`` / ``get(timeout=)``) so the whole failure
surface — shuffled completion, workers dying mid-chunk, retries exhausting,
heartbeats going stale — is unit-testable in-process with ``queue.Queue``
and fake worker threads, while :class:`~repro.exec.backends.remote.RemoteWorkerBackend`
wires the same loop to :mod:`multiprocessing.managers` proxies.

The protocol (all messages are plain picklable tuples):

* parent → ``task_queue``: ``("chunk", generation, chunk_id, (task, ...))``
  — one contiguous slice of the submitted task list.  Idle workers ``get``
  from the shared queue, which *is* the work-stealing: a fast worker that
  drains its chunk simply steals the next one, so stragglers never gate the
  sweep (the MiniFE frame: decomposed work units, with the queue overlapping
  the parent's collection/assembly behind worker compute).
* parent → ``task_queue``: ``("stop",)`` — each worker that sees the
  sentinel re-queues it before exiting, so one sentinel eventually reaches
  every worker sharing the queue.
* worker → ``result_queue``: ``("hello", worker_id)`` on attach,
  ``("heartbeat", worker_id)`` periodically (from a side thread, so a busy
  worker still proves liveness), ``("ack", generation, chunk_id, worker_id)``
  when it picks a chunk up, ``("done", generation, chunk_id, worker_id,
  [result, ...])`` on completion, and ``("task-error", generation, chunk_id,
  worker_id, offset, message)`` when a task itself raised.

``generation`` is the dispatch epoch: a backend reuses one queue pair across
many ``submit`` calls, and after a requeue the losing worker's late ``done``
can arrive *after* its dispatch returned.  Workers echo the generation of
the chunk message verbatim; the collection loop discards any chunk-scoped
message from another generation (it still counts as a heartbeat), so a
stale completion can never be mistaken for one of the current dispatch's
chunk ids and written into the wrong result slots.

Failure semantics, mirroring the distinction the local pool cannot make:

* **an exception inside a task** is deterministic — retrying cannot help —
  so it aborts the dispatch immediately with a labelled
  :class:`~repro.errors.ExperimentError` naming the task (global index,
  sweep-point name, seed);
* **a worker dying mid-chunk** (chunk acked, then its heartbeat goes stale
  — or, when the opt-in ``chunk_timeout`` budget is set, the budget lapses)
  is transient — the chunk is requeued for
  another worker to steal, up to ``max_attempts`` total attempts, after
  which a labelled error names the chunk and its first task.  Because tasks
  are pure functions of their pre-derived seeds, a re-executed (or even
  doubly-executed) chunk returns byte-identical results, and results are
  assembled by chunk offset, never arrival order — so retries and steals
  cannot perturb the assembled sweep.
"""

from __future__ import annotations

import queue
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...errors import ExperimentError
from ...testing import chaos
from .base import Task, task_label

__all__ = ["DispatchSettings", "chunk_tasks", "dispatch_chunks", "drain_queue"]


@dataclass(frozen=True)
class DispatchSettings:
    """Tunables of one work-stealing dispatch (all times in seconds)."""

    #: Tasks per chunk; the unit of stealing, retry and result transfer.
    chunk_size: int = 1
    #: Optional hard wall-time budget for one acked chunk before it is
    #: requeued.  ``None`` (the default) disables the budget: liveness is
    #: proven by heartbeats, so a slow-but-alive worker is never preempted.
    #: Set a budget only when a chunk has a known wall-time upper bound.
    chunk_timeout: Optional[float] = None
    #: A worker silent for longer than this is evicted (its chunks requeued).
    heartbeat_timeout: float = 10.0
    #: Total attempts per chunk (first execution + requeues) before failing.
    max_attempts: int = 2
    #: Budget for *some* worker to make progress before the dispatch aborts
    #: (covers "no workers ever attached" without a separate mechanism).
    startup_timeout: float = 30.0
    #: Poll interval of the collection loop.
    poll: float = 0.05

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ExperimentError(f"chunk_size must be at least 1, got {self.chunk_size}")
        if self.max_attempts < 1:
            raise ExperimentError(f"max_attempts must be at least 1, got {self.max_attempts}")


@dataclass
class _Chunk:
    """One in-flight slice of the task list with its retry bookkeeping."""

    chunk_id: int
    start: int
    tasks: Tuple[Task, ...]
    attempts: int = 0
    worker: Optional[str] = None
    acked_at: Optional[float] = None
    done: bool = field(default=False, repr=False)


def chunk_tasks(tasks: Sequence[Task], chunk_size: int) -> List[Tuple[int, Tuple[Task, ...]]]:
    """Split a task list into ``(start_offset, tasks)`` slices of ``chunk_size``."""
    return [
        (start, tuple(tasks[start : start + chunk_size]))
        for start in range(0, len(tasks), chunk_size)
    ]


def drain_queue(target: Any) -> int:
    """Best-effort removal of everything queued; returns the count removed.

    Used on entry (leftover chunks from an earlier dispatch that completed
    via a pre-requeue duplicate) and on abort (so attached workers stop
    picking up orphaned chunks of a dispatch that already failed).  Racing
    workers may still grab a message between ``get`` calls — harmless, their
    stale-generation results are discarded by the next dispatch.
    """
    removed = 0
    while True:
        try:
            target.get_nowait()
        except queue.Empty:
            return removed
        except Exception:  # proxy connection gone: nothing left to drain
            return removed
        removed += 1


def dispatch_chunks(
    tasks: Sequence[Task],
    task_queue: Any,
    result_queue: Any,
    settings: DispatchSettings,
    *,
    where: str = "remote",
    generation: int = 0,
    workers_seen: Optional[Set[str]] = None,
    clock: Callable[[], float] = time.monotonic,
) -> List[Any]:
    """Dispatch ``tasks`` over the queue protocol and assemble ordered results.

    Runs the parent side of the protocol documented in the module docstring:
    enqueue every chunk tagged with this dispatch's ``generation``, then
    collect until each chunk has completed exactly once, requeueing orphaned
    chunks (``settings.max_attempts`` total attempts) and evicting workers
    whose heartbeat went stale.  Chunk-scoped messages from another
    generation — late completions of a previous dispatch on the same queues
    — are discarded.  Results land at ``chunk.start + offset`` — task order
    by construction.  On abort the task queue is drained so workers stop
    executing orphaned chunks.  ``workers_seen``, when given, accumulates
    every worker id that ever spoke (backends use it to address one stop
    sentinel per worker at shutdown).
    """
    if not tasks:
        return []
    if workers_seen is None:
        workers_seen = set()

    drain_queue(task_queue)  # leftover chunks from a previous dispatch
    chunks = [
        _Chunk(chunk_id=chunk_id, start=start, tasks=chunk, attempts=1)
        for chunk_id, (start, chunk) in enumerate(chunk_tasks(tasks, settings.chunk_size))
    ]
    for chunk in chunks:
        task_queue.put(("chunk", generation, chunk.chunk_id, chunk.tasks))

    results: List[Any] = [None] * len(tasks)
    remaining = len(chunks)
    last_seen: Dict[str, float] = {}
    last_progress = clock()

    def _requeue(chunk: _Chunk, reason: str) -> None:
        nonlocal last_progress
        if chunk.attempts >= settings.max_attempts:
            raise ExperimentError(
                f"{where} execution failed: chunk {chunk.chunk_id} "
                f"(tasks {chunk.start}..{chunk.start + len(chunk.tasks) - 1}, first: "
                f"{task_label(chunk.tasks[0], chunk.start)}) {reason} and exhausted its "
                f"{settings.max_attempts} attempts"
            )
        chunk.attempts += 1
        chunk.worker = None
        chunk.acked_at = None
        task_queue.put(("chunk", generation, chunk.chunk_id, chunk.tasks))
        last_progress = clock()

    try:
        while remaining:
            try:
                message = result_queue.get(timeout=settings.poll)
            except queue.Empty:
                message = None

            if message is not None:
                kind, payload = message[0], message[1:]
                if kind in ("hello", "heartbeat"):
                    (worker_id,) = payload
                    workers_seen.add(worker_id)
                    last_seen[worker_id] = clock()
                    if kind == "hello":
                        last_progress = clock()
                elif kind in ("ack", "done", "task-error"):
                    msg_generation, chunk_id, worker_id = payload[:3]
                    workers_seen.add(worker_id)
                    last_seen[worker_id] = clock()
                    if msg_generation != generation:
                        continue  # late message from a previous dispatch
                    if not 0 <= chunk_id < len(chunks):
                        raise ExperimentError(
                            f"{where} dispatch received {kind!r} for chunk {chunk_id} "
                            f"outside this dispatch's 0..{len(chunks) - 1} (protocol bug)"
                        )
                    chunk = chunks[chunk_id]
                    if kind == "ack":
                        if not chunk.done:
                            chunk.worker = worker_id
                            chunk.acked_at = clock()
                        last_progress = clock()
                    elif kind == "done":
                        values = payload[3]
                        if chaos.fire("dispatch.done", chunk_id=chunk_id, worker=worker_id) == "drop":
                            # Chaos: the completion is lost in transport.
                            # The chunk stays un-done and is requeued by the
                            # normal timeout/eviction path — exactly the
                            # failure a killed worker mid-ack produces.
                            continue
                        # Accept the first completion only; a requeued
                        # chunk's late duplicate is identical anyway (pure
                        # tasks) but must not decrement the count twice.
                        if not chunk.done:
                            chunk.done = True
                            chunk.worker = None
                            results[chunk.start : chunk.start + len(values)] = values
                            remaining -= 1
                            last_progress = clock()
                    else:  # task-error: deterministic, aborts immediately
                        offset, detail = payload[3], payload[4]
                        index = chunk.start + offset
                        raise ExperimentError(
                            f"{where} execution failed at {task_label(tasks[index], index)} "
                            f"on worker {worker_id!r}: {detail}"
                        )
                else:  # unknown message kinds are protocol bugs, not data
                    raise ExperimentError(
                        f"{where} dispatch received unknown message {kind!r}"
                    )
                continue

            now = clock()
            for chunk in chunks:
                if chunk.done or chunk.acked_at is None:
                    continue
                worker_stale = (
                    chunk.worker is not None
                    and now - last_seen.get(chunk.worker, now) > settings.heartbeat_timeout
                )
                if (
                    settings.chunk_timeout is not None
                    and now - chunk.acked_at > settings.chunk_timeout
                ):
                    _requeue(chunk, f"timed out after {settings.chunk_timeout}s")
                elif worker_stale:
                    _requeue(chunk, f"lost its worker {chunk.worker!r} (heartbeat stale)")

            if now - last_progress > settings.startup_timeout and not any(
                chunk.acked_at is not None for chunk in chunks if not chunk.done
            ):
                raise ExperimentError(
                    f"{where} execution stalled: no worker picked up work for "
                    f"{settings.startup_timeout}s ({len(last_seen)} worker(s) ever seen; "
                    "attach workers with `python -m repro.worker --endpoint HOST:PORT`)"
                )
    except ExperimentError:
        drain_queue(task_queue)  # stop workers executing orphaned chunks
        raise

    return results
