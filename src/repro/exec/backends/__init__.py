"""Pluggable execution backends: who runs a task list, behind one interface.

The dispatch sites of the execution layer (:mod:`repro.exec.pool`,
:class:`~repro.exec.runner.ParallelTrialRunner`, the sweep dispatchers) used
to hard-code a throwaway local process pool.  They now build
:class:`~repro.exec.backends.base.Task` lists and hand them to whichever
:class:`~repro.exec.backends.base.ExecutionBackend` is installed for the
run:

* ``in-process`` — :class:`~repro.exec.backends.local.InProcessBackend`,
  the serial reference (exact historical semantics);
* ``local`` — :class:`~repro.exec.backends.local.LocalPoolBackend`, the
  historical process pool, but created once per run and reused across
  sweep-point families;
* ``remote`` — :class:`~repro.exec.backends.remote.RemoteWorkerBackend`,
  a socket task queue that external ``python -m repro.worker`` processes
  attach to, with chunked work-stealing dispatch, capped retry on worker
  death and heartbeat-based eviction.

All three satisfy the same contract — seeds derived in the parent, results
assembled in task order — so they are interchangeable at the bit level;
``tests/unit/exec/test_backends.py`` and the smoke gates pin the digests.

:func:`create_backend` is the one factory the API layer uses; it validates
backend names and option keys so ``--backend`` typos fail with the same
message everywhere.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ...errors import ExperimentError
from .base import (
    ExecutionBackend,
    Task,
    active_backend,
    run_task,
    task_failure_error,
    task_label,
    use_backend,
)
from .dispatch import DispatchSettings, chunk_tasks, dispatch_chunks, drain_queue
from .local import InProcessBackend, LocalPoolBackend, chunksize_for, default_jobs
from .remote import AUTHKEY_ENV, RemoteWorkerBackend

__all__ = [
    "Task",
    "run_task",
    "task_label",
    "task_failure_error",
    "ExecutionBackend",
    "InProcessBackend",
    "LocalPoolBackend",
    "RemoteWorkerBackend",
    "DispatchSettings",
    "chunk_tasks",
    "dispatch_chunks",
    "drain_queue",
    "chunksize_for",
    "default_jobs",
    "AUTHKEY_ENV",
    "active_backend",
    "use_backend",
    "backend_names",
    "validate_backend_spec",
    "create_backend",
]

#: Recognised option keys per backend name (the factory's validation table).
_BACKEND_OPTIONS = {
    "in-process": frozenset(),
    "local": frozenset({"workers"}),
    "remote": frozenset(
        {
            "workers",
            "endpoint",
            "authkey",
            "chunk_size",
            "chunk_timeout",
            "heartbeat_timeout",
            "max_attempts",
            "startup_timeout",
        }
    ),
}


def backend_names() -> str:
    """Comma-separated names of the registered backends (for help/error text)."""
    return ", ".join(sorted(_BACKEND_OPTIONS))


def validate_backend_spec(name: str, options: Optional[Mapping[str, Any]] = None) -> None:
    """Reject unknown backend names or option keys without building anything.

    Called by :meth:`repro.api.config.ExecutionConfig.resolve` so a typo'd
    ``--backend`` or backend option fails at plan-resolution time with the
    same message the factory would raise.
    """
    recognised = _BACKEND_OPTIONS.get(name)
    if recognised is None:
        raise ExperimentError(
            f"unknown execution backend {name!r}; registered backends: {backend_names()}"
        )
    unknown = sorted(set(options or {}) - recognised)
    if unknown:
        raise ExperimentError(
            f"backend {name!r} has no option(s) {', '.join(unknown)}; "
            f"recognised options: {', '.join(sorted(recognised)) or '(none)'}"
        )


def create_backend(
    name: str,
    options: Optional[Mapping[str, Any]] = None,
    *,
    jobs: Optional[int] = None,
) -> ExecutionBackend:
    """Build a backend from its name and options (not yet started).

    ``jobs`` is the config-level ``--jobs`` value, used as the worker count
    when the options do not name one explicitly (``0`` means one per CPU,
    matching the CLI convention everywhere else).
    """
    validate_backend_spec(name, options)
    resolved = dict(options or {})
    if "workers" not in resolved and jobs is not None and name != "in-process":
        # --jobs 0 means "one per CPU" everywhere; an explicit workers=0 on
        # the remote backend instead means "attach external workers only".
        resolved["workers"] = default_jobs() if jobs == 0 else jobs

    if name == "in-process":
        return InProcessBackend()
    if name == "local":
        workers = resolved.get("workers")
        if workers is not None and workers < 0:
            raise ExperimentError(
                f"backend 'local' workers must be non-negative (0 = one per CPU), got {workers}"
            )
        return LocalPoolBackend(jobs=None if not workers else int(workers))
    authkey = resolved.get("authkey")
    chunk_timeout = resolved.get("chunk_timeout")
    return RemoteWorkerBackend(
        endpoint=str(resolved.get("endpoint", "127.0.0.1:0")),
        workers=int(resolved.get("workers") or 0),
        # None = a random per-run key; non-loopback endpoints require an
        # explicit one (enforced by the backend).
        authkey=None if authkey is None else str(authkey),
        chunk_size=int(resolved.get("chunk_size", 1)),
        # None = no hard per-chunk budget; heartbeats govern liveness.
        chunk_timeout=None if chunk_timeout is None else float(chunk_timeout),
        heartbeat_timeout=float(resolved.get("heartbeat_timeout", 15.0)),
        max_attempts=int(resolved.get("max_attempts", 2)),
        startup_timeout=float(resolved.get("startup_timeout", 60.0)),
    )
