"""Dispatch plumbing between the trial/sweep layers and the execution backends.

Monte-Carlo trials are embarrassingly parallel: every trial receives its own
pre-derived seed and never communicates.  So are the grid points of a sweep:
every point is seeded independently of the others.  This module owns the
mechanics of turning either granularity into ordered
:class:`~repro.exec.backends.base.Task` lists — picklability probing, task
construction with attribution context, backend routing — so that the runner
in :mod:`repro.exec.runner` and the sweep dispatchers
(:func:`repro.analysis.sweeps.run_sweep`,
:func:`repro.exec.batching.run_sweep_batched`) can stay pure policy objects.

Routing rule (the heart of the backend refactor): when a backend has been
installed for the run with :func:`repro.exec.backends.use_backend` — which
is what :func:`repro.api.run_experiment` does when an
:class:`~repro.api.config.ExecutionConfig` names one — every dispatch goes
to it, whether that is the in-process reference, one persistent local pool,
or remote workers.  When no backend is installed, each call falls back to a
throwaway :class:`~repro.exec.backends.local.LocalPoolBackend`, which is
byte- and behaviour-identical to the historical per-call
:class:`concurrent.futures.ProcessPoolExecutor`.

Two properties matter more than raw throughput:

* **Determinism** — seeds are derived in the parent before dispatch and
  results are collected in submission order, so the assembled
  :class:`~repro.analysis.experiments.ExperimentResult` is bit-identical to a
  serial run of the same trial function with the same base seed, on every
  backend.
* **Graceful degradation** — trial functions that cannot cross a process
  boundary (closures, lambdas, functions defined in ``__main__`` without a
  file) are detected up front with :func:`picklability_error` and the caller
  falls back to in-process execution instead of crashing mid-experiment.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .backends import LocalPoolBackend, Task, active_backend, chunksize_for, default_jobs

__all__ = [
    "default_jobs",
    "picklability_error",
    "resolve_point_jobs",
    "submit_tasks",
    "run_trials_in_pool",
    "run_point_trials_in_pool",
    "run_tasks_in_pool",
    "run_point_tasks",
]


def picklability_error(trial_fn: Callable[..., Any]) -> Optional[str]:
    """Return why ``trial_fn`` cannot be sent to a worker, or ``None`` if it can.

    Closures and lambdas — the idiomatic way older experiment drivers bound
    sweep parameters — pickle by qualified name and therefore fail here; the
    drivers in :mod:`repro.experiments` now bind parameters with
    :func:`functools.partial` over module-level functions precisely so this
    probe passes.
    """
    try:
        pickle.dumps(trial_fn)
    except Exception as error:  # pickle raises a zoo of types here
        return f"{type(error).__name__}: {error}"
    return None


def _chunksize(num_tasks: int, jobs: int) -> int:
    """Chunk size for a pooled submission (kept as the historical name)."""
    return chunksize_for(num_tasks, jobs)


def submit_tasks(tasks: Sequence[Task], jobs: int) -> List[Any]:
    """Execute a task list on the run's backend, results in task order.

    The single funnel every pooled dispatch goes through: the active backend
    if one is installed for this run, otherwise a per-call
    :class:`~repro.exec.backends.local.LocalPoolBackend` with ``jobs``
    workers (the historical semantics, pool spawned and torn down here).
    """
    backend = active_backend()
    if backend is not None:
        return backend.submit(tasks)
    with LocalPoolBackend(jobs=jobs) as pool_backend:
        return pool_backend.submit(tasks)


def _invoke_trial(trial_fn: Callable[[int, int], Mapping[str, Any]], seed: int, index: int) -> Any:
    """Worker-side shim: call the trial function for one ``(seed, index)`` task.

    Must stay a module-level function so it can be pickled by reference.  The
    raw return value travels back to the parent, which performs the
    mapping-type validation (keeping error messages identical to the serial
    path).
    """
    return trial_fn(seed, index)


def run_trials_in_pool(
    trial_fn: Callable[[int, int], Mapping[str, Any]],
    seeds: Sequence[int],
    jobs: int,
    name: Optional[str] = None,
) -> List[Any]:
    """Run ``trial_fn(seed, index)`` for every seed across worker processes.

    Results are returned in index order regardless of which worker finished
    first.  A failure inside a worker surfaces as a labelled
    :class:`~repro.errors.ExperimentError` naming the trial index and seed.

    Parameters
    ----------
    trial_fn:
        Picklable trial callable; probe with :func:`picklability_error` first.
    seeds:
        Pre-derived per-trial seeds; trial ``i`` receives ``seeds[i]``.
    jobs:
        Worker count of the per-call pool (ignored when a run-level backend
        is installed — the backend owns its own worker fleet).
    name:
        Experiment name attached to the failure context.
    """
    tasks = [
        Task(
            fn=_invoke_trial,
            args=(trial_fn, int(seed), index),
            context=(
                (("experiment", name),) if name else ()
            ) + (("trial", index), ("seed", int(seed))),
        )
        for index, seed in enumerate(seeds)
    ]
    return submit_tasks(tasks, jobs)


# ----------------------------------------------------------------------
# Point-level parallelism (shared pool across sweep grid points)
# ----------------------------------------------------------------------


def resolve_point_jobs(point_jobs: Optional[int], num_points: int) -> int:
    """Map a ``point_jobs`` option onto an effective worker count.

    Follows the ``--jobs`` convention: ``None`` or ``1`` → in-process,
    ``0`` → one worker per CPU, ``k > 1`` → ``k`` workers; the result is
    additionally capped at ``num_points`` (idle workers are pure overhead).
    Negative values raise :class:`~repro.errors.ExperimentError` so callers
    surface the same error no matter which sweep dispatcher they use.
    """
    if point_jobs is None:
        return 1
    if point_jobs < 0:
        raise ExperimentError(
            f"point_jobs must be non-negative (0 = one worker per CPU), got {point_jobs}"
        )
    jobs = default_jobs() if point_jobs == 0 else point_jobs
    return max(1, min(jobs, num_points))


def _invoke_point(trial_fn: Callable[[int, int], Mapping[str, Any]], seeds: Sequence[int]) -> List[Any]:
    """Worker-side shim: run all trials of one grid point, in trial order.

    The seeds were derived in the parent; the worker only loops the trial
    function over them, so the raw measurement list it sends back is
    bit-identical to what a serial loop over the same point would produce.
    """
    return [trial_fn(int(seed), index) for index, seed in enumerate(seeds)]


def run_point_trials_in_pool(
    point_tasks: Sequence[Tuple[Callable[[int, int], Mapping[str, Any]], Sequence[int]]],
    jobs: int,
    names: Optional[Sequence[str]] = None,
) -> List[List[Any]]:
    """Run every grid point's trial loop across workers, one point per task.

    Each element of ``point_tasks`` is a ``(trial_fn, seeds)`` pair for one
    sweep point; the per-point raw measurement lists come back in point order
    regardless of which worker finished first.  ``names`` (the canonical
    sweep point names) label the failure context of each point.
    """
    tasks = [
        Task(
            fn=_invoke_point,
            args=(trial_fn, tuple(int(seed) for seed in seeds)),
            context=(
                ("point", names[index] if names else index),
                ("first_seed", int(seeds[0]) if len(seeds) else None),
            ),
        )
        for index, (trial_fn, seeds) in enumerate(point_tasks)
    ]
    return submit_tasks(tasks, jobs)


def run_tasks_in_pool(
    tasks: Sequence[Tuple[Callable[..., Any], Mapping[str, Any]]],
    jobs: int,
) -> List[Any]:
    """Run pre-resolved ``(fn, kwargs)`` tasks across workers, in task order.

    Used by :func:`repro.exec.batching.run_sweep_batched` to execute one
    whole-point batch simulation per task; every kwarg (including the
    per-point batch seed) was resolved in the parent, so the results are
    bit-identical to an in-process loop over the same tasks.  Failure
    context is read off the kwargs (the batch tasks carry ``name`` and
    ``base_seed``).
    """
    built = [
        Task(fn=fn, kwargs=dict(kwargs), context=_kwargs_context(index, kwargs))
        for index, (fn, kwargs) in enumerate(tasks)
    ]
    return submit_tasks(built, jobs)


def _kwargs_context(index: int, kwargs: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Failure-attribution context scraped from a ``(fn, kwargs)`` task."""
    context: List[Tuple[str, Any]] = []
    for key in ("name", "seed", "base_seed"):
        if kwargs.get(key) is not None:
            context.append((key, kwargs[key]))
    if not context:
        context.append(("position", index))
    return tuple(context)


def run_point_tasks(
    tasks: Sequence[Tuple[Callable[..., Any], Dict[str, Any]]],
    point_jobs: Optional[int],
    runner: Optional[Any] = None,
) -> List[Any]:
    """Run per-cell ``(fn, kwargs)`` tasks in cell order, pooled or in-process.

    The one dispatch rule shared by the cell-structured experiment drivers
    (E4, E7, E9, E11, E12): resolve ``point_jobs`` with
    :func:`resolve_point_jobs`; when a pool is warranted — or a run-level
    backend is installed (so ``--backend remote`` shards the cells with zero
    driver changes) — execute the tasks on it (every kwarg, including
    per-cell seeds, was resolved in the parent, so results are bit-identical
    to the in-process loop); otherwise run in-process, injecting
    ``runner=runner`` into each task when a serial trial runner was given
    (batch-path callers pass ``runner=None``).
    """
    jobs = resolve_point_jobs(point_jobs, len(tasks))
    if jobs > 1 or active_backend() is not None:
        return run_tasks_in_pool(tasks, jobs)
    if runner is not None:
        for _, kwargs in tasks:
            kwargs["runner"] = runner
    return [fn(**kwargs) for fn, kwargs in tasks]
