"""Process-pool plumbing behind :class:`~repro.exec.runner.ParallelTrialRunner`.

Monte-Carlo trials are embarrassingly parallel: every trial receives its own
pre-derived seed and never communicates.  This module owns the mechanics of
farming trials out to a :class:`concurrent.futures.ProcessPoolExecutor` —
picklability probing, chunking, ordered collection — so that the runner in
:mod:`repro.exec.runner` can stay a pure policy object.

Two properties matter more than raw throughput:

* **Determinism** — seeds are derived in the parent before dispatch and
  results are collected in submission order, so the assembled
  :class:`~repro.analysis.experiments.ExperimentResult` is bit-identical to a
  serial run of the same trial function with the same base seed.
* **Graceful degradation** — trial functions that cannot cross a process
  boundary (closures, lambdas, functions defined in ``__main__`` without a
  file) are detected up front with :func:`picklability_error` and the caller
  falls back to in-process execution instead of crashing mid-experiment.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["default_jobs", "picklability_error", "run_trials_in_pool"]

#: Target number of chunks handed to each worker, to amortise IPC overhead
#: while keeping the pool load-balanced.
_CHUNKS_PER_WORKER = 4


def default_jobs() -> int:
    """Number of worker processes to use when the caller does not specify one."""
    return max(1, os.cpu_count() or 1)


def picklability_error(trial_fn: Callable[..., Any]) -> Optional[str]:
    """Return why ``trial_fn`` cannot be sent to a worker, or ``None`` if it can.

    Closures and lambdas — the idiomatic way older experiment drivers bound
    sweep parameters — pickle by qualified name and therefore fail here; the
    drivers in :mod:`repro.experiments` now bind parameters with
    :func:`functools.partial` over module-level functions precisely so this
    probe passes.
    """
    try:
        pickle.dumps(trial_fn)
    except Exception as error:  # pickle raises a zoo of types here
        return f"{type(error).__name__}: {error}"
    return None


def _chunksize(num_tasks: int, jobs: int) -> int:
    """Chunk size that yields roughly ``_CHUNKS_PER_WORKER`` chunks per worker."""
    return max(1, num_tasks // max(1, jobs * _CHUNKS_PER_WORKER))


def _invoke_trial(task: Tuple[Callable[[int, int], Mapping[str, Any]], int, int]) -> Any:
    """Worker-side shim: unpack one task and call the trial function.

    Must stay a module-level function so it can be pickled by reference.  The
    raw return value travels back to the parent, which performs the
    mapping-type validation (keeping error messages identical to the serial
    path).
    """
    trial_fn, seed, trial_index = task
    return trial_fn(seed, trial_index)


def run_trials_in_pool(
    trial_fn: Callable[[int, int], Mapping[str, Any]],
    seeds: Sequence[int],
    jobs: int,
) -> List[Any]:
    """Run ``trial_fn(seed, index)`` for every seed across ``jobs`` processes.

    Results are returned in index order regardless of which worker finished
    first.  Exceptions raised inside a worker propagate to the caller (the
    pool is shut down cleanly first).

    Parameters
    ----------
    trial_fn:
        Picklable trial callable; probe with :func:`picklability_error` first.
    seeds:
        Pre-derived per-trial seeds; trial ``i`` receives ``seeds[i]``.
    jobs:
        Number of worker processes.
    """
    tasks = [(trial_fn, int(seed), index) for index, seed in enumerate(seeds)]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_invoke_trial, tasks, chunksize=_chunksize(len(tasks), jobs)))
