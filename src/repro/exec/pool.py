"""Process-pool plumbing behind :class:`~repro.exec.runner.ParallelTrialRunner`
and the point-parallel sweep modes.

Monte-Carlo trials are embarrassingly parallel: every trial receives its own
pre-derived seed and never communicates.  So are the grid points of a sweep:
every point is seeded independently of the others.  This module owns the
mechanics of farming either granularity out to a
:class:`concurrent.futures.ProcessPoolExecutor` — picklability probing,
chunking, ordered collection — so that the runner in
:mod:`repro.exec.runner` and the sweep dispatchers
(:func:`repro.analysis.sweeps.run_sweep`,
:func:`repro.exec.batching.run_sweep_batched`) can stay pure policy objects.

Two properties matter more than raw throughput:

* **Determinism** — seeds are derived in the parent before dispatch and
  results are collected in submission order, so the assembled
  :class:`~repro.analysis.experiments.ExperimentResult` is bit-identical to a
  serial run of the same trial function with the same base seed.
* **Graceful degradation** — trial functions that cannot cross a process
  boundary (closures, lambdas, functions defined in ``__main__`` without a
  file) are detected up front with :func:`picklability_error` and the caller
  falls back to in-process execution instead of crashing mid-experiment.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ExperimentError

__all__ = [
    "default_jobs",
    "picklability_error",
    "resolve_point_jobs",
    "run_trials_in_pool",
    "run_point_trials_in_pool",
    "run_tasks_in_pool",
    "run_point_tasks",
]

#: Target number of chunks handed to each worker, to amortise IPC overhead
#: while keeping the pool load-balanced.
_CHUNKS_PER_WORKER = 4


def default_jobs() -> int:
    """Number of worker processes to use when the caller does not specify one."""
    return max(1, os.cpu_count() or 1)


def picklability_error(trial_fn: Callable[..., Any]) -> Optional[str]:
    """Return why ``trial_fn`` cannot be sent to a worker, or ``None`` if it can.

    Closures and lambdas — the idiomatic way older experiment drivers bound
    sweep parameters — pickle by qualified name and therefore fail here; the
    drivers in :mod:`repro.experiments` now bind parameters with
    :func:`functools.partial` over module-level functions precisely so this
    probe passes.
    """
    try:
        pickle.dumps(trial_fn)
    except Exception as error:  # pickle raises a zoo of types here
        return f"{type(error).__name__}: {error}"
    return None


def _chunksize(num_tasks: int, jobs: int) -> int:
    """Chunk size that yields roughly ``_CHUNKS_PER_WORKER`` chunks per worker."""
    return max(1, num_tasks // max(1, jobs * _CHUNKS_PER_WORKER))


def _invoke_trial(task: Tuple[Callable[[int, int], Mapping[str, Any]], int, int]) -> Any:
    """Worker-side shim: unpack one task and call the trial function.

    Must stay a module-level function so it can be pickled by reference.  The
    raw return value travels back to the parent, which performs the
    mapping-type validation (keeping error messages identical to the serial
    path).
    """
    trial_fn, seed, trial_index = task
    return trial_fn(seed, trial_index)


def run_trials_in_pool(
    trial_fn: Callable[[int, int], Mapping[str, Any]],
    seeds: Sequence[int],
    jobs: int,
) -> List[Any]:
    """Run ``trial_fn(seed, index)`` for every seed across ``jobs`` processes.

    Results are returned in index order regardless of which worker finished
    first.  Exceptions raised inside a worker propagate to the caller (the
    pool is shut down cleanly first).

    Parameters
    ----------
    trial_fn:
        Picklable trial callable; probe with :func:`picklability_error` first.
    seeds:
        Pre-derived per-trial seeds; trial ``i`` receives ``seeds[i]``.
    jobs:
        Number of worker processes.
    """
    tasks = [(trial_fn, int(seed), index) for index, seed in enumerate(seeds)]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_invoke_trial, tasks, chunksize=_chunksize(len(tasks), jobs)))


# ----------------------------------------------------------------------
# Point-level parallelism (shared pool across sweep grid points)
# ----------------------------------------------------------------------


def resolve_point_jobs(point_jobs: Optional[int], num_points: int) -> int:
    """Map a ``point_jobs`` option onto an effective worker count.

    Follows the ``--jobs`` convention: ``None`` or ``1`` → in-process,
    ``0`` → one worker per CPU, ``k > 1`` → ``k`` workers; the result is
    additionally capped at ``num_points`` (idle workers are pure overhead).
    Negative values raise :class:`~repro.errors.ExperimentError` so callers
    surface the same error no matter which sweep dispatcher they use.
    """
    if point_jobs is None:
        return 1
    if point_jobs < 0:
        raise ExperimentError(
            f"point_jobs must be non-negative (0 = one worker per CPU), got {point_jobs}"
        )
    jobs = default_jobs() if point_jobs == 0 else point_jobs
    return max(1, min(jobs, num_points))


def _invoke_point(task: Tuple[Callable[[int, int], Mapping[str, Any]], Sequence[int]]) -> List[Any]:
    """Worker-side shim: run all trials of one grid point, in trial order.

    The seeds were derived in the parent; the worker only loops the trial
    function over them, so the raw measurement list it sends back is
    bit-identical to what a serial loop over the same point would produce.
    """
    trial_fn, seeds = task
    return [trial_fn(int(seed), index) for index, seed in enumerate(seeds)]


def run_point_trials_in_pool(
    point_tasks: Sequence[Tuple[Callable[[int, int], Mapping[str, Any]], Sequence[int]]],
    jobs: int,
) -> List[List[Any]]:
    """Run every grid point's trial loop in a shared pool, one point per task.

    Each element of ``point_tasks`` is a ``(trial_fn, seeds)`` pair for one
    sweep point; the per-point raw measurement lists come back in point order
    regardless of which worker finished first.
    """
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_invoke_point, point_tasks))


def _invoke_task(task: Tuple[Callable[..., Any], Mapping[str, Any]]) -> Any:
    """Worker-side shim: call ``fn(**kwargs)`` for one pre-resolved task."""
    fn, kwargs = task
    return fn(**kwargs)


def run_tasks_in_pool(
    tasks: Sequence[Tuple[Callable[..., Any], Mapping[str, Any]]],
    jobs: int,
) -> List[Any]:
    """Run pre-resolved ``(fn, kwargs)`` tasks across a pool, in task order.

    Used by :func:`repro.exec.batching.run_sweep_batched` to execute one
    whole-point batch simulation per task; every kwarg (including the
    per-point batch seed) was resolved in the parent, so the results are
    bit-identical to an in-process loop over the same tasks.
    """
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_invoke_task, tasks))


def run_point_tasks(
    tasks: Sequence[Tuple[Callable[..., Any], Dict[str, Any]]],
    point_jobs: Optional[int],
    runner: Optional[Any] = None,
) -> List[Any]:
    """Run per-cell ``(fn, kwargs)`` tasks in cell order, pooled or in-process.

    The one dispatch rule shared by the cell-structured experiment drivers
    (E4, E7, E9, E11): resolve ``point_jobs`` with
    :func:`resolve_point_jobs`; when a pool is warranted, execute the tasks
    on it (every kwarg — including per-cell seeds — was resolved in the
    parent, so results are bit-identical to the in-process loop); otherwise
    run in-process, injecting ``runner=runner`` into each task when a serial
    trial runner was given (batch-path callers pass ``runner=None``).
    """
    jobs = resolve_point_jobs(point_jobs, len(tasks))
    if jobs > 1:
        return run_tasks_in_pool(tasks, jobs)
    if runner is not None:
        for _, kwargs in tasks:
            kwargs["runner"] = runner
    return [fn(**kwargs) for fn, kwargs in tasks]
