"""Convergence detection on recorded time series.

Protocols that run with ``record_time_series=True`` produce a per-round
correct-fraction series; the helpers here locate convergence rounds,
sustained convergence (the series stays above a threshold), and crossover
points between two competing series (e.g. where the paper's protocol
overtakes a baseline).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ParameterError

__all__ = ["first_hitting_round", "sustained_convergence_round", "crossover_round", "final_plateau"]


def _as_series(series: Sequence[float]) -> np.ndarray:
    array = np.asarray(list(series), dtype=float)
    if array.size == 0:
        raise ParameterError("series must be non-empty")
    return array


def first_hitting_round(series: Sequence[float], threshold: float) -> Optional[int]:
    """First index at which the series reaches ``threshold`` (or ``None``)."""
    array = _as_series(series)
    hits = np.flatnonzero(array >= threshold)
    return int(hits[0]) if hits.size else None


def sustained_convergence_round(
    series: Sequence[float], threshold: float, window: int = 10
) -> Optional[int]:
    """First index from which the series stays at or above ``threshold`` for ``window`` steps.

    Protects against counting a transient spike as convergence, which matters
    for noisy dynamics such as the voter baseline.
    """
    if window < 1:
        raise ParameterError("window must be at least 1")
    array = _as_series(series)
    above = array >= threshold
    if array.size < window:
        return None
    run_length = 0
    for index, flag in enumerate(above):
        run_length = run_length + 1 if flag else 0
        if run_length >= window:
            return int(index - window + 1)
    return None


def crossover_round(series_a: Sequence[float], series_b: Sequence[float]) -> Optional[int]:
    """First index at which ``series_a`` becomes at least ``series_b`` and stays so.

    Returns ``None`` when ``series_a`` never (durably) overtakes ``series_b``.
    The comparison runs over the common prefix of the two series.
    """
    a = _as_series(series_a)
    b = _as_series(series_b)
    length = min(a.size, b.size)
    a, b = a[:length], b[:length]
    ahead = a >= b
    if not ahead.any():
        return None
    # The crossover is the start of the final run of "ahead" values.
    last_behind = np.flatnonzero(~ahead)
    if last_behind.size == 0:
        return 0
    candidate = int(last_behind[-1]) + 1
    return candidate if candidate < length else None


def final_plateau(series: Sequence[float], window: int = 20) -> float:
    """Mean of the last ``window`` points — the series' settled value."""
    if window < 1:
        raise ParameterError("window must be at least 1")
    array = _as_series(series)
    return float(array[-window:].mean())
