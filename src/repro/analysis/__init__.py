"""Measurement, estimation and reporting machinery for the experiments."""

from .convergence import (
    crossover_round,
    final_plateau,
    first_hitting_round,
    sustained_convergence_round,
)
from .estimators import (
    ScalarSummary,
    average_trajectories,
    quantiles,
    ratio_of_means,
    success_rate,
    summarize_scalar,
)
from .experiments import ExperimentResult, TrialResult, run_trials

# Persistence moved to repro.store (repro.analysis.resultsio remains as a
# deprecated shim); the historical re-exports here stay warning-free.
from ..store.serialization import load_result, load_sweep, save_result, save_sweep, to_jsonable
from .scaling import (
    LinearFit,
    fit_inverse_square_epsilon,
    fit_linear,
    fit_log_n_scaling,
    fit_power_law,
)
from .statistics import (
    BernoulliSummary,
    are_negatively_correlated,
    binomial_pmf,
    central_binomial_tail,
    chernoff_deviation_for_confidence,
    chernoff_lower_tail,
    chernoff_upper_tail,
    empirical_bias,
    hoeffding_sample_size,
    summarize_bernoulli,
    wilson_interval,
)
from .sweeps import SweepPoint, SweepResult, parameter_grid, run_sweep, sweep_point_names
from .tables import format_cell, render_kv, render_table

__all__ = [
    "crossover_round",
    "final_plateau",
    "first_hitting_round",
    "sustained_convergence_round",
    "ScalarSummary",
    "average_trajectories",
    "quantiles",
    "ratio_of_means",
    "success_rate",
    "summarize_scalar",
    "ExperimentResult",
    "TrialResult",
    "run_trials",
    "load_result",
    "load_sweep",
    "save_result",
    "save_sweep",
    "to_jsonable",
    "LinearFit",
    "fit_inverse_square_epsilon",
    "fit_linear",
    "fit_log_n_scaling",
    "fit_power_law",
    "BernoulliSummary",
    "are_negatively_correlated",
    "binomial_pmf",
    "central_binomial_tail",
    "chernoff_deviation_for_confidence",
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "empirical_bias",
    "hoeffding_sample_size",
    "summarize_bernoulli",
    "wilson_interval",
    "SweepPoint",
    "SweepResult",
    "parameter_grid",
    "run_sweep",
    "sweep_point_names",
    "format_cell",
    "render_kv",
    "render_table",
]
