"""Statistical primitives used by the analysis and the paper's proofs.

This module codifies the probabilistic toolkit of Section 1.7 (Chernoff
bounds, negative correlation) together with the estimation machinery the
experiment harness needs (Wilson confidence intervals, Hoeffding sample-size
calculations, empirical success probabilities).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from ..errors import ParameterError

__all__ = [
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "chernoff_deviation_for_confidence",
    "hoeffding_sample_size",
    "wilson_interval",
    "BernoulliSummary",
    "summarize_bernoulli",
    "empirical_bias",
    "binomial_pmf",
    "central_binomial_tail",
    "are_negatively_correlated",
]


# ----------------------------------------------------------------------
# Chernoff bounds (Equations 1 and 2 of the paper)
# ----------------------------------------------------------------------
def chernoff_upper_tail(expectation: float, delta: float) -> float:
    """Equation 1: ``Pr(X >= (1 + delta) E[X]) <= exp(-delta^2 E[X] / 3)``."""
    if expectation < 0:
        raise ParameterError("expectation must be non-negative")
    if not 0 < delta < 1:
        raise ParameterError("delta must lie in (0, 1)")
    return math.exp(-delta * delta * expectation / 3.0)


def chernoff_lower_tail(expectation: float, delta: float) -> float:
    """Equation 2: ``Pr(X <= (1 - delta) E[X]) <= exp(-delta^2 E[X] / 2)``."""
    if expectation < 0:
        raise ParameterError("expectation must be non-negative")
    if not 0 < delta < 1:
        raise ParameterError("delta must lie in (0, 1)")
    return math.exp(-delta * delta * expectation / 2.0)


def chernoff_deviation_for_confidence(expectation: float, failure_probability: float) -> float:
    """Smallest relative deviation ``delta`` with lower-tail mass at most ``failure_probability``.

    Inverts Equation 2: ``delta = sqrt(2 ln(1/p) / E[X])`` (may exceed 1, in
    which case the bound is vacuous and the caller needs a larger
    expectation).
    """
    if expectation <= 0:
        raise ParameterError("expectation must be positive")
    if not 0 < failure_probability < 1:
        raise ParameterError("failure_probability must lie in (0, 1)")
    return math.sqrt(2.0 * math.log(1.0 / failure_probability) / expectation)


def hoeffding_sample_size(half_width: float, failure_probability: float) -> int:
    """Samples needed so a Bernoulli mean estimate is within ``half_width`` w.p. ``1 - failure_probability``."""
    if not 0 < half_width < 1:
        raise ParameterError("half_width must lie in (0, 1)")
    if not 0 < failure_probability < 1:
        raise ParameterError("failure_probability must lie in (0, 1)")
    return int(math.ceil(math.log(2.0 / failure_probability) / (2.0 * half_width * half_width)))


# ----------------------------------------------------------------------
# Estimation
# ----------------------------------------------------------------------
def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Preferred over the normal approximation because experiment success rates
    are frequently at or near 1.
    """
    if trials <= 0:
        raise ParameterError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ParameterError("successes must lie in [0, trials]")
    p_hat = successes / trials
    denominator = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denominator
    margin = (z / denominator) * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
    return max(0.0, centre - margin), min(1.0, centre + margin)


@dataclass(frozen=True)
class BernoulliSummary:
    """Summary of a sequence of Bernoulli observations (e.g. per-trial success)."""

    trials: int
    successes: int
    rate: float
    ci_low: float
    ci_high: float

    def as_dict(self) -> dict:
        """Plain-dict form for result records."""
        return {
            "trials": self.trials,
            "successes": self.successes,
            "rate": self.rate,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def summarize_bernoulli(outcomes: Iterable[bool], z: float = 1.96) -> BernoulliSummary:
    """Summarise boolean outcomes into a rate with a Wilson interval."""
    values = [bool(value) for value in outcomes]
    trials = len(values)
    if trials == 0:
        raise ParameterError("need at least one observation")
    successes = sum(values)
    low, high = wilson_interval(successes, trials, z=z)
    return BernoulliSummary(
        trials=trials, successes=successes, rate=successes / trials, ci_low=low, ci_high=high
    )


def empirical_bias(correct: int, total: int) -> float:
    """Bias ``(correct - wrong) / (2 total)`` of an observed population."""
    if total <= 0:
        raise ParameterError("total must be positive")
    if not 0 <= correct <= total:
        raise ParameterError("correct must lie in [0, total]")
    return (2 * correct - total) / (2 * total)


# ----------------------------------------------------------------------
# Binomial helpers (Claims 2.12 / 2.13 checks)
# ----------------------------------------------------------------------
def binomial_pmf(k: int, n: int, p: float) -> float:
    """Exact binomial probability mass ``P(Bin(n, p) = k)`` via log-gamma."""
    if not 0 <= k <= n:
        raise ParameterError("k must lie in [0, n]")
    if not 0.0 <= p <= 1.0:
        raise ParameterError("p must be a probability")
    if p in (0.0, 1.0):
        certain = n if p == 1.0 else 0
        return 1.0 if k == certain else 0.0
    log_pmf = (
        math.lgamma(n + 1)
        - math.lgamma(k + 1)
        - math.lgamma(n - k + 1)
        + k * math.log(p)
        + (n - k) * math.log(1 - p)
    )
    return math.exp(log_pmf)


def central_binomial_tail(n: int, p: float, threshold: int) -> float:
    """Exact upper-tail probability ``P(Bin(n, p) >= threshold)``."""
    if threshold <= 0:
        return 1.0
    if threshold > n:
        return 0.0
    return float(sum(binomial_pmf(k, n, p) for k in range(threshold, n + 1)))


# ----------------------------------------------------------------------
# Negative correlation (Section 1.7)
# ----------------------------------------------------------------------
def are_negatively_correlated(samples: np.ndarray, tolerance: float = 0.05) -> bool:
    """Empirical check of pairwise negative 1-correlation for Bernoulli columns.

    ``samples`` is a ``(num_observations, num_variables)`` 0/1 matrix.  For
    every pair of columns the function checks
    ``P(X_i = 1, X_j = 1) <= P(X_i = 1) P(X_j = 1) + tolerance`` — the
    pairwise special case of the Panconesi–Srinivasan condition the paper's
    proofs rely on (sampling without replacement).  Used by property tests on
    the delivery substrate.
    """
    matrix = np.asarray(samples, dtype=float)
    if matrix.ndim != 2:
        raise ParameterError("samples must be a 2-D matrix")
    if matrix.shape[0] < 2 or matrix.shape[1] < 2:
        raise ParameterError("need at least two observations of at least two variables")
    means = matrix.mean(axis=0)
    joint = matrix.T @ matrix / matrix.shape[0]
    product = np.outer(means, means)
    off_diagonal = ~np.eye(matrix.shape[1], dtype=bool)
    return bool(np.all(joint[off_diagonal] <= product[off_diagonal] + tolerance))
