"""Scaling-law fits used to check the paper's asymptotic claims.

Experiments E1-E3 verify that the measured round and message complexities
follow ``Theta(log n / eps^2)`` and ``Theta(n log n / eps^2)``.  Because the
simulator's phase lengths are *set* from those formulas, the interesting
check is a goodness-of-fit one: the measurements, including the parts that
are not mechanically scheduled (Stage-I growth, Stage-II success), must track
the predicted functional form across a decade of ``n`` and ``epsilon``.

The fits are ordinary least squares on transformed coordinates, implemented
directly with numpy so the library does not depend on scipy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ParameterError

__all__ = ["LinearFit", "fit_linear", "fit_power_law", "fit_log_n_scaling", "fit_inverse_square_epsilon"]


@dataclass(frozen=True)
class LinearFit:
    """Result of a least-squares fit ``y ~ slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x``."""
        return self.slope * x + self.intercept


def _as_arrays(x: Sequence[float], y: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    x_array = np.asarray(list(x), dtype=float)
    y_array = np.asarray(list(y), dtype=float)
    if x_array.size != y_array.size:
        raise ParameterError("x and y must have the same length")
    if x_array.size < 2:
        raise ParameterError("need at least two points to fit")
    return x_array, y_array


def fit_linear(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit of ``y`` against ``x``."""
    x_array, y_array = _as_arrays(x, y)
    slope, intercept = np.polyfit(x_array, y_array, deg=1)
    predictions = slope * x_array + intercept
    residual = float(np.sum((y_array - predictions) ** 2))
    total = float(np.sum((y_array - y_array.mean()) ** 2))
    r_squared = 1.0 if total == 0.0 else 1.0 - residual / total
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Fit ``y ~ C * x^alpha`` by regressing ``log y`` on ``log x``.

    Returns a :class:`LinearFit` whose ``slope`` is the exponent ``alpha``
    and whose ``intercept`` is ``log C``.
    """
    x_array, y_array = _as_arrays(x, y)
    if np.any(x_array <= 0) or np.any(y_array <= 0):
        raise ParameterError("power-law fits need strictly positive data")
    return fit_linear(np.log(x_array), np.log(y_array))


def fit_log_n_scaling(n_values: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Fit ``y ~ a * ln(n) + b`` — the Theorem 2.17 round-complexity shape at fixed epsilon."""
    n_array, y_array = _as_arrays(n_values, y)
    if np.any(n_array <= 1):
        raise ParameterError("population sizes must exceed 1")
    return fit_linear(np.log(n_array), y_array)


def fit_inverse_square_epsilon(epsilon_values: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Fit ``y ~ a / eps^2 + b`` — the Theorem 2.17 round-complexity shape at fixed n."""
    eps_array, y_array = _as_arrays(epsilon_values, y)
    if np.any(eps_array <= 0):
        raise ParameterError("epsilon values must be positive")
    return fit_linear(1.0 / eps_array**2, y_array)
