"""Estimators that turn raw trial outputs into reportable quantities.

The experiment drivers produce lists of per-trial scalars (rounds, messages,
final bias, success flags).  This module reduces them into the summary rows
shown in the experiment reports: means with confidence intervals, quantiles, success
rates, and bias trajectories averaged across trials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..errors import ParameterError
from .statistics import BernoulliSummary, summarize_bernoulli

__all__ = [
    "ScalarSummary",
    "summarize_scalar",
    "success_rate",
    "quantiles",
    "average_trajectories",
    "ratio_of_means",
]


@dataclass(frozen=True)
class ScalarSummary:
    """Mean / spread summary of one scalar measured across trials."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def as_dict(self) -> dict:
        """Plain-dict form for result records."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def summarize_scalar(values: Iterable[float], z: float = 1.96) -> ScalarSummary:
    """Summarise scalar observations with a normal-approximation CI on the mean."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ParameterError("need at least one observation")
    mean = float(array.mean())
    std = float(array.std(ddof=1)) if array.size > 1 else 0.0
    half_width = z * std / math.sqrt(array.size) if array.size > 1 else 0.0
    return ScalarSummary(
        count=int(array.size),
        mean=mean,
        std=std,
        minimum=float(array.min()),
        maximum=float(array.max()),
        ci_low=mean - half_width,
        ci_high=mean + half_width,
    )


def success_rate(flags: Iterable[bool]) -> BernoulliSummary:
    """Success-rate summary (Wilson interval) over per-trial success flags."""
    return summarize_bernoulli(flags)


def quantiles(values: Iterable[float], probabilities: Sequence[float] = (0.1, 0.5, 0.9)) -> Dict[float, float]:
    """Selected quantiles of the observations."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ParameterError("need at least one observation")
    for probability in probabilities:
        if not 0.0 <= probability <= 1.0:
            raise ParameterError("quantile probabilities must lie in [0, 1]")
    return {
        float(probability): float(np.quantile(array, probability)) for probability in probabilities
    }


def average_trajectories(trajectories: Sequence[Sequence[float]]) -> List[float]:
    """Pointwise mean of variable-length trajectories (e.g. per-phase bias).

    Shorter trajectories simply stop contributing beyond their length, which
    matches how per-phase records behave when some trials need fewer phases.
    """
    if not trajectories:
        raise ParameterError("need at least one trajectory")
    length = max(len(trajectory) for trajectory in trajectories)
    sums = np.zeros(length, dtype=float)
    counts = np.zeros(length, dtype=float)
    for trajectory in trajectories:
        values = np.asarray(trajectory, dtype=float)
        sums[: values.size] += values
        counts[: values.size] += 1.0
    return list(sums / np.maximum(counts, 1.0))


def ratio_of_means(numerator: Iterable[float], denominator: Iterable[float]) -> float:
    """Ratio of the means of two scalar collections (e.g. measured / predicted rounds)."""
    num = np.asarray(list(numerator), dtype=float)
    den = np.asarray(list(denominator), dtype=float)
    if num.size == 0 or den.size == 0:
        raise ParameterError("both collections must be non-empty")
    denominator_mean = float(den.mean())
    if denominator_mean == 0.0:
        raise ParameterError("denominator mean is zero")
    return float(num.mean()) / denominator_mean
