"""Monte-Carlo experiment runner.

The paper's guarantees are "with high probability" statements; at finite
``n`` we estimate them by running many independent trials of a simulation
and summarising.  :func:`run_trials` is the single entry point every
experiment driver uses: it derives one independent seed per trial from a
base seed, calls the trial function, and collects the returned measurements
into an :class:`ExperimentResult` that can be summarised, tabulated and
serialised.

*Where* the trials execute is delegated to the trial runners in
:mod:`repro.exec.runner`: the default :class:`~repro.exec.runner.SerialTrialRunner`
reproduces the historical in-process loop exactly, while
:class:`~repro.exec.runner.ParallelTrialRunner` fans trials out over a
process pool with an identical-results-for-identical-seeds guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional

from ..errors import ExperimentError
from .estimators import ScalarSummary, summarize_scalar
from .statistics import BernoulliSummary, summarize_bernoulli

if TYPE_CHECKING:  # pragma: no cover - avoids an import cycle with repro.exec
    from ..exec.runner import TrialRunner

__all__ = ["TrialResult", "ExperimentResult", "run_trials"]

#: Signature of a trial function: ``(seed, trial_index) -> measurements``.
TrialFunction = Callable[[int, int], Mapping[str, Any]]


@dataclass(frozen=True)
class TrialResult:
    """Measurements returned by a single trial."""

    trial_index: int
    seed: int
    measurements: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.measurements[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Return a measurement, or ``default`` when the trial did not record it."""
        return self.measurements.get(key, default)


@dataclass
class ExperimentResult:
    """All trials of one experiment configuration."""

    name: str
    config: Dict[str, Any] = field(default_factory=dict)
    trials: List[TrialResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def num_trials(self) -> int:
        """Number of completed trials."""
        return len(self.trials)

    def values(self, key: str) -> List[float]:
        """All numeric values recorded under ``key`` (skips missing entries)."""
        collected = [trial.get(key) for trial in self.trials]
        present = [float(value) for value in collected if value is not None]
        if not present:
            raise ExperimentError(f"no trial recorded a value for {key!r}")
        return present

    def flags(self, key: str) -> List[bool]:
        """All boolean values recorded under ``key``."""
        collected = [trial.get(key) for trial in self.trials]
        present = [bool(value) for value in collected if value is not None]
        if not present:
            raise ExperimentError(f"no trial recorded a flag for {key!r}")
        return present

    def scalar_summary(self, key: str) -> ScalarSummary:
        """Mean/spread summary of a numeric measurement across trials."""
        return summarize_scalar(self.values(key))

    def rate_summary(self, key: str) -> BernoulliSummary:
        """Success-rate summary of a boolean measurement across trials."""
        return summarize_bernoulli(self.flags(key))

    def mean(self, key: str) -> float:
        """Mean of a numeric measurement."""
        return self.scalar_summary(key).mean

    def mean_or(self, key: str, default: float = float("nan")) -> float:
        """Mean of a numeric measurement, or ``default`` when every value is ``None``.

        Trials that recorded ``None`` under ``key`` — e.g. a never-converged
        run's rounds-to-convergence — are excluded from the mean exactly as in
        :meth:`values`; ``default`` (``NaN`` unless overridden) is returned
        only when every trial explicitly recorded ``None``.  A ``key`` that no
        trial recorded at all still raises like :meth:`mean`, so a typo'd or
        renamed measurement fails loudly instead of degrading to ``default``.
        Experiment drivers use this to report budget-exhausted trials as
        "no data" instead of silently counting them at their round budget.
        """
        try:
            return self.mean(key)
        except ExperimentError:
            if not any(key in trial.measurements for trial in self.trials):
                raise
            return default

    def rate(self, key: str) -> float:
        """Observed rate of a boolean measurement."""
        return self.rate_summary(key).rate

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (used by :mod:`repro.analysis.resultsio`)."""
        return {
            "name": self.name,
            "config": self.config,
            "trials": [
                {
                    "trial_index": trial.trial_index,
                    "seed": trial.seed,
                    "measurements": trial.measurements,
                }
                for trial in self.trials
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`."""
        trials = [
            TrialResult(
                trial_index=int(entry["trial_index"]),
                seed=int(entry["seed"]),
                measurements=dict(entry["measurements"]),
            )
            for entry in payload.get("trials", [])
        ]
        return cls(name=str(payload["name"]), config=dict(payload.get("config", {})), trials=trials)


def run_trials(
    name: str,
    trial_fn: TrialFunction,
    num_trials: int,
    base_seed: int = 0,
    config: Optional[Mapping[str, Any]] = None,
    runner: Optional["TrialRunner"] = None,
) -> ExperimentResult:
    """Run ``num_trials`` independent trials of ``trial_fn`` and collect the results.

    Parameters
    ----------
    name:
        Experiment identifier (stored in the result).
    trial_fn:
        Callable ``(seed, trial_index) -> mapping of measurements``.  Each
        trial receives its own seed derived deterministically from
        ``base_seed`` and the trial index.
    num_trials:
        Number of independent trials.
    base_seed:
        Root seed; fixing it makes the whole experiment reproducible.
    config:
        Arbitrary configuration metadata stored alongside the results.
    runner:
        Trial-execution strategy from :mod:`repro.exec.runner`; ``None``
        selects the serial runner.  Runners derive identical per-trial seeds,
        so the result does not depend on which one executes the trials (for
        a picklable ``trial_fn``, parallel results are bit-identical).
    """
    if runner is None:
        # Imported late: repro.exec.runner imports this module for the result
        # containers, so a top-level import either way would be circular.
        from ..exec.runner import SerialTrialRunner

        runner = SerialTrialRunner()
    return runner.run(
        name=name, trial_fn=trial_fn, num_trials=num_trials, base_seed=base_seed, config=config
    )
