"""Parameter sweeps: run the same experiment over a grid of configurations.

Every experiment driver in :mod:`repro.experiments` (the E1–E11 table in
``README.md``) is a sweep over one or two parameters (``n``, ``epsilon``,
``|A|``, initial bias, clock skew ...) with a fixed number of Monte-Carlo
trials per grid point.  This module provides the grid construction and the
sweep runner, returning one
:class:`~repro.analysis.experiments.ExperimentResult` per point.  Like
:func:`~repro.analysis.experiments.run_trials`, :func:`run_sweep` accepts a
trial runner from :mod:`repro.exec.runner` to execute each point's trials in
parallel.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .experiments import ExperimentResult, run_trials

if TYPE_CHECKING:  # pragma: no cover - avoids an import cycle with repro.exec
    from ..exec.runner import TrialRunner

__all__ = ["SweepPoint", "SweepResult", "parameter_grid", "run_sweep", "sweep_point_names"]

#: Signature of a sweep trial function: ``(point, seed, trial_index) -> measurements``.
SweepTrialFunction = Callable[[Mapping[str, Any], int, int], Mapping[str, Any]]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a sweep (an immutable view of its parameters)."""

    parameters: Tuple[Tuple[str, Any], ...]

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "SweepPoint":
        """Build a point from a parameter mapping (order preserved)."""
        return cls(parameters=tuple(mapping.items()))

    def as_dict(self) -> Dict[str, Any]:
        """The point's parameters as a plain dict."""
        return dict(self.parameters)

    def label(self) -> str:
        """Compact human-readable label, e.g. ``n=1000, eps=0.2``."""
        return ", ".join(f"{key}={value}" for key, value in self.parameters)


@dataclass
class SweepResult:
    """All grid points of a sweep with their per-point experiment results."""

    name: str
    points: List[SweepPoint] = field(default_factory=list)
    results: List[ExperimentResult] = field(default_factory=list)

    def __iter__(self):
        return iter(zip(self.points, self.results))

    def __len__(self) -> int:
        return len(self.points)

    def _extract(
        self, parameter: str, summarise: Callable[[ExperimentResult], float]
    ) -> Tuple[List[Any], List[float]]:
        """Walk the sweep pairing each point's ``parameter`` value with a per-result summary."""
        xs: List[Any] = []
        ys: List[float] = []
        for point, result in self:
            params = point.as_dict()
            if parameter not in params:
                raise ExperimentError(f"sweep point {point.label()} has no parameter {parameter!r}")
            xs.append(params[parameter])
            ys.append(summarise(result))
        return xs, ys

    def series(self, parameter: str, measurement: str) -> Tuple[List[Any], List[float]]:
        """Extract ``(parameter values, mean measurement)`` across the sweep.

        Useful for scaling fits: e.g. ``series("n", "rounds")``.
        """
        return self._extract(parameter, lambda result: result.mean(measurement))

    def rates(self, parameter: str, flag: str) -> Tuple[List[Any], List[float]]:
        """Extract ``(parameter values, success rates)`` across the sweep."""
        return self._extract(parameter, lambda result: result.rate(flag))

    def point_names(self) -> List[str]:
        """Collision-free per-point experiment names (the canonical naming).

        Delegates to :func:`sweep_point_names` — the single point-naming
        rule shared by the serial, point-parallel and batched sweep paths —
        so consumers (run-artifact manifests, persistence payloads) never
        re-derive names from the ambiguous :meth:`SweepPoint.label`, which
        collides on duplicate grid points.
        """
        return sweep_point_names(self.name, self.points)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation."""
        return {
            "name": self.name,
            "points": [point.as_dict() for point in self.points],
            "point_names": self.point_names(),
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepResult":
        """Inverse of :meth:`to_dict` (used by :func:`repro.analysis.resultsio.load_sweep`)."""
        points = [SweepPoint.from_mapping(entry) for entry in payload.get("points", [])]
        results = [ExperimentResult.from_dict(entry) for entry in payload.get("results", [])]
        if len(points) != len(results):
            raise ExperimentError(
                f"sweep payload has {len(points)} points but {len(results)} results"
            )
        sweep = cls(name=str(payload["name"]), points=points, results=results)
        recorded = payload.get("point_names")
        if recorded is not None and list(recorded) != sweep.point_names():
            raise ExperimentError(
                f"sweep payload {sweep.name!r} records point names {list(recorded)!r} "
                f"but the canonical naming derives {sweep.point_names()!r}"
            )
        return sweep


def sweep_point_names(name: str, points: Sequence[SweepPoint]) -> List[str]:
    """Per-point experiment names for a sweep, collision-free by construction.

    Each point's experiment — and therefore its trial-seed derivation — is
    named ``"{name}[{label}]"``.  Labels are ``str()``-rendered parameter
    values, so duplicate grid points (or distinct values with identical
    ``str()``, e.g. ``1`` and ``True``) would otherwise receive byte-identical
    seed lists and perfectly correlated trials.  Repeat occurrences of a
    label are therefore suffixed with the point's index in the sweep
    (``"{name}[{label}]#{index}"``), while the *first* occurrence keeps its
    historical name — so existing sweeps reproduce identically and appending
    points (even duplicates) never changes the results of earlier points.

    Shared by the serial, point-parallel and batched sweep paths
    (:func:`run_sweep` and :func:`repro.exec.batching.run_sweep_batched`), so
    every path derives the same per-point seeds.
    """
    seen: Counter = Counter()
    names = []
    for index, point in enumerate(points):
        label = point.label()
        names.append(f"{name}[{label}]" if label not in seen else f"{name}[{label}]#{index}")
        seen[label] += 1
    return names


def parameter_grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named parameter axes, as a list of dicts.

    >>> parameter_grid(n=[100, 200], epsilon=[0.1, 0.2])  # doctest: +NORMALIZE_WHITESPACE
    [{'n': 100, 'epsilon': 0.1}, {'n': 100, 'epsilon': 0.2},
     {'n': 200, 'epsilon': 0.1}, {'n': 200, 'epsilon': 0.2}]
    """
    if not axes:
        raise ExperimentError("parameter_grid needs at least one axis")
    names = list(axes)
    combinations = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, values)) for values in combinations]


@dataclass(frozen=True)
class _PointBoundTrial:
    """A sweep trial function with one grid point's parameters bound.

    A module-level class (rather than a closure) so the bound trial can cross
    a process boundary: :class:`~repro.exec.runner.ParallelTrialRunner`
    pickles the trial function into its workers, and closures cannot be
    pickled.  The instance is picklable whenever ``trial_fn`` itself is.
    """

    trial_fn: SweepTrialFunction
    point: SweepPoint

    def __call__(self, seed: int, trial_index: int) -> Mapping[str, Any]:
        """Run one trial at the bound grid point."""
        return self.trial_fn(self.point.as_dict(), seed, trial_index)


def run_sweep(
    name: str,
    points: Iterable[Mapping[str, Any]],
    trial_fn: SweepTrialFunction,
    trials_per_point: int,
    base_seed: int = 0,
    runner: Optional["TrialRunner"] = None,
    point_jobs: Optional[int] = None,
) -> SweepResult:
    """Run ``trials_per_point`` trials of ``trial_fn`` at every grid point.

    The per-point experiment is named ``"{name}[{point label}]"`` and seeded
    independently of the other points, so adding points to a sweep never
    changes existing results.  Duplicate point labels are disambiguated with
    the point index (see :func:`sweep_point_names`), so repeated grid points
    run statistically independent — not byte-identical — trials.  ``runner``
    selects the execution strategy for each point's trials (see
    :func:`repro.analysis.experiments.run_trials`).

    ``point_jobs`` instead parallelises *across* grid points: one shared
    process pool executes whole points concurrently (``0`` = one worker per
    CPU), each worker running its point's trials serially.  Per-point trial
    seeds are derived in the parent exactly as the serial path derives them
    and results are assembled in point order, so the returned sweep is
    bit-identical to a serial run — the same identical-results contract as
    :class:`~repro.exec.runner.ParallelTrialRunner`, at point granularity.
    When ``point_jobs`` is active it takes precedence over ``runner`` (the
    pool is already saturated by points); unpicklable trial functions fall
    back to the serial path gracefully.
    """
    point_list = [SweepPoint.from_mapping(raw_point) for raw_point in points]
    point_names = sweep_point_names(name, point_list)

    # Imported late: repro.exec depends on this module for the sweep
    # containers, so a top-level import either way would be circular.
    from ..exec import pool as exec_pool

    # A run-level backend (installed by run_experiment for --backend runs)
    # takes the sweep at point granularity even when the caller did not ask
    # for point_jobs — that is how a serial-path sweep shards across remote
    # workers with zero driver changes.
    backend_installed = exec_pool.active_backend() is not None
    if point_jobs is not None or (backend_installed and runner is None):
        from ..exec.runner import TrialRunner as _TrialRunner, trial_seeds

        if trials_per_point < 1:
            raise ExperimentError("trials_per_point must be at least 1")
        jobs = exec_pool.resolve_point_jobs(point_jobs, len(point_list))
        bound_trials = [_PointBoundTrial(trial_fn, point) for point in point_list]
        # Probe the *bound* trials: the point parameters cross the process
        # boundary too, so an unpicklable point value must also trigger the
        # graceful serial fallback (as it does for ParallelTrialRunner).
        if (jobs > 1 or backend_installed) and all(
            exec_pool.picklability_error(bound) is None for bound in bound_trials
        ):
            seed_lists = [
                trial_seeds(base_seed, point_name, trials_per_point)
                for point_name in point_names
            ]
            raw_lists = exec_pool.run_point_trials_in_pool(
                list(zip(bound_trials, seed_lists)), jobs, names=point_names
            )
            sweep = SweepResult(name=name)
            for point, point_name, seeds, raw in zip(
                point_list, point_names, seed_lists, raw_lists
            ):
                sweep.points.append(point)
                sweep.results.append(
                    _TrialRunner._package(point_name, point.as_dict(), seeds, raw)
                )
            return sweep

    sweep = SweepResult(name=name)
    for point, point_name in zip(point_list, point_names):
        result = run_trials(
            name=point_name,
            trial_fn=_PointBoundTrial(trial_fn, point),
            num_trials=trials_per_point,
            base_seed=base_seed,
            config=point.as_dict(),
            runner=runner,
        )
        sweep.points.append(point)
        sweep.results.append(result)
    return sweep
