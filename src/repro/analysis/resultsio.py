"""Persistence of experiment results as JSON.

Benchmarks and examples can save their :class:`ExperimentResult` /
:class:`SweepResult` objects so that reported numbers can be traced
back to concrete runs.  JSON is used (rather than pickles) so results remain
inspectable and diff-able.

Non-finite floats (``NaN``, ``±Infinity``) are mapped to ``null`` on the way
out: strict JSON has no token for them, and Python's default
``allow_nan=True`` would happily emit files no strict parser (browsers,
``jq``, other languages) accepts.  ``NaN`` measurements arise legitimately —
e.g. a driver reporting "no trial converged" as a ``NaN`` rounds mean — so
the mapping is done in :func:`to_jsonable` and ``allow_nan=False`` is passed
to ``json.dumps`` as a regression guard: a non-finite float that slips past
the conversion fails loudly at save time instead of producing invalid JSON.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Union

import numpy as np

from ..errors import ExperimentError
from .experiments import ExperimentResult
from .sweeps import SweepResult

__all__ = ["to_jsonable", "save_result", "load_result", "save_sweep", "load_sweep"]


def to_jsonable(value: Any) -> Any:
    """Recursively convert a value so strict ``json`` can serialise it.

    Numpy scalars/arrays become their Python equivalents, and non-finite
    floats (``NaN``, ``±Infinity`` — numpy or builtin) become ``None``, since
    strict JSON cannot represent them (see the module docstring).
    """
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (np.floating, float)):
        as_float = float(value)
        return as_float if math.isfinite(as_float) else None
    return value


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write an :class:`ExperimentResult` to ``path`` as strict JSON and return the path."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        json.dumps(to_jsonable(result.to_dict()), indent=2, sort_keys=True, allow_nan=False)
    )
    return destination


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read an :class:`ExperimentResult` previously written by :func:`save_result`."""
    source = Path(path)
    if not source.exists():
        raise ExperimentError(f"no result file at {source}")
    payload = json.loads(source.read_text())
    return ExperimentResult.from_dict(payload)


def save_sweep(sweep: SweepResult, path: Union[str, Path]) -> Path:
    """Write a :class:`SweepResult` to ``path`` as strict JSON and return the path."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(
        json.dumps(to_jsonable(sweep.to_dict()), indent=2, sort_keys=True, allow_nan=False)
    )
    return destination


def load_sweep(path: Union[str, Path]) -> SweepResult:
    """Read a :class:`SweepResult` previously written by :func:`save_sweep`."""
    source = Path(path)
    if not source.exists():
        raise ExperimentError(f"no sweep file at {source}")
    payload = json.loads(source.read_text())
    return SweepResult.from_dict(payload)
