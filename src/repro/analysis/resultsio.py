"""Deprecated location: persistence moved to :mod:`repro.store`.

This module used to host the JSON persistence layer — the strict-JSON
codecs (``to_jsonable``, ``encode_nonfinite``/``decode_nonfinite``), the
result/sweep writers (``save_result``/``load_result``,
``save_sweep``/``load_sweep``) and the run-artifact store (``RunArtifact``,
``save_run``/``load_run``).  All of it now lives in the :mod:`repro.store`
package, where it gained content addressing (fingerprints, the
``RunStore`` cache) and atomic writes.

Every historical name keeps working here, forwarded verbatim to its new
home, so existing drivers, examples and notebooks do not break — artifacts
written through this shim are bit-identical to ones written through
:mod:`repro.store`.  The first attribute access emits a single
:class:`DeprecationWarning` per process pointing at the new package.
"""

from __future__ import annotations

import warnings
from typing import Any

__all__ = [
    "to_jsonable",
    "encode_nonfinite",
    "decode_nonfinite",
    "save_result",
    "load_result",
    "save_sweep",
    "load_sweep",
    "RunArtifact",
    "save_run",
    "load_run",
]

#: Set once the deprecation warning has been emitted for this process.
_warned = False


def __getattr__(name: str) -> Any:
    """Forward the historical names to :mod:`repro.store`, warning once."""
    if name not in __all__:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    global _warned
    if not _warned:
        _warned = True
        warnings.warn(
            "repro.analysis.resultsio is deprecated; the persistence layer moved to "
            "repro.store (same names, plus the content-addressed RunStore cache)",
            DeprecationWarning,
            stacklevel=2,
        )
    from .. import store

    return getattr(store, name)


def __dir__() -> list:
    """Expose the forwarded names to introspection (tab completion, docs)."""
    return sorted(__all__)
