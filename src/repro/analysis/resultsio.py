"""Persistence of experiment results as JSON.

Benchmarks and examples can save their :class:`ExperimentResult` /
:class:`SweepResult` objects so that reported numbers can be traced
back to concrete runs.  JSON is used (rather than pickles) so results remain
inspectable and diff-able.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np

from ..errors import ExperimentError
from .experiments import ExperimentResult
from .sweeps import SweepResult

__all__ = ["to_jsonable", "save_result", "load_result", "save_sweep"]


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays so ``json`` can serialise them."""
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write an :class:`ExperimentResult` to ``path`` as JSON and return the path."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(json.dumps(to_jsonable(result.to_dict()), indent=2, sort_keys=True))
    return destination


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read an :class:`ExperimentResult` previously written by :func:`save_result`."""
    source = Path(path)
    if not source.exists():
        raise ExperimentError(f"no result file at {source}")
    payload = json.loads(source.read_text())
    return ExperimentResult.from_dict(payload)


def save_sweep(sweep: SweepResult, path: Union[str, Path]) -> Path:
    """Write a :class:`SweepResult` to ``path`` as JSON and return the path."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(json.dumps(to_jsonable(sweep.to_dict()), indent=2, sort_keys=True))
    return destination
