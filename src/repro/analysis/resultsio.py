"""Persistence of experiment results, reports and run artifacts as JSON.

Benchmarks, examples and the unified experiment API can save their
:class:`ExperimentResult` / :class:`SweepResult` objects — and, since the
``repro.api`` front door, whole :class:`RunArtifact` directories — so that
reported numbers can be traced back to concrete runs.  JSON is used (rather
than pickles) so results remain inspectable and diff-able.

Non-finite floats (``NaN``, ``±Infinity``) are mapped to ``null`` on the way
out: strict JSON has no token for them, and Python's default
``allow_nan=True`` would happily emit files no strict parser (browsers,
``jq``, other languages) accepts.  ``NaN`` measurements arise legitimately —
e.g. a driver reporting "no trial converged" as a ``NaN`` rounds mean — so
the mapping is done in :func:`to_jsonable` and ``allow_nan=False`` is passed
to ``json.dumps`` as a regression guard: a non-finite float that slips past
the conversion fails loudly at save time instead of producing invalid JSON.

Report tables distinguish ``NaN`` ("no trial converged", rendered ``nan``)
from ``None`` ("not applicable", rendered ``-``), so collapsing both to
``null`` would change a reloaded report.  :func:`encode_nonfinite` /
:func:`decode_nonfinite` therefore tag non-finite floats as
``{"__nonfinite__": "nan" | "inf" | "-inf"}`` inside report and manifest
payloads — still strict JSON, but round-tripping to the exact same rendered
table.

The run-artifact store (:class:`RunArtifact`, :func:`save_run`,
:func:`load_run`) writes one directory per run: a ``manifest.json`` (spec
id, resolved execution settings, package version, wall time, file listing),
the rendered-table payload ``report.json``, and any attached sweep/result
payloads via the writers above.  Attached sweeps record their canonical
per-point names (:meth:`repro.analysis.sweeps.SweepResult.point_names`) in
the manifest, so duplicate grid points stay distinguishable in the artifact
without re-deriving labels.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

import numpy as np

from ..errors import ExperimentError
from .experiments import ExperimentResult
from .sweeps import SweepResult

if TYPE_CHECKING:  # pragma: no cover - annotation-only upward reference
    from ..experiments.report import ExperimentReport

__all__ = [
    "to_jsonable",
    "encode_nonfinite",
    "decode_nonfinite",
    "save_result",
    "load_result",
    "save_sweep",
    "load_sweep",
    "RunArtifact",
    "save_run",
    "load_run",
]

#: Manifest key tagging an encoded non-finite float.
_NONFINITE_KEY = "__nonfinite__"

#: Current on-disk layout version of a run-artifact directory.
_ARTIFACT_FORMAT = 1

#: Attached sweep/result payload keys must be safe as file names.
_PAYLOAD_KEY = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _jsonable(value: Any, nonfinite: Any, guard_reserved: bool) -> Any:
    """Shared recursive conversion behind the two public converters.

    ``nonfinite`` maps a non-finite float to its JSON stand-in;
    ``guard_reserved`` rejects payloads already using the tag key (only
    meaningful when ``nonfinite`` produces tagged dicts).
    """
    if isinstance(value, dict):
        if guard_reserved and _NONFINITE_KEY in value:
            raise ExperimentError(
                f"payload already contains the reserved key {_NONFINITE_KEY!r}"
            )
        return {
            str(key): _jsonable(item, nonfinite, guard_reserved)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(item, nonfinite, guard_reserved) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(item, nonfinite, guard_reserved) for item in value.tolist()]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (np.floating, float)):
        as_float = float(value)
        return as_float if math.isfinite(as_float) else nonfinite(as_float)
    return value


def to_jsonable(value: Any) -> Any:
    """Recursively convert a value so strict ``json`` can serialise it.

    Numpy scalars/arrays become their Python equivalents, and non-finite
    floats (``NaN``, ``±Infinity`` — numpy or builtin) become ``None``, since
    strict JSON cannot represent them (see the module docstring).
    """
    return _jsonable(value, lambda _: None, guard_reserved=False)


def _tag_nonfinite(as_float: float) -> Dict[str, str]:
    """The strict-JSON stand-in for one non-finite float."""
    if math.isnan(as_float):
        return {_NONFINITE_KEY: "nan"}
    return {_NONFINITE_KEY: "inf" if as_float > 0 else "-inf"}


def encode_nonfinite(value: Any) -> Any:
    """Like :func:`to_jsonable`, but keep non-finite floats distinguishable.

    ``NaN`` / ``±Infinity`` become ``{"__nonfinite__": "nan" | "inf" |
    "-inf"}`` instead of ``null``, so payloads that carry both "no data"
    (``None``) and "not a number" (``NaN``) — report tables, manifests —
    survive a round-trip exactly.  :func:`decode_nonfinite` is the inverse.
    """
    return _jsonable(value, _tag_nonfinite, guard_reserved=True)


def decode_nonfinite(value: Any) -> Any:
    """Inverse of :func:`encode_nonfinite` (tagged dicts back to floats)."""
    if isinstance(value, dict):
        if set(value) == {_NONFINITE_KEY}:
            return float(value[_NONFINITE_KEY])
        return {key: decode_nonfinite(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_nonfinite(item) for item in value]
    return value


def _write_json(payload: Any, path: Path, sort_keys: bool = True) -> Path:
    """Write an already-jsonable payload as strict JSON (shared writer).

    ``sort_keys=False`` is for payloads whose key order is meaningful —
    report rows render their columns in insertion order.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=sort_keys, allow_nan=False))
    return path


def _read_json(path: Path, kind: str) -> Any:
    """Read one JSON file, raising a labelled error when it is missing."""
    if not path.exists():
        raise ExperimentError(f"no {kind} file at {path}")
    return json.loads(path.read_text())


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write an :class:`ExperimentResult` to ``path`` as strict JSON and return the path."""
    return _write_json(to_jsonable(result.to_dict()), Path(path))


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read an :class:`ExperimentResult` previously written by :func:`save_result`."""
    return ExperimentResult.from_dict(_read_json(Path(path), "result"))


def save_sweep(sweep: SweepResult, path: Union[str, Path]) -> Path:
    """Write a :class:`SweepResult` to ``path`` as strict JSON and return the path."""
    return _write_json(to_jsonable(sweep.to_dict()), Path(path))


def load_sweep(path: Union[str, Path]) -> SweepResult:
    """Read a :class:`SweepResult` previously written by :func:`save_sweep`."""
    return SweepResult.from_dict(_read_json(Path(path), "sweep"))


@dataclass
class RunArtifact:
    """One experiment run: resolved inputs, rendered output, provenance.

    Produced by :func:`repro.api.run_experiment` and persisted/reloaded by
    :func:`save_run` / :func:`load_run`.

    Attributes
    ----------
    spec_id:
        The experiment id from the registry (e.g. ``"E7"``).
    parameters:
        The fully resolved parameter values of the run (spec defaults with
        every override applied).
    execution:
        The resolved execution plan summary
        (:meth:`repro.api.config.ExecutionPlan.describe`).
    report:
        The driver's :class:`~repro.experiments.report.ExperimentReport`.
    version:
        The ``repro`` package version that produced the run.
    wall_time_seconds:
        Wall-clock duration of the driver call.
    sweeps / results:
        Optional attached raw payloads, keyed by a file-name-safe label;
        written via the sweep/result writers above.
    path:
        The directory the artifact was saved to / loaded from (``None``
        while in memory only).
    """

    spec_id: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    execution: Dict[str, Any] = field(default_factory=dict)
    report: Optional["ExperimentReport"] = None
    version: str = ""
    wall_time_seconds: float = 0.0
    sweeps: Dict[str, SweepResult] = field(default_factory=dict)
    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    path: Optional[Path] = None

    def attach_sweep(self, key: str, sweep: SweepResult) -> None:
        """Attach a raw sweep payload under a file-name-safe key."""
        _validate_payload_key(key)
        self.sweeps[key] = sweep

    def attach_result(self, key: str, result: ExperimentResult) -> None:
        """Attach a raw result payload under a file-name-safe key."""
        _validate_payload_key(key)
        self.results[key] = result


def _validate_payload_key(key: str) -> None:
    """Payload keys double as file stems; reject anything path-unsafe."""
    if not _PAYLOAD_KEY.match(key):
        raise ExperimentError(
            f"artifact payload key {key!r} is not a safe file stem "
            "(letters, digits, '.', '_', '-' only)"
        )


def _payload_path(source: Path, section: str, key: str, entry: Dict[str, Any]) -> Path:
    """Resolve one manifest payload entry to a path *inside* the artifact.

    Paths are re-derived from the validated key rather than trusted from the
    manifest, so a hand-edited ``file`` field (absolute, or ``..``-relative)
    cannot make the loader read outside the artifact directory.
    """
    _validate_payload_key(key)
    expected = f"{section}/{key}.json"
    recorded = entry.get("file", expected)
    if recorded != expected:
        raise ExperimentError(
            f"run artifact manifest entry {key!r} records file {recorded!r}, "
            f"outside the artifact layout (expected {expected!r})"
        )
    return source / section / f"{key}.json"


def save_run(artifact: RunArtifact, directory: Union[str, Path]) -> Path:
    """Write a :class:`RunArtifact` to ``directory`` and return the directory.

    Layout: ``manifest.json`` (provenance + file listing), ``report.json``
    (the rendered-table payload, non-finite floats preserved via
    :func:`encode_nonfinite`), ``sweeps/<key>.json`` and
    ``results/<key>.json`` for the attached raw payloads (written with the
    standard NaN-safe writers).  The manifest records each attached sweep's
    canonical point names, so duplicate grid points remain distinguishable
    without re-deriving labels from point values.
    """
    if artifact.report is None:
        raise ExperimentError("cannot save a run artifact without a report")
    destination = Path(directory)
    destination.mkdir(parents=True, exist_ok=True)

    # Row/column order is part of a rendered table; keep insertion order.
    _write_json(
        encode_nonfinite(artifact.report.to_dict()), destination / "report.json", sort_keys=False
    )

    sweep_entries: Dict[str, Any] = {}
    for key, sweep in sorted(artifact.sweeps.items()):
        _validate_payload_key(key)
        save_sweep(sweep, destination / "sweeps" / f"{key}.json")
        sweep_entries[key] = {
            "file": f"sweeps/{key}.json",
            "name": sweep.name,
            "point_names": sweep.point_names(),
        }
    result_entries: Dict[str, Any] = {}
    for key, result in sorted(artifact.results.items()):
        _validate_payload_key(key)
        save_result(result, destination / "results" / f"{key}.json")
        result_entries[key] = {"file": f"results/{key}.json", "name": result.name}

    manifest = {
        "format": _ARTIFACT_FORMAT,
        "spec_id": artifact.spec_id,
        "parameters": artifact.parameters,
        "execution": artifact.execution,
        "version": artifact.version,
        "wall_time_seconds": artifact.wall_time_seconds,
        "files": {"report": "report.json", "sweeps": sweep_entries, "results": result_entries},
    }
    _write_json(encode_nonfinite(manifest), destination / "manifest.json")
    artifact.path = destination
    return destination


def load_run(directory: Union[str, Path]) -> RunArtifact:
    """Read a :class:`RunArtifact` previously written by :func:`save_run`.

    Round-trips everything the writer recorded — including non-finite report
    cells — and re-derives each attached sweep's canonical point names,
    raising :class:`~repro.errors.ExperimentError` when they disagree with
    the manifest (a corrupted or hand-edited artifact).
    """
    # Imported late: the report type lives one layer up (repro.experiments),
    # which itself imports this analysis layer at module import time.
    from ..experiments.report import ExperimentReport

    source = Path(directory)
    manifest = decode_nonfinite(_read_json(source / "manifest.json", "run manifest"))
    if manifest.get("format") != _ARTIFACT_FORMAT:
        raise ExperimentError(
            f"unsupported run-artifact format {manifest.get('format')!r} at {source} "
            f"(expected {_ARTIFACT_FORMAT})"
        )
    files = manifest.get("files", {})

    report_payload = decode_nonfinite(
        _read_json(source / files.get("report", "report.json"), "run report")
    )
    report = ExperimentReport.from_dict(report_payload)

    sweeps: Dict[str, SweepResult] = {}
    for key, entry in files.get("sweeps", {}).items():
        sweep = load_sweep(_payload_path(source, "sweeps", key, entry))
        if entry.get("point_names") is not None and sweep.point_names() != list(
            entry["point_names"]
        ):
            raise ExperimentError(
                f"run artifact at {source} records point names {entry['point_names']!r} "
                f"for sweep {key!r} but the payload derives {sweep.point_names()!r}"
            )
        sweeps[key] = sweep
    results = {
        key: load_result(_payload_path(source, "results", key, entry))
        for key, entry in files.get("results", {}).items()
    }

    return RunArtifact(
        spec_id=str(manifest["spec_id"]),
        parameters=dict(manifest.get("parameters", {})),
        execution=dict(manifest.get("execution", {})),
        report=report,
        version=str(manifest.get("version", "")),
        wall_time_seconds=float(manifest.get("wall_time_seconds", 0.0)),
        sweeps=sweeps,
        results=results,
        path=source,
    )
