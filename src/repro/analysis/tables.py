"""Plain-text table rendering.

The paper being a theory paper, this repository's "figures" are tables of
measured quantities printed by the benchmark harness and recorded in
the rendered experiment reports.  :func:`render_table` formats a list of row dictionaries as
a GitHub-flavoured markdown table (which also reads fine as plain text in a
terminal), with light numeric formatting.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence

from ..errors import ParameterError

__all__ = ["format_cell", "render_table", "render_kv"]


def format_cell(value: Any, float_digits: int = 3) -> str:
    """Format one cell: floats rounded, booleans as yes/no, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 10_000 or abs(value) < 10 ** (-float_digits)):
            return f"{value:.{float_digits}e}"
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    float_digits: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render rows (list of dicts) as a markdown table.

    Parameters
    ----------
    rows:
        The data; missing keys render as a dash.
    columns:
        Column order; defaults to the keys of the first row.
    float_digits:
        Decimal places for floating-point cells.
    title:
        Optional heading printed above the table.
    """
    if not rows:
        raise ParameterError("cannot render an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    if not columns:
        raise ParameterError("cannot render a table with no columns")

    header = [str(column) for column in columns]
    body: List[List[str]] = [
        [format_cell(row.get(column), float_digits) for column in columns] for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(columns))
    ]

    def format_line(cells: Iterable[str]) -> str:
        return "| " + " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)) + " |"

    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append(format_line(header))
    lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
    lines.extend(format_line(line) for line in body)
    return "\n".join(lines)


def render_kv(mapping: Mapping[str, Any], float_digits: int = 3, title: Optional[str] = None) -> str:
    """Render a flat mapping as an aligned ``key: value`` block."""
    if not mapping:
        raise ParameterError("cannot render an empty mapping")
    width = max(len(str(key)) for key in mapping)
    lines = [f"{title}" ] if title else []
    lines.extend(
        f"{str(key).ljust(width)} : {format_cell(value, float_digits)}" for key, value in mapping.items()
    )
    return "\n".join(lines)
