"""Structured event tracing for small-scale debugging runs.

Traces are never required for correctness; they exist so that unit tests and
human debugging sessions can inspect the exact sequence of deliveries and
opinion changes a protocol produced at small ``n``.  The trace is bounded so
that accidentally enabling it on a large run cannot exhaust memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List

__all__ = ["TraceEvent", "EventTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """A single traced event.

    Attributes
    ----------
    round_index:
        Global round at which the event happened.
    kind:
        Event category, e.g. ``"deliver"``, ``"adopt"``, ``"phase_start"``.
    payload:
        Arbitrary JSON-serialisable details.
    """

    round_index: int
    kind: str
    payload: Dict[str, Any]


@dataclass
class EventTrace:
    """A bounded, append-only list of :class:`TraceEvent`.

    Parameters
    ----------
    enabled:
        When ``False`` (the default) every call is a no-op, so hot loops can
        call :meth:`record` unconditionally.
    max_events:
        Hard cap on stored events; once reached, further events are counted
        but not stored.
    """

    enabled: bool = False
    max_events: int = 100_000
    events: List[TraceEvent] = field(default_factory=list)
    dropped: int = 0

    def record(self, round_index: int, kind: str, **payload: Any) -> None:
        """Record an event (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(round_index=round_index, kind=kind, payload=payload))

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All stored events of the given ``kind`` in order."""
        return [event for event in self.events if event.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def clear(self) -> None:
        """Drop all stored events."""
        self.events.clear()
        self.dropped = 0
