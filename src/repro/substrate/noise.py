"""Channel noise models for the Flip model.

Section 1.3.2 of the paper specifies that every delivered message is a single
bit which is flipped *independently* with probability at most ``1/2 - epsilon``.
The canonical channel is therefore the binary symmetric channel (BSC) with
crossover probability ``p = 1/2 - epsilon``; the paper's guarantees only
require ``p <= 1/2 - epsilon``, so we also provide a heterogeneous channel
(different flip probability per message, all bounded by ``1/2 - epsilon``)
and a perfect channel (``epsilon = 1/2``) used by noiseless baselines.

All channels operate on vectors of bits (``numpy`` arrays with values in
``{0, 1}``) and consume randomness from an explicitly passed generator, never
from global state.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError

__all__ = [
    "NoiseChannel",
    "BinarySymmetricChannel",
    "PerfectChannel",
    "HeterogeneousChannel",
    "AdversarialFlipBudgetChannel",
    "crossover_probability",
    "validate_epsilon",
]


def validate_epsilon(epsilon: float) -> float:
    """Validate that ``epsilon`` lies in the half-open interval ``(0, 1/2]``.

    Returns the value as ``float`` for convenience.  ``epsilon = 1/2`` means a
    noiseless channel; ``epsilon`` close to 0 means messages are nearly
    uniformly random.
    """
    eps = float(epsilon)
    if not 0.0 < eps <= 0.5:
        raise ParameterError(f"epsilon must lie in (0, 0.5], got {epsilon!r}")
    return eps


def crossover_probability(epsilon: float) -> float:
    """Return the BSC crossover probability ``1/2 - epsilon`` for ``epsilon``."""
    return 0.5 - validate_epsilon(epsilon)


class NoiseChannel(abc.ABC):
    """Abstract base class for per-message bit-flipping channels."""

    #: Lower bound on the per-message correctness advantage; every concrete
    #: channel guarantees that each bit survives with probability at least
    #: ``1/2 + epsilon``.
    epsilon: float

    @abc.abstractmethod
    def transmit(self, bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a copy of ``bits`` with noise applied.

        Parameters
        ----------
        bits:
            Integer array with values in ``{0, 1}``; one entry per delivered
            message.
        rng:
            Generator supplying the channel's randomness.
        """

    def transmit_batch(
        self, bits: np.ndarray, accept_mask: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply noise to the accepted entries of a batch of delivery grids.

        The batched execution path (:mod:`repro.exec.batching`) represents the
        messages accepted in one round of ``R`` independent replicates as an
        ``(R, n)`` bit grid plus an ``(R, n)`` acceptance mask.  This helper
        noises exactly the accepted entries, in row-major (replicate-major,
        recipient-ascending) order, by delegating to :meth:`transmit` on the
        flattened masked values — so every concrete channel's semantics
        (including stateful ones such as
        :class:`AdversarialFlipBudgetChannel`) carry over to the batch path
        unchanged, bit for bit.

        Parameters
        ----------
        bits:
            ``(R, n)`` integer grid; entries outside ``accept_mask`` are
            passed through untouched.
        accept_mask:
            ``(R, n)`` boolean grid marking which entries carry an accepted
            message this round.
        rng:
            Generator supplying the channel's randomness.
        """
        grid = np.asarray(bits)
        mask = np.asarray(accept_mask, dtype=bool)
        if grid.shape != mask.shape:
            raise ParameterError(
                f"bits and accept_mask must have the same shape, got {grid.shape} vs {mask.shape}"
            )
        output = grid.copy()
        if mask.any():
            output[mask] = self.transmit(grid[mask], rng)
        return output

    def flips_applied(self) -> int:
        """Total number of bit flips applied so far (diagnostic counter)."""
        return getattr(self, "_flips", 0)

    def reset_counters(self) -> None:
        """Reset the flip counter."""
        self._flips = 0

    def _record_flips(self, flip_mask: np.ndarray) -> None:
        self._flips = getattr(self, "_flips", 0) + int(np.count_nonzero(flip_mask))

    @staticmethod
    def _check_bits(bits: np.ndarray) -> np.ndarray:
        array = np.asarray(bits)
        if array.size and (array.min() < 0 or array.max() > 1):
            raise ParameterError("channel input bits must be 0 or 1")
        return array


@dataclass
class BinarySymmetricChannel(NoiseChannel):
    """The canonical Flip-model channel: flip each bit w.p. ``1/2 - epsilon``."""

    epsilon: float = 0.2

    def __post_init__(self) -> None:
        self.epsilon = validate_epsilon(self.epsilon)
        self._flips = 0

    @property
    def flip_probability(self) -> float:
        """The crossover probability ``1/2 - epsilon``."""
        return 0.5 - self.epsilon

    def transmit(self, bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        array = self._check_bits(bits)
        if array.size == 0:
            return array.copy()
        flip_mask = rng.random(array.shape) < self.flip_probability
        self._record_flips(flip_mask)
        return np.where(flip_mask, 1 - array, array)


@dataclass
class PerfectChannel(NoiseChannel):
    """A noiseless channel (``epsilon = 1/2``); used by noiseless baselines."""

    epsilon: float = 0.5

    def __post_init__(self) -> None:
        self.epsilon = 0.5
        self._flips = 0

    def transmit(self, bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return self._check_bits(bits).copy()


@dataclass
class HeterogeneousChannel(NoiseChannel):
    """A channel whose per-message flip probability varies but stays ≤ 1/2 - epsilon.

    The paper only requires the flip probability of each message to be *at
    most* ``1/2 - epsilon``; this channel draws each message's flip
    probability uniformly from ``[low_fraction, 1] * (1/2 - epsilon)`` and is
    used in robustness tests to confirm the protocol does not secretly rely
    on the noise being identical across messages.
    """

    epsilon: float = 0.2
    low_fraction: float = 0.0

    def __post_init__(self) -> None:
        self.epsilon = validate_epsilon(self.epsilon)
        if not 0.0 <= self.low_fraction <= 1.0:
            raise ParameterError("low_fraction must lie in [0, 1]")
        self._flips = 0

    def transmit(self, bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        array = self._check_bits(bits)
        if array.size == 0:
            return array.copy()
        max_p = 0.5 - self.epsilon
        per_message_p = rng.uniform(self.low_fraction * max_p, max_p, size=array.shape)
        flip_mask = rng.random(array.shape) < per_message_p
        self._record_flips(flip_mask)
        return np.where(flip_mask, 1 - array, array)


@dataclass
class AdversarialFlipBudgetChannel(NoiseChannel):
    """A stress-testing channel that always flips the first ``budget`` bits it sees.

    This is *stronger* than anything the paper allows (the flips are not
    independent); it is only used in failure-injection tests to check that
    the simulator itself stays consistent under extreme channels, and to
    demonstrate empirically that the protocol's guarantee genuinely depends
    on the stochastic noise assumption.
    """

    epsilon: float = 0.2
    budget: int = 0
    _spent: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self.epsilon = validate_epsilon(self.epsilon)
        if self.budget < 0:
            raise ParameterError("budget must be non-negative")
        self._flips = 0

    @property
    def remaining_budget(self) -> int:
        """Number of adversarial flips still available."""
        return max(0, self.budget - self._spent)

    def transmit(self, bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        array = self._check_bits(bits)
        if array.size == 0:
            return array.copy()
        to_flip = min(self.remaining_budget, array.size)
        output = array.copy()
        if to_flip > 0:
            output.flat[:to_flip] = 1 - output.flat[:to_flip]
            self._spent += to_flip
            self._flips = getattr(self, "_flips", 0) + to_flip
        return output
