"""Fault models for the simulation substrate: crash, Byzantine, burst noise.

The paper's Theorem 3.1 is a robustness statement, but the substrate has so
far only exercised the friendliest adversary — a uniform push-gossip network
with i.i.d. bit-flip noise.  This module adds the scenario axis from ROADMAP
item 3: declarative fault *models* (:class:`NoFaults`, :class:`CrashStop`,
:class:`ByzantineSenders`, :class:`BurstNoise`) plus the runtime
:class:`FaultInjector` that applies one model to a simulated round.

Determinism contract (enforced by ``tests/unit/substrate/test_faults.py``
and ``tests/unit/exec/test_fault_batching.py``):

* **Dedicated stream.**  Every fault decision — who is fault-prone, who
  crashes in which round, which fake bit a Byzantine sender emits, when a
  burst starts — draws exclusively from the injector's own generator (the
  ``"faults"`` stream of the engine's :class:`~repro.substrate.rng.RandomSource`,
  or a ``spawn_generator`` label on the batch path).  Non-faulty agents'
  delivery and noise draws are never touched by fault decisions.
* **Fixed main-stream consumption.**  When an injector (or topology) is
  active, :mod:`repro.substrate.network` switches to *positional* full-grid
  draws so the main stream consumes exactly the same number of variates per
  round regardless of which agents crashed.  A crash in round ``t`` therefore
  cannot shift the RNG consumption of other agents in rounds ``>= t``.
* **`NoFaults` is free.**  :func:`build_injector` returns ``None`` for
  :class:`NoFaults`, and every call site treats ``None`` as "take the
  pre-existing code path byte for byte" — pinned by
  ``tests/unit/test_fault_none_regression.py`` across all E1-E11 drivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "FaultModel",
    "NoFaults",
    "CrashStop",
    "ByzantineSenders",
    "BurstNoise",
    "NONE",
    "FaultInjector",
    "build_injector",
]


@dataclass(frozen=True)
class NoFaults:
    """The identity fault model: no agent ever misbehaves.

    Exists so call sites can say ``faults=NONE`` explicitly; the injector
    factory maps it to ``None`` and the substrate stays on its pre-fault
    code path (bit-identical outputs, see the module docstring).
    """

    kind: str = field(default="none", init=False)


@dataclass(frozen=True)
class CrashStop:
    """Crash-stop senders: fault-prone agents may halt permanently.

    A fraction ``fraction`` of the non-``immune`` agents is marked
    fault-prone (drawn once from the fault stream).  At the start of every
    round each prone, still-alive agent crashes with probability
    ``crash_probability``; a crashed agent sends nothing for the rest of the
    simulation (it can still receive, matching the classic crash-stop model
    where the process stops *acting*).

    ``forced`` overrides the probabilistic schedule for tests: a mapping of
    round index to the tuple of agent ids that crash at the start of that
    round (applied to every replicate on the batch path).
    """

    fraction: float = 0.1
    crash_probability: float = 0.05
    immune: Tuple[int, ...] = ()
    forced: Optional[Mapping[int, Tuple[int, ...]]] = None
    kind: str = field(default="crash", init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ParameterError(f"fraction must be in [0, 1], got {self.fraction}")
        if not 0.0 <= self.crash_probability <= 1.0:
            raise ParameterError(
                f"crash_probability must be in [0, 1], got {self.crash_probability}"
            )


@dataclass(frozen=True)
class ByzantineSenders:
    """Byzantine senders: a fixed faulty set transmits corrupted bits.

    A fraction ``fraction`` of the non-``immune`` agents is Byzantine (drawn
    once from the fault stream).  Whenever a Byzantine agent sends, its
    outgoing bit is replaced *before* the noise channel: ``mode="random"``
    substitutes a fresh uniform bit from the fault stream,
    ``mode="adversarial"`` always transmits ``adversarial_bit`` (the
    worst-case adversary pushing the wrong opinion).
    """

    fraction: float = 0.1
    mode: str = "random"
    adversarial_bit: int = 0
    immune: Tuple[int, ...] = ()
    kind: str = field(default="byzantine", init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ParameterError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.mode not in ("random", "adversarial"):
            raise ParameterError(f"mode must be 'random' or 'adversarial', got {self.mode!r}")
        if self.adversarial_bit not in (0, 1):
            raise ParameterError(f"adversarial_bit must be 0 or 1, got {self.adversarial_bit}")


@dataclass(frozen=True)
class BurstNoise:
    """Bursty channel corruption: a two-state Markov noise regime.

    Each replicate carries a hidden good/bad channel state.  Per round the
    state flips good->bad with probability ``start_probability`` and bad->good
    with probability ``stop_probability`` (drawn from the fault stream).
    While in the bad state every *accepted* message bit is additionally
    flipped with probability ``flip_probability``, on top of the binary
    symmetric channel — modelling correlated interference instead of the
    paper's i.i.d. flips.
    """

    start_probability: float = 0.05
    stop_probability: float = 0.25
    flip_probability: float = 0.5
    kind: str = field(default="burst", init=False)

    def __post_init__(self) -> None:
        for name in ("start_probability", "stop_probability", "flip_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ParameterError(f"{name} must be in [0, 1], got {value}")


FaultModel = Union[NoFaults, CrashStop, ByzantineSenders, BurstNoise]
FaultModel.__doc__ = (
    "Union of the concrete fault-model dataclasses accepted wherever a "
    "``faults=`` keyword appears (``None`` and :data:`NONE` both mean "
    "fault-free)."
)

#: Shared no-fault singleton, the ``FaultModel.NONE`` of the issue contract.
NONE = NoFaults()


def _draw_members(
    rng: np.random.Generator,
    num_replicates: int,
    size: int,
    fraction: float,
    immune: Sequence[int],
) -> np.ndarray:
    """Pick ``floor(fraction * eligible)`` members per replicate, fault stream only.

    Membership is drawn positionally — one uniform key per ``(replicate,
    agent)`` cell, lowest keys win — so the fault stream's consumption is a
    function of the grid shape alone.
    """
    keys = rng.random((num_replicates, size))
    immune_idx = np.asarray(sorted(set(int(i) for i in immune)), dtype=np.int64)
    if immune_idx.size:
        if immune_idx.min() < 0 or immune_idx.max() >= size:
            raise ParameterError(f"immune ids must be in [0, {size}), got {tuple(immune_idx)}")
        keys[:, immune_idx] = np.inf
    eligible = size - immune_idx.size
    count = int(np.floor(fraction * eligible))
    members = np.zeros((num_replicates, size), dtype=bool)
    if count > 0:
        chosen = np.argsort(keys, axis=1, kind="stable")[:, :count]
        np.put_along_axis(members, chosen, True, axis=1)
    return members


class FaultInjector:
    """Applies one :class:`FaultModel` to a ``(num_replicates, size)`` grid.

    The injector owns all fault state — who is prone/Byzantine, who has
    crashed, which replicates are currently in a noise burst — plus marginal
    counters that the property tests compare against the configured rates.
    Serial call sites use ``num_replicates=1`` and the ``*_serial`` helpers;
    the batch kernels use the grid methods directly.  All randomness comes
    from the single ``rng`` handed to the constructor (the dedicated fault
    stream); the injector never touches a delivery or noise generator.
    """

    def __init__(
        self,
        model: FaultModel,
        size: int,
        rng: np.random.Generator,
        num_replicates: int = 1,
    ) -> None:
        if isinstance(model, NoFaults):
            raise ParameterError("NoFaults needs no injector; use build_injector()")
        if size < 2:
            raise ParameterError(f"size must be >= 2, got {size}")
        if num_replicates < 1:
            raise ParameterError(f"num_replicates must be >= 1, got {num_replicates}")
        self.model = model
        self.size = int(size)
        self.num_replicates = int(num_replicates)
        self._rng = rng
        shape = (self.num_replicates, self.size)
        self.crashed = np.zeros(shape, dtype=bool)
        self.prone = np.zeros(shape, dtype=bool)
        self.byzantine = np.zeros(shape, dtype=bool)
        self.bursting = np.zeros(self.num_replicates, dtype=bool)
        self.rounds_started = 0
        #: Marginal counters for the property tests (rates vs. configuration).
        self.counters: Dict[str, int] = {
            "crash_opportunities": 0,
            "crashes": 0,
            "byzantine_messages": 0,
            "burst_rounds": 0,
            "burst_flips": 0,
            "burst_flip_opportunities": 0,
        }
        if isinstance(model, CrashStop) and model.forced is None:
            self.prone = _draw_members(
                rng, self.num_replicates, self.size, model.fraction, model.immune
            )
        elif isinstance(model, ByzantineSenders):
            self.byzantine = _draw_members(
                rng, self.num_replicates, self.size, model.fraction, model.immune
            )

    # ------------------------------------------------------------------
    # round lifecycle
    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        """Advance fault state by one round (crash draws, burst transitions).

        Must be called exactly once per simulated round, before the round's
        send mask is filtered.  Consumes fault-stream variates only, and a
        fixed number of them per round for a given grid shape.
        """
        model = self.model
        if isinstance(model, CrashStop):
            if model.forced is not None:
                agents = model.forced.get(self.rounds_started, ())
                for agent in agents:
                    self.crashed[:, int(agent)] = True
                self.counters["crashes"] += len(agents) * self.num_replicates
            else:
                draws = self._rng.random((self.num_replicates, self.size))
                at_risk = self.prone & ~self.crashed
                newly = at_risk & (draws < model.crash_probability)
                self.counters["crash_opportunities"] += int(at_risk.sum())
                self.counters["crashes"] += int(newly.sum())
                self.crashed |= newly
        elif isinstance(model, BurstNoise):
            draws = self._rng.random(self.num_replicates)
            self.bursting = np.where(
                self.bursting,
                draws >= model.stop_probability,
                draws < model.start_probability,
            )
            self.counters["burst_rounds"] += int(self.bursting.sum())
        self.rounds_started += 1

    # ------------------------------------------------------------------
    # sender-side hooks
    # ------------------------------------------------------------------
    def filter_send_mask(self, send_mask: np.ndarray) -> np.ndarray:
        """Return ``send_mask`` with crashed agents silenced (batch grid)."""
        if not self.crashed.any():
            return send_mask
        return send_mask & ~self.crashed

    def filter_senders_serial(
        self, senders: np.ndarray, bits: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Drop crashed agents from a serial ``(senders, bits)`` pair."""
        alive = ~self.crashed[0, senders]
        if alive.all():
            return senders, bits
        return senders[alive], bits[alive]

    def corrupt_outgoing_grid(self, bits: np.ndarray, send_mask: np.ndarray) -> np.ndarray:
        """Replace Byzantine members' outgoing bits (positional fault draws).

        Always draws one fault-stream grid in ``random`` mode so consumption
        does not depend on the send mask; non-Byzantine cells are untouched.
        """
        model = self.model
        if not isinstance(model, ByzantineSenders):
            return bits
        if model.mode == "random":
            fake = self._rng.integers(0, 2, size=bits.shape, dtype=bits.dtype)
        else:
            fake = np.full_like(bits, model.adversarial_bit)
        self.counters["byzantine_messages"] += int((self.byzantine & send_mask).sum())
        return np.where(self.byzantine, fake, bits)

    def corrupt_outgoing_serial(self, senders: np.ndarray, bits: np.ndarray) -> np.ndarray:
        """Serial counterpart of :meth:`corrupt_outgoing_grid`."""
        model = self.model
        if not isinstance(model, ByzantineSenders):
            return bits
        if model.mode == "random":
            fake_row = self._rng.integers(0, 2, size=self.size, dtype=bits.dtype)
            fake = fake_row[senders]
        else:
            fake = np.full_like(bits, model.adversarial_bit)
        member = self.byzantine[0, senders]
        self.counters["byzantine_messages"] += int(member.sum())
        return np.where(member, fake, bits)

    # ------------------------------------------------------------------
    # channel-side hooks
    # ------------------------------------------------------------------
    def corrupt_delivered_grid(
        self, bits: np.ndarray, accepted: np.ndarray
    ) -> np.ndarray:
        """Apply burst corruption to accepted bits, post-channel (batch grid).

        Draws one positional fault grid per call so consumption is shape-only;
        bits outside ``accepted`` (or in quiet replicates) pass through.
        """
        model = self.model
        if not isinstance(model, BurstNoise):
            return bits
        draws = self._rng.random(bits.shape)
        affected = accepted & self.bursting[:, None]
        flips = affected & (draws < model.flip_probability)
        self.counters["burst_flip_opportunities"] += int(affected.sum())
        self.counters["burst_flips"] += int(flips.sum())
        return np.where(flips, bits ^ 1, bits)

    def corrupt_delivered_serial(
        self, recipients: np.ndarray, bits: np.ndarray
    ) -> np.ndarray:
        """Serial counterpart of :meth:`corrupt_delivered_grid`."""
        model = self.model
        if not isinstance(model, BurstNoise):
            return bits
        draws_row = self._rng.random(self.size)
        if not self.bursting[0]:
            return bits
        flips = draws_row[recipients] < model.flip_probability
        self.counters["burst_flip_opportunities"] += int(recipients.size)
        self.counters["burst_flips"] += int(flips.sum())
        return np.where(flips, bits ^ 1, bits)

    def corrupt_delivered_messages(
        self, replicates: np.ndarray, recipients: np.ndarray, bits: np.ndarray
    ) -> np.ndarray:
        """Burst-corrupt a message-aligned delivery (multi-accept paths).

        Draws one positional ``(num_replicates, size)`` fault grid keyed by
        recipient cell; messages landing on the same recipient in the same
        round share a flip decision, which preserves the per-message marginal
        flip rate.
        """
        model = self.model
        if not isinstance(model, BurstNoise):
            return bits
        draws = self._rng.random((self.num_replicates, self.size))
        if not bits.size:
            return bits
        affected = self.bursting[replicates]
        flips = affected & (draws[replicates, recipients] < model.flip_probability)
        self.counters["burst_flip_opportunities"] += int(affected.sum())
        self.counters["burst_flips"] += int(flips.sum())
        return np.where(flips, bits ^ 1, bits)

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def alive_mask(self) -> np.ndarray:
        """Boolean ``(num_replicates, size)`` grid of non-crashed agents."""
        return ~self.crashed

    def crashed_serial(self) -> np.ndarray:
        """Boolean ``(size,)`` crash vector for serial (single-replicate) use."""
        return self.crashed[0]

    def num_crashed(self) -> np.ndarray:
        """Per-replicate count of crashed agents."""
        return self.crashed.sum(axis=1)


def build_injector(
    model: Optional[FaultModel],
    size: int,
    rng: np.random.Generator,
    num_replicates: int = 1,
) -> Optional[FaultInjector]:
    """Build the injector for ``model``, or ``None`` for :class:`NoFaults`.

    Returning ``None`` (rather than a do-nothing injector) is load-bearing:
    every call site branches on ``injector is None`` back onto the exact
    pre-fault code path, which keeps the ``FaultModel.NONE`` bit-identity
    contract trivially true.
    """
    if model is None or isinstance(model, NoFaults):
        return None
    return FaultInjector(model, size, rng, num_replicates=num_replicates)
