"""Simulation substrate for the Flip model.

This subpackage implements the abstract communication model of Section 1.3 of
the paper as a reproducible, vectorised simulator:

* :mod:`~repro.substrate.rng` — reproducible random-stream management;
* :mod:`~repro.substrate.noise` — per-message binary symmetric channel noise;
* :mod:`~repro.substrate.population` — per-agent opinion/activation state;
* :mod:`~repro.substrate.network` — uniform push gossip with single-accept
  collision semantics;
* :mod:`~repro.substrate.clocks` — global and per-agent clocks;
* :mod:`~repro.substrate.scheduler` — round-budgeted driver for
  run-until-convergence protocols;
* :mod:`~repro.substrate.faults` — fault models (crash-stop, Byzantine
  senders, burst noise) with a dedicated random stream;
* :mod:`~repro.substrate.topology` — non-uniform contact graphs
  (degree-limited, two-cluster, churn);
* :mod:`~repro.substrate.metrics` / :mod:`~repro.substrate.trace` —
  measurement and debugging instrumentation;
* :mod:`~repro.substrate.engine` — the wired-together simulation engine.
"""

from .clocks import GlobalClock, LocalClocks
from .engine import SimulationEngine
from .faults import (
    NONE,
    BurstNoise,
    ByzantineSenders,
    CrashStop,
    FaultInjector,
    FaultModel,
    NoFaults,
    build_injector,
)
from .metrics import MetricsCollector, PhaseRecord
from .network import DeliveryReport, PushGossipNetwork
from .noise import (
    AdversarialFlipBudgetChannel,
    BinarySymmetricChannel,
    HeterogeneousChannel,
    NoiseChannel,
    PerfectChannel,
    crossover_probability,
    validate_epsilon,
)
from .population import NO_OPINION, Population
from .rng import RandomSource, derive_seed, spawn_generator
from .scheduler import RoundScheduler, ScheduleOutcome, StopReason
from .topology import (
    ChurnTopology,
    ContactTopology,
    DegreeLimitedTopology,
    TwoClusterTopology,
)
from .trace import EventTrace, TraceEvent

__all__ = [
    "GlobalClock",
    "LocalClocks",
    "SimulationEngine",
    "MetricsCollector",
    "PhaseRecord",
    "DeliveryReport",
    "PushGossipNetwork",
    "NoiseChannel",
    "BinarySymmetricChannel",
    "PerfectChannel",
    "HeterogeneousChannel",
    "AdversarialFlipBudgetChannel",
    "crossover_probability",
    "validate_epsilon",
    "NO_OPINION",
    "Population",
    "RandomSource",
    "derive_seed",
    "spawn_generator",
    "RoundScheduler",
    "ScheduleOutcome",
    "StopReason",
    "EventTrace",
    "TraceEvent",
    "FaultModel",
    "NoFaults",
    "CrashStop",
    "ByzantineSenders",
    "BurstNoise",
    "NONE",
    "FaultInjector",
    "build_injector",
    "ContactTopology",
    "DegreeLimitedTopology",
    "TwoClusterTopology",
    "ChurnTopology",
]
