"""Deterministic random-stream management for simulations.

Reproducibility is central to the experiment harness: every trial of every
experiment must be replayable from a single integer seed.  At the same time,
the Flip model involves several *logically independent* sources of
randomness:

* protocol randomness (which message an agent adopts, which subset it
  samples),
* delivery randomness (which agent a message is pushed to, collision
  resolution),
* channel noise (which bits get flipped).

:class:`RandomSource` wraps :class:`numpy.random.Generator` and hands out
named, independently seeded child streams so that, for instance, changing how
many random numbers the noise channel consumes does not perturb the delivery
pattern.  This mirrors the paper's Section 3 argument, which fixes the
"message scheduler" randomness independently of message contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

import numpy as np

__all__ = ["RandomSource", "spawn_generator", "derive_seed", "derive_seeds"]

_MAX_SEED = 2**63 - 1


def derive_seed(root_seed: int, *tokens: object) -> int:
    """Derive a child seed from ``root_seed`` and a sequence of tokens.

    The derivation uses :class:`numpy.random.SeedSequence` so that distinct
    token tuples yield statistically independent streams.  Tokens are hashed
    through their ``repr`` which keeps the derivation stable across processes
    (unlike ``hash`` on strings, which is salted per interpreter).

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    tokens:
        Arbitrary hashable labels, e.g. ``("trial", 7, "noise")``.

    Returns
    -------
    int
        A non-negative integer seed suitable for :func:`numpy.random.default_rng`.
    """
    token_digest = np.frombuffer(
        repr(tokens).encode("utf-8"), dtype=np.uint8
    ).astype(np.uint32)
    seq = np.random.SeedSequence(entropy=int(root_seed) & _MAX_SEED, spawn_key=tuple(token_digest))
    return int(seq.generate_state(1, dtype=np.uint64)[0] & _MAX_SEED)


def derive_seeds(root_seed: int, count: int, *tokens: object) -> np.ndarray:
    """Derive ``count`` independent child seeds, one per index.

    Batch-aware counterpart of :func:`derive_seed` used by the trial runners
    in :mod:`repro.exec`: element ``i`` equals
    ``derive_seed(root_seed, *tokens, i)`` exactly, so a batch of trials and a
    serial loop over the same indices see identical per-trial seeds.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    count:
        Number of child seeds to derive (indices ``0 .. count - 1``).
    tokens:
        Arbitrary labels prefixed to the per-index token tuple.

    Returns
    -------
    numpy.ndarray
        ``count`` non-negative ``int64`` seeds.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return np.asarray(
        [derive_seed(root_seed, *tokens, index) for index in range(count)], dtype=np.int64
    )


def spawn_generator(root_seed: int, *tokens: object) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for ``(root_seed, tokens)``."""
    return np.random.default_rng(derive_seed(root_seed, *tokens))


@dataclass
class RandomSource:
    """A named tree of reproducible random generators.

    Examples
    --------
    >>> source = RandomSource(seed=1234)
    >>> delivery_rng = source.stream("delivery")
    >>> noise_rng = source.stream("noise")
    >>> delivery_rng is source.stream("delivery")
    True

    The same name always returns the same generator *object*; re-creating a
    :class:`RandomSource` from the same seed recreates identical streams.
    """

    seed: int
    _streams: Dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(self.seed).__name__}")
        self.seed = int(self.seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if necessary) the generator for stream ``name``."""
        if name not in self._streams:
            self._streams[name] = spawn_generator(self.seed, "stream", name)
        return self._streams[name]

    def child(self, *tokens: object) -> "RandomSource":
        """Return a new :class:`RandomSource` derived from this one.

        Used to give every trial of an experiment its own independent tree:
        ``source.child("trial", trial_index)``.
        """
        return RandomSource(seed=derive_seed(self.seed, "child", *tokens))

    def children(self, count: int, label: str = "trial") -> Iterator["RandomSource"]:
        """Yield ``count`` independent child sources labelled ``label``."""
        for index in range(count):
            yield self.child(label, index)

    def integers(self, low: int, high: Optional[int] = None, size: Optional[int] = None):
        """Convenience proxy to the ``"default"`` stream's ``integers``."""
        return self.stream("default").integers(low, high=high, size=size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomSource(seed={self.seed}, streams={sorted(self._streams)})"
