"""The simulation engine: wiring of population, network, noise and clocks.

:class:`SimulationEngine` owns one run's worth of mutable state and exposes
the single primitive every protocol in this repository is built from:
:meth:`SimulationEngine.gossip_round` — one synchronous round of noisy push
gossip.  Protocols (in :mod:`repro.core` and :mod:`repro.protocols`) are pure
policy: they decide who speaks and what the recipients do with what they
heard; the engine handles delivery, noise, collision resolution, counting
and tracing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .clocks import GlobalClock, LocalClocks
from .faults import FaultInjector, FaultModel, build_injector
from .metrics import MetricsCollector
from .network import DeliveryReport, PushGossipNetwork
from .noise import BinarySymmetricChannel, NoiseChannel
from .population import Population
from .rng import RandomSource
from .topology import ContactTopology
from .trace import EventTrace

__all__ = ["SimulationEngine"]


@dataclass
class SimulationEngine:
    """A fully wired Flip-model simulation.

    Most users should construct engines via :meth:`SimulationEngine.create`,
    which builds consistent components from ``(n, epsilon, seed)``.
    """

    population: Population
    network: PushGossipNetwork
    channel: NoiseChannel
    random: RandomSource
    metrics: MetricsCollector = field(default_factory=MetricsCollector)
    trace: EventTrace = field(default_factory=EventTrace)
    clock: GlobalClock = field(default_factory=GlobalClock)
    local_clocks: Optional[LocalClocks] = None
    faults: Optional[FaultInjector] = None
    topology: Optional[ContactTopology] = None

    def __post_init__(self) -> None:
        if self.population.size != self.network.size:
            raise ConfigurationError(
                "population and network disagree on the number of agents: "
                f"{self.population.size} vs {self.network.size}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        n: int,
        epsilon: float,
        seed: int,
        source: Optional[int] = 0,
        channel: Optional[NoiseChannel] = None,
        record_time_series: bool = False,
        trace_events: bool = False,
        allow_self_messages: bool = False,
        with_local_clocks: bool = False,
        faults: Optional[FaultModel] = None,
        topology: Optional[ContactTopology] = None,
    ) -> "SimulationEngine":
        """Build a standard engine for ``n`` agents and noise parameter ``epsilon``.

        Parameters
        ----------
        n:
            Population size.
        epsilon:
            Noise margin; each delivered bit is flipped with probability
            ``1/2 - epsilon``.
        seed:
            Root seed for every random stream used by the run.
        source:
            Index of the broadcast source, or ``None`` for source-free
            (majority-consensus) instances.
        channel:
            Override the default :class:`BinarySymmetricChannel`.
        record_time_series:
            Store per-round correct-fraction/activation series in the metrics.
        trace_events:
            Enable the (bounded) event trace.
        allow_self_messages:
            Allow agents to push messages to themselves.
        with_local_clocks:
            Attach a :class:`LocalClocks` instance (used by Section-3 runs).
        faults:
            Optional :data:`~repro.substrate.faults.FaultModel`; anything but
            :class:`~repro.substrate.faults.NoFaults` attaches a
            :class:`~repro.substrate.faults.FaultInjector` fed from the
            dedicated ``"faults"`` random stream.
        topology:
            Optional non-uniform contact graph
            (:class:`~repro.substrate.topology.ContactTopology`) replacing
            uniform push targets.
        """
        random = RandomSource(seed=seed)
        if topology is not None:
            topology.validate(n)
        engine = cls(
            population=Population(size=n, source=source),
            network=PushGossipNetwork(size=n, allow_self_messages=allow_self_messages),
            channel=channel if channel is not None else BinarySymmetricChannel(epsilon=epsilon),
            random=random,
            metrics=MetricsCollector(record_time_series=record_time_series),
            trace=EventTrace(enabled=trace_events),
            local_clocks=LocalClocks(size=n) if with_local_clocks else None,
            faults=build_injector(faults, n, random.stream("faults")),
            topology=topology,
        )
        return engine

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of agents."""
        return self.population.size

    @property
    def epsilon(self) -> float:
        """Noise margin of the underlying channel."""
        return self.channel.epsilon

    @property
    def now(self) -> int:
        """Current global round index."""
        return self.clock.now

    # ------------------------------------------------------------------
    def gossip_round(
        self,
        senders: np.ndarray,
        bits: np.ndarray,
        correct_opinion: Optional[int] = None,
        multi_accept: bool = False,
    ) -> DeliveryReport:
        """Execute one synchronous round of noisy push gossip.

        Parameters
        ----------
        senders, bits:
            Who speaks this round and what bit each pushes.
        correct_opinion:
            When given (and time series recording is on) the engine records
            the fraction of agents holding this opinion after the round.
        multi_accept:
            Use :meth:`PushGossipNetwork.deliver_all` instead of the Flip
            model's single-accept rule.  Only idealised baselines outside the
            Flip model set this.
        """
        delivery_rng = self.random.stream("delivery")
        if multi_accept:
            report = self.network.deliver_all(
                senders, bits, self.channel, delivery_rng,
                faults=self.faults, topology=self.topology,
            )
        else:
            report = self.network.deliver(
                senders, bits, self.channel, delivery_rng,
                faults=self.faults, topology=self.topology,
            )
        self.clock.tick()

        correct_fraction = None
        if self.metrics.record_time_series and correct_opinion is not None:
            correct_fraction = self.population.correct_fraction(correct_opinion)
        self.metrics.observe_round(
            messages_sent=report.messages_sent,
            messages_delivered=report.messages_delivered,
            messages_dropped=report.messages_dropped,
            correct_fraction=correct_fraction,
            activated=self.population.num_activated() if self.metrics.record_time_series else None,
        )
        self.trace.record(
            self.clock.now,
            "deliver",
            senders=int(report.messages_sent),
            delivered=int(report.messages_delivered),
        )
        return report

    def idle_round(self) -> None:
        """Advance time by one round in which nobody speaks."""
        self.clock.tick()
        self.metrics.observe_round(0, 0, 0)

    # ------------------------------------------------------------------
    def protocol_rng(self) -> np.random.Generator:
        """Random stream reserved for protocol decisions (message choices etc.)."""
        return self.random.stream("protocol")

    def spawn_subengine_seed(self, *tokens: object) -> int:
        """Derive a reproducible seed for an auxiliary component."""
        return self.random.child(*tokens).seed
