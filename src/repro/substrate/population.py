"""Population state for Flip-model simulations.

A :class:`Population` holds the per-agent state that the paper's protocols
manipulate:

* ``opinions`` — an ``int8`` vector where ``-1`` means *no opinion yet* and
  ``0``/``1`` are the two abstract opinions of Section 1.3.1;
* ``activated`` — a boolean vector; a non-source agent becomes *activated*
  the first time it receives a message (Section 2.1.2);
* ``activation_phase`` — the Stage-I phase (layer) in which each agent was
  activated, ``-1`` for dormant agents.

The class is deliberately dumb: it stores state and offers cheap vectorised
accessors (bias, counts), while all protocol logic lives in
:mod:`repro.core` and :mod:`repro.protocols`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ParameterError, SimulationError

__all__ = ["NO_OPINION", "Population"]

#: Sentinel opinion value meaning "this agent has not adopted any opinion".
NO_OPINION: int = -1


@dataclass
class Population:
    """Mutable per-agent state for a single simulation run.

    Parameters
    ----------
    size:
        Number of agents ``n``.
    source:
        Index of the designated source agent for broadcast instances, or
        ``None`` for majority-consensus instances that have no source.
    """

    size: int
    source: Optional[int] = 0
    opinions: np.ndarray = field(init=False, repr=False)
    activated: np.ndarray = field(init=False, repr=False)
    activation_phase: np.ndarray = field(init=False, repr=False)
    activation_round: np.ndarray = field(init=False, repr=False)
    crashed: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ParameterError(f"population size must be at least 2, got {self.size}")
        if self.source is not None and not 0 <= self.source < self.size:
            raise ParameterError(
                f"source index {self.source} out of range for population of size {self.size}"
            )
        self.opinions = np.full(self.size, NO_OPINION, dtype=np.int8)
        self.activated = np.zeros(self.size, dtype=bool)
        self.activation_phase = np.full(self.size, -1, dtype=np.int32)
        self.activation_round = np.full(self.size, -1, dtype=np.int64)
        self.crashed = np.zeros(self.size, dtype=bool)
        if self.source is not None:
            self.activated[self.source] = True
            self.activation_phase[self.source] = 0
            self.activation_round[self.source] = 0

    # ------------------------------------------------------------------
    # Initialisation helpers
    # ------------------------------------------------------------------
    def set_source_opinion(self, opinion: int) -> None:
        """Give the source its (correct) opinion ``B``."""
        if self.source is None:
            raise SimulationError("population has no source agent")
        self._check_opinion(opinion)
        self.opinions[self.source] = opinion

    def seed_opinionated_set(
        self,
        members: np.ndarray,
        opinions: np.ndarray,
        phase: int = 0,
        round_index: int = 0,
    ) -> None:
        """Initialise a majority-consensus instance.

        ``members`` are the indices of the initial opinionated set ``A`` and
        ``opinions`` their opinions; all of them are marked activated.
        """
        members = np.asarray(members, dtype=np.int64)
        opinions = np.asarray(opinions, dtype=np.int8)
        if members.shape != opinions.shape:
            raise ParameterError("members and opinions must have the same shape")
        if members.size and (members.min() < 0 or members.max() >= self.size):
            raise ParameterError("member index out of range")
        if members.size != np.unique(members).size:
            raise ParameterError("members must be distinct agent indices")
        if opinions.size and (opinions.min() < 0 or opinions.max() > 1):
            raise ParameterError("opinions must be 0 or 1")
        self.opinions[members] = opinions
        self.activated[members] = True
        self.activation_phase[members] = phase
        self.activation_round[members] = round_index

    # ------------------------------------------------------------------
    # Mutation used by protocols
    # ------------------------------------------------------------------
    def activate(self, agents: np.ndarray, phase: int, round_index: int) -> np.ndarray:
        """Mark ``agents`` as activated in ``phase`` (idempotent).

        Returns the subset of ``agents`` that were newly activated by this
        call (agents already activated keep their original phase).
        """
        agents = np.asarray(agents, dtype=np.int64)
        newly = agents[~self.activated[agents]]
        if newly.size:
            self.activated[newly] = True
            self.activation_phase[newly] = phase
            self.activation_round[newly] = round_index
        return newly

    def set_opinions(self, agents: np.ndarray, opinions: np.ndarray) -> None:
        """Overwrite the opinions of ``agents``."""
        agents = np.asarray(agents, dtype=np.int64)
        opinions = np.asarray(opinions, dtype=np.int8)
        if opinions.size and (opinions.min() < 0 or opinions.max() > 1):
            raise ParameterError("opinions must be 0 or 1")
        self.opinions[agents] = opinions

    def mark_crashed(self, crashed: np.ndarray) -> None:
        """Record which agents have crashed (fault-model runs only).

        ``crashed`` is a boolean mask of all agents, typically the fault
        injector's :meth:`~repro.substrate.faults.FaultInjector.crashed_serial`
        after a run; surviving-agent accessors use it.
        """
        crashed = np.asarray(crashed, dtype=bool)
        if crashed.shape != (self.size,):
            raise ParameterError(
                f"crashed mask must have shape ({self.size},), got {crashed.shape}"
            )
        self.crashed = crashed.copy()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Alias for the population size (the paper's ``n``)."""
        return self.size

    def num_activated(self) -> int:
        """Number of activated agents (the paper's ``X_i`` at phase boundaries)."""
        return int(np.count_nonzero(self.activated))

    def num_dormant(self) -> int:
        """Number of agents that have never received a message."""
        return self.size - self.num_activated()

    def opinionated(self) -> np.ndarray:
        """Boolean mask of agents that currently hold an opinion."""
        return self.opinions != NO_OPINION

    def num_opinionated(self) -> int:
        """Number of agents holding an opinion (0 or 1)."""
        return int(np.count_nonzero(self.opinionated()))

    def count_opinion(self, opinion: int) -> int:
        """Number of agents currently holding ``opinion``."""
        self._check_opinion(opinion)
        return int(np.count_nonzero(self.opinions == opinion))

    def correct_fraction(self, correct_opinion: int) -> float:
        """Fraction of *all* agents holding ``correct_opinion``."""
        self._check_opinion(correct_opinion)
        return self.count_opinion(correct_opinion) / self.size

    def bias(self, correct_opinion: int) -> float:
        """Majority-bias of the opinionated agents towards ``correct_opinion``.

        Defined as in Section 1.3.1: ``(A_B - A_notB) / (2 |A|)`` where ``A``
        is the set of opinionated agents.  Returns ``0.0`` when no agent has
        an opinion.
        """
        self._check_opinion(correct_opinion)
        holders = self.num_opinionated()
        if holders == 0:
            return 0.0
        correct = self.count_opinion(correct_opinion)
        wrong = holders - correct
        return (correct - wrong) / (2 * holders)

    def all_correct(self, correct_opinion: int) -> bool:
        """True when every agent holds ``correct_opinion``."""
        self._check_opinion(correct_opinion)
        return bool(np.all(self.opinions == correct_opinion))

    def num_crashed(self) -> int:
        """Number of agents marked as crashed (see :meth:`mark_crashed`)."""
        return int(np.count_nonzero(self.crashed))

    def surviving_correct_fraction(self, correct_opinion: int) -> float:
        """Fraction of *non-crashed* agents holding ``correct_opinion``.

        The success notion for crash-fault runs: a crashed agent cannot be
        expected to learn the opinion, so it is excluded from the account.
        Returns ``0.0`` when every agent crashed.
        """
        self._check_opinion(correct_opinion)
        alive = ~self.crashed
        total = int(np.count_nonzero(alive))
        if total == 0:
            return 0.0
        correct = int(np.count_nonzero(self.opinions[alive] == correct_opinion))
        return correct / total

    def all_surviving_correct(self, correct_opinion: int) -> bool:
        """True when every non-crashed agent holds ``correct_opinion``."""
        self._check_opinion(correct_opinion)
        alive = ~self.crashed
        return bool(np.all(self.opinions[alive] == correct_opinion))

    def consensus_opinion(self) -> Optional[int]:
        """Return the common opinion if all agents agree, else ``None``."""
        first = int(self.opinions[0])
        if first == NO_OPINION:
            return None
        if bool(np.all(self.opinions == first)):
            return first
        return None

    def snapshot(self) -> dict:
        """Return a plain-dict summary of the population state."""
        return {
            "size": self.size,
            "activated": self.num_activated(),
            "opinionated": self.num_opinionated(),
            "count_zero": self.count_opinion(0),
            "count_one": self.count_opinion(1),
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _check_opinion(opinion: int) -> None:
        if opinion not in (0, 1):
            raise ParameterError(f"opinion must be 0 or 1, got {opinion!r}")
