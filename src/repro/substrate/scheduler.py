"""A small synchronous round scheduler.

The paper's own protocols have a *fixed, precomputed* round schedule (their
running time does not depend on the execution), so Stage I/II executors in
:mod:`repro.core` simply iterate over their schedules.  Baseline protocols
such as the noisy voter model or the silent-wait strategy, however, run
*until convergence* and need a driver with a round budget and stop
conditions.  :class:`RoundScheduler` is that driver.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ParameterError

__all__ = ["StopReason", "ScheduleOutcome", "RoundScheduler"]


class StopReason(enum.Enum):
    """Why a scheduled run stopped."""

    #: The per-round step function asked to stop (e.g. consensus detected).
    CONVERGED = "converged"
    #: The round budget was exhausted before the step function stopped.
    BUDGET_EXHAUSTED = "budget_exhausted"
    #: An externally supplied predicate asked to stop.
    PREDICATE = "predicate"


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of :meth:`RoundScheduler.run`."""

    rounds_executed: int
    stop_reason: StopReason

    @property
    def converged(self) -> bool:
        """True when the run stopped because the step function said so."""
        return self.stop_reason in (StopReason.CONVERGED, StopReason.PREDICATE)


@dataclass
class RoundScheduler:
    """Drive a per-round step function for up to ``max_rounds`` rounds.

    Parameters
    ----------
    max_rounds:
        Hard budget on the number of rounds.
    check_every:
        How often (in rounds) the optional ``stop_predicate`` is evaluated;
        predicates such as "has the population reached consensus?" can be
        relatively expensive, so they need not run every round.
    """

    max_rounds: int
    check_every: int = 1

    def __post_init__(self) -> None:
        if self.max_rounds < 0:
            raise ParameterError("max_rounds must be non-negative")
        if self.check_every < 1:
            raise ParameterError("check_every must be at least 1")

    def run(
        self,
        step: Callable[[int], bool],
        stop_predicate: Optional[Callable[[int], bool]] = None,
        on_round: Optional[Callable[[int], None]] = None,
    ) -> ScheduleOutcome:
        """Run ``step(round_index)`` until it returns ``False`` or budget runs out.

        Parameters
        ----------
        step:
            Called once per round with the zero-based round index.  Returning
            ``False`` stops the run (reported as :attr:`StopReason.CONVERGED`).
        stop_predicate:
            Optional predicate evaluated every ``check_every`` rounds after
            the step; returning ``True`` stops the run.
        on_round:
            Optional hook called *before* each round's step — fault-model
            runs use it to advance environment state (crash draws, burst
            transitions) that must happen even in rounds where the protocol
            itself does nothing.
        """
        executed = 0
        for round_index in range(self.max_rounds):
            if on_round is not None:
                on_round(round_index)
            keep_going = step(round_index)
            executed += 1
            if not keep_going:
                return ScheduleOutcome(executed, StopReason.CONVERGED)
            if stop_predicate is not None and (round_index + 1) % self.check_every == 0:
                if stop_predicate(round_index):
                    return ScheduleOutcome(executed, StopReason.PREDICATE)
        return ScheduleOutcome(executed, StopReason.BUDGET_EXHAUSTED)
