"""Run-time metric collection for simulations.

The experiments in this repository (the E1–E11 table in README.md) report three kinds
of quantities:

* *complexities* — rounds executed and messages sent, matching the paper's
  ``O(log n / eps^2)`` round and ``O(n log n / eps^2)`` message bounds;
* *phase-level summaries* — number of agents activated per Stage-I phase and
  the bias of their initial opinions (the paper's ``X_i``, ``Y_i``, ``eps_i``)
  and the per-phase bias trajectory of Stage II (``delta_i``);
* *time series* — correct fraction over rounds, used for convergence plots.

:class:`MetricsCollector` accumulates all three without imposing any cost on
code that does not ask for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["PhaseRecord", "MetricsCollector"]


@dataclass(frozen=True)
class PhaseRecord:
    """Summary of one protocol phase.

    Attributes
    ----------
    stage:
        Human-readable stage label (``"stage1"``, ``"stage2"``, ...).
    phase:
        Phase index within the stage.
    start_round / end_round:
        Global round interval ``[start_round, end_round)`` the phase occupied.
    activated_total:
        Activated agents at the end of the phase (Stage I's ``X_i``).
    newly_activated:
        Agents activated during the phase (Stage I's ``Y_i``).
    bias:
        Bias towards the correct opinion among the relevant group at the end
        of the phase (Stage I: the newly activated agents' initial opinions,
        i.e. ``eps_i``; Stage II: the whole population, i.e. ``delta_i``).
    correct_fraction:
        Fraction of all agents holding the correct opinion at phase end.
    messages_sent:
        Messages pushed during the phase.
    """

    stage: str
    phase: int
    start_round: int
    end_round: int
    activated_total: int
    newly_activated: int
    bias: float
    correct_fraction: float
    messages_sent: int

    @property
    def duration(self) -> int:
        """Number of rounds the phase lasted."""
        return self.end_round - self.start_round


@dataclass
class MetricsCollector:
    """Accumulates rounds, messages, phase records and optional time series."""

    record_time_series: bool = False
    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    phases: List[PhaseRecord] = field(default_factory=list)
    correct_fraction_series: List[float] = field(default_factory=list)
    activated_series: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    def observe_round(
        self,
        messages_sent: int,
        messages_delivered: int,
        messages_dropped: int,
        correct_fraction: Optional[float] = None,
        activated: Optional[int] = None,
    ) -> None:
        """Record the outcome of one simulated round."""
        self.rounds += 1
        self.messages_sent += messages_sent
        self.messages_delivered += messages_delivered
        self.messages_dropped += messages_dropped
        if self.record_time_series:
            if correct_fraction is not None:
                self.correct_fraction_series.append(float(correct_fraction))
            if activated is not None:
                self.activated_series.append(int(activated))

    def observe_phase(self, record: PhaseRecord) -> None:
        """Append a completed phase summary."""
        self.phases.append(record)

    # ------------------------------------------------------------------
    def phases_for(self, stage: str) -> List[PhaseRecord]:
        """All phase records belonging to ``stage``, in order."""
        return [record for record in self.phases if record.stage == stage]

    def total_bits(self) -> int:
        """Total bits transmitted (messages are single-bit, so equals messages)."""
        return self.messages_sent

    def summary(self) -> Dict[str, float]:
        """Plain-dict summary used by the experiment harness and CLI."""
        return {
            "rounds": self.rounds,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "phases": len(self.phases),
        }

    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector's counters into this one (sequential stages)."""
        self.rounds += other.rounds
        self.messages_sent += other.messages_sent
        self.messages_delivered += other.messages_delivered
        self.messages_dropped += other.messages_dropped
        self.phases.extend(other.phases)
        self.correct_fraction_series.extend(other.correct_fraction_series)
        self.activated_series.extend(other.activated_series)
