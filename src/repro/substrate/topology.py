"""Non-uniform contact graphs as pluggable target-sampling policies.

The paper's model pushes every message to a uniformly random other agent.
ROADMAP item 3 asks what happens on less friendly contact structures; this
module supplies three of them as drop-in replacements for the uniform
sampler in :mod:`repro.substrate.network`:

* :class:`DegreeLimitedTopology` — each agent only ever contacts its next
  ``degree`` neighbours on a ring (a sparse, directed contact graph);
* :class:`TwoClusterTopology` — two equal communities, with a message
  crossing to the other community only with probability
  ``cross_probability`` (a bottleneck graph);
* :class:`ChurnTopology` — uniform contacts, but every agent is offline in
  any given round with probability ``offline_probability`` (offline agents
  neither send nor receive that round).

Every topology draws *positionally*: one fixed-shape grid of uniforms per
logical decision, mapped to integer ranges with ``floor(u * k)`` instead of
``Generator.integers`` (whose rejection sampling consumes a data-dependent
number of variates).  Per round a topology therefore consumes an amount of
the delivery stream that depends only on the grid shape — the same
stability contract the fault layer relies on (see
:mod:`repro.substrate.faults`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "ContactTopology",
    "DegreeLimitedTopology",
    "TwoClusterTopology",
    "ChurnTopology",
]


class ContactTopology(abc.ABC):
    """A pluggable per-round target-sampling policy for push gossip.

    Implementations return, for every ``(replicate, agent)`` cell, the target
    that agent would contact this round, plus an optional per-agent offline
    mask (offline agents drop out of the round entirely).  Targets are drawn
    for *every* cell — senders and non-senders alike — so the delivery
    stream's consumption is positional, independent of who actually sends.
    """

    def validate(self, size: int) -> None:
        """Raise :class:`~repro.errors.ParameterError` if ``size`` is unusable."""
        if size < 2:
            raise ParameterError(f"topology needs size >= 2, got {size}")

    @abc.abstractmethod
    def draw_round_grid(
        self, num_replicates: int, size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Draw one round of contacts for an ``(num_replicates, size)`` grid.

        Returns ``(targets, offline)``: ``targets`` is an int64 grid of
        contact ids (never self), ``offline`` is a boolean grid of agents
        sitting out this round, or ``None`` when the topology has no churn.
        """

    def draw_round(
        self, size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Serial convenience: one replicate's round, as flat ``(size,)`` arrays."""
        targets, offline = self.draw_round_grid(1, size, rng)
        return targets[0], None if offline is None else offline[0]


@dataclass(frozen=True)
class DegreeLimitedTopology(ContactTopology):
    """Ring contact graph: agent ``j`` only contacts ``j+1 .. j+degree`` (mod n)."""

    degree: int = 4
    kind: str = field(default="degree-limited", init=False)

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ParameterError(f"degree must be >= 1, got {self.degree}")

    def validate(self, size: int) -> None:
        super().validate(size)
        if self.degree > size - 1:
            raise ParameterError(
                f"degree {self.degree} exceeds size-1 ({size - 1}); use a uniform network"
            )

    def draw_round_grid(
        self, num_replicates: int, size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        self.validate(size)
        cols = np.arange(size, dtype=np.int64)
        offsets = np.floor(rng.random((num_replicates, size)) * self.degree).astype(np.int64)
        targets = (cols + 1 + offsets) % size
        return targets, None


@dataclass(frozen=True)
class TwoClusterTopology(ContactTopology):
    """Two equal communities with a sparse bridge between them.

    Agents ``0 .. size//2 - 1`` form cluster A, the rest cluster B.  Each
    contact stays within the sender's own cluster (uniform, excluding self)
    except with probability ``cross_probability``, when it targets a uniform
    member of the other cluster.
    """

    cross_probability: float = 0.05
    kind: str = field(default="two-cluster", init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.cross_probability <= 1.0:
            raise ParameterError(
                f"cross_probability must be in [0, 1], got {self.cross_probability}"
            )

    def validate(self, size: int) -> None:
        super().validate(size)
        if size < 4:
            raise ParameterError(f"two-cluster topology needs size >= 4, got {size}")

    def draw_round_grid(
        self, num_replicates: int, size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        self.validate(size)
        half = size // 2
        cols = np.arange(size, dtype=np.int64)
        in_a = cols < half
        own_start = np.where(in_a, 0, half)
        own_size = np.where(in_a, half, size - half)
        other_start = np.where(in_a, half, 0)
        other_size = np.where(in_a, size - half, half)

        cross = rng.random((num_replicates, size)) < self.cross_probability
        pick = rng.random((num_replicates, size))
        # Within-cluster pick excludes self by the usual skip trick.
        local = np.floor(pick * (own_size - 1)).astype(np.int64)
        local_pos = cols - own_start
        within = own_start + local + (local >= local_pos)
        across = other_start + np.floor(pick * other_size).astype(np.int64)
        return np.where(cross, across, within), None


@dataclass(frozen=True)
class ChurnTopology(ContactTopology):
    """Uniform contacts with per-round churn: agents are sometimes offline.

    Every round each agent is independently offline with probability
    ``offline_probability``; offline agents neither send nor receive that
    round (their inbound messages are lost, like a dropped connection).
    """

    offline_probability: float = 0.1
    kind: str = field(default="churn", init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.offline_probability < 1.0:
            raise ParameterError(
                f"offline_probability must be in [0, 1), got {self.offline_probability}"
            )

    def draw_round_grid(
        self, num_replicates: int, size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        self.validate(size)
        cols = np.arange(size, dtype=np.int64)
        offline = rng.random((num_replicates, size)) < self.offline_probability
        draws = np.floor(rng.random((num_replicates, size)) * (size - 1)).astype(np.int64)
        targets = draws + (draws >= cols)
        return targets, offline
