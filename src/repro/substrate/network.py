"""Push-gossip message delivery with single-accept semantics.

Section 1.3.2 of the paper fixes the interaction pattern:

* in each round, every agent that chooses to speak sends exactly one 1-bit
  message to another agent chosen uniformly at random (uniform push gossip);
* neither sender nor receiver learn each other's identity;
* if an agent receives several messages in the same round it *accepts one of
  them, chosen uniformly at random*, and all others are dropped;
* the accepted bit is flipped independently with probability ``1/2 - epsilon``
  (the noise itself is modelled by :mod:`repro.substrate.noise`).

:class:`PushGossipNetwork` implements exactly this primitive, vectorised with
numpy so that a round with tens of thousands of concurrent senders costs a
handful of array operations.  A slower pure-Python reference implementation
(:meth:`PushGossipNetwork.deliver_reference`) is kept for differential
testing of the vectorised path.

Every delivery entry point also accepts an optional ``faults``
(:class:`~repro.substrate.faults.FaultInjector`) and ``topology``
(:class:`~repro.substrate.topology.ContactTopology`).  With both ``None``
the original code path runs byte for byte; with either active, delivery
switches to a *positional* variant that draws full ``(R, n)`` target /
priority / noise grids per round, so the main stream's consumption is a
function of the grid shape alone — a crashed or silenced sender cannot shift
any other agent's draws in later rounds (the fault layer's determinism
contract, see :mod:`repro.substrate.faults`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ParameterError, ProtocolError
from .faults import FaultInjector
from .noise import NoiseChannel
from .topology import ContactTopology

__all__ = [
    "DeliveryReport",
    "BatchDeliveryReport",
    "BatchDeliveryAllReport",
    "PushGossipNetwork",
]


@dataclass(frozen=True)
class DeliveryReport:
    """Outcome of one round of push-gossip delivery.

    Attributes
    ----------
    recipients:
        Indices of agents that accepted a message this round (each appears
        exactly once).
    bits:
        The bit each recipient accepted, *after* channel noise.
    senders:
        The sender whose message each recipient accepted (aligned with
        ``recipients``); useful for tracing the dissemination tree.
    messages_sent:
        Total number of messages pushed this round.
    messages_delivered:
        Number of messages accepted (= ``len(recipients)``).
    messages_dropped:
        Messages lost to collisions (``sent - delivered``).
    """

    recipients: np.ndarray
    bits: np.ndarray
    senders: np.ndarray
    messages_sent: int
    messages_delivered: int
    messages_dropped: int

    @staticmethod
    def empty() -> "DeliveryReport":
        """A report for a round in which nobody sent anything."""
        empty_i64 = np.empty(0, dtype=np.int64)
        empty_i8 = np.empty(0, dtype=np.int8)
        return DeliveryReport(empty_i64, empty_i8, empty_i64.copy(), 0, 0, 0)


@dataclass(frozen=True)
class BatchDeliveryReport:
    """Outcome of one push-gossip round executed for ``R`` replicates at once.

    All grids have shape ``(R, n)``: row ``r`` describes replicate ``r`` and
    column ``j`` describes agent ``j``.  Replicates are fully independent —
    messages never cross replicate boundaries.

    Attributes
    ----------
    accepted:
        Boolean grid; ``accepted[r, j]`` is true when agent ``j`` of
        replicate ``r`` accepted a message this round.
    bits:
        The accepted bit after channel noise (0 wherever ``accepted`` is
        false).
    senders:
        Index of the sender whose message was accepted (-1 wherever
        ``accepted`` is false).
    messages_sent / messages_delivered:
        Per-replicate message counts, shape ``(R,)``.
    """

    accepted: np.ndarray
    bits: np.ndarray
    senders: np.ndarray
    messages_sent: np.ndarray
    messages_delivered: np.ndarray

    @property
    def messages_dropped(self) -> np.ndarray:
        """Per-replicate messages lost to collisions."""
        return self.messages_sent - self.messages_delivered

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R`` in the batch."""
        return int(self.accepted.shape[0])


@dataclass(frozen=True)
class BatchDeliveryAllReport:
    """Outcome of one *multi-accept* round executed for ``R`` replicates at once.

    The multi-accept rule delivers every message, so one recipient may accept
    several messages in the same round and an ``(R, n)`` "accepted bit" grid
    cannot represent the outcome.  The report is therefore message-aligned:
    all arrays have one entry per delivered message, ordered replicate-major
    by sender index (the order :meth:`PushGossipNetwork.deliver_all_batch`
    consumes the channel stream in).

    Attributes
    ----------
    replicates:
        Replicate index of each delivered message.
    recipients:
        Recipient of each message (duplicates within a replicate are
        possible — that is the point of multi-accept semantics).
    senders:
        Sender of each message.
    bits:
        The delivered bit of each message, *after* channel noise.
    messages_sent:
        Per-replicate message counts, shape ``(R,)``; with multi-accept
        semantics every sent message is delivered.
    """

    replicates: np.ndarray
    recipients: np.ndarray
    senders: np.ndarray
    bits: np.ndarray
    messages_sent: np.ndarray

    @property
    def messages_delivered(self) -> np.ndarray:
        """Per-replicate delivered counts (equal to ``messages_sent``)."""
        return self.messages_sent

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R`` in the batch."""
        return int(self.messages_sent.size)

    def delivery_counts(self, size: int) -> np.ndarray:
        """Per-(replicate, agent) received-message counts as an ``(R, size)`` grid."""
        counts = np.zeros((self.num_replicates, size), dtype=np.int64)
        np.add.at(counts, (self.replicates, self.recipients), 1)
        return counts


@dataclass
class PushGossipNetwork:
    """Uniform push-gossip network over ``size`` anonymous agents.

    Parameters
    ----------
    size:
        Number of agents ``n``.
    allow_self_messages:
        The paper has agents send to "another agent"; by default an agent
        never selects itself as the recipient.  Setting this to ``True``
        allows self-delivery, which simplifies some analytical comparisons
        (the difference is a ``1/n`` correction).
    """

    size: int
    allow_self_messages: bool = False
    messages_sent_total: int = field(default=0, init=False)
    messages_delivered_total: int = field(default=0, init=False)
    messages_dropped_total: int = field(default=0, init=False)
    rounds_executed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ParameterError(f"network size must be at least 2, got {self.size}")

    # ------------------------------------------------------------------
    def reset_counters(self) -> None:
        """Reset the cumulative message counters."""
        self.messages_sent_total = 0
        self.messages_delivered_total = 0
        self.messages_dropped_total = 0
        self.rounds_executed = 0

    # ------------------------------------------------------------------
    def deliver(
        self,
        senders: np.ndarray,
        bits: np.ndarray,
        channel: NoiseChannel,
        rng: np.random.Generator,
        faults: Optional[FaultInjector] = None,
        topology: Optional[ContactTopology] = None,
    ) -> DeliveryReport:
        """Execute one synchronous round of push-gossip delivery.

        Parameters
        ----------
        senders:
            Indices of the agents sending this round.  An agent may appear
            at most once (one message per agent per round).
        bits:
            The bit each sender pushes, aligned with ``senders``.
        channel:
            Noise channel applied to each *accepted* message.
        rng:
            Randomness for recipient selection and collision resolution.
        faults:
            Optional fault injector; crashed senders are silenced, Byzantine
            bits substituted, burst corruption applied — all from the
            injector's own stream (see module docstring).
        topology:
            Optional non-uniform contact graph replacing uniform targets.
        """
        if faults is not None or topology is not None:
            return self._deliver_resilient(senders, bits, channel, rng, faults, topology)
        senders = np.asarray(senders, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.int8)
        self._validate_round_inputs(senders, bits)
        self.rounds_executed += 1
        if senders.size == 0:
            return DeliveryReport.empty()

        targets = self._draw_targets(senders, rng)

        # Collision resolution: each recipient keeps one uniformly random
        # message among those addressed to it this round.  Permuting the
        # message order and keeping the first occurrence per target is an
        # unbiased implementation of that rule.
        order = rng.permutation(senders.size)
        permuted_targets = targets[order]
        recipients, first_position = np.unique(permuted_targets, return_index=True)
        accepted = order[first_position]

        accepted_bits = channel.transmit(bits[accepted], rng)

        sent = int(senders.size)
        delivered = int(recipients.size)
        self.messages_sent_total += sent
        self.messages_delivered_total += delivered
        self.messages_dropped_total += sent - delivered
        return DeliveryReport(
            recipients=recipients.astype(np.int64),
            bits=accepted_bits.astype(np.int8),
            senders=senders[accepted],
            messages_sent=sent,
            messages_delivered=delivered,
            messages_dropped=sent - delivered,
        )

    def deliver_batch(
        self,
        send_mask: np.ndarray,
        bits: np.ndarray,
        channel: NoiseChannel,
        rng: np.random.Generator,
        faults: Optional[FaultInjector] = None,
        topology: Optional[ContactTopology] = None,
    ) -> BatchDeliveryReport:
        """Execute one push-gossip round for ``R`` independent replicates at once.

        This is the batch-aware entry point used by
        :mod:`repro.exec.batching`: instead of one engine (and one Python-level
        round loop) per Monte-Carlo trial, ``R`` replicates of the round are
        simulated with a handful of array operations on ``(R, n)`` grids.
        Per replicate the semantics are exactly those of :meth:`deliver` —
        uniform recipient choice, single-accept with a uniformly random winner
        among colliding messages, channel noise on accepted bits — and
        replicates never interact.  The collision winner is selected by
        assigning each message an i.i.d. uniform priority and keeping the
        minimum per (replicate, recipient) pair, which is an unbiased
        implementation of the uniform-winner rule.

        Randomness is drawn from the single ``rng`` for the whole batch, so
        results are deterministic given the generator state but not
        bit-identical to ``R`` separate :meth:`deliver` calls; the
        differential tests in ``tests/unit/exec`` pin down the statistical
        equivalence.

        Parameters
        ----------
        send_mask:
            ``(R, n)`` boolean grid: which agents speak this round in each
            replicate.
        bits:
            ``(R, n)`` integer grid with the bit each agent would push
            (entries outside ``send_mask`` are ignored).
        channel:
            Noise channel applied to accepted messages via
            :meth:`NoiseChannel.transmit_batch`.
        rng:
            Randomness for target selection and collision resolution.
        faults:
            Optional fault injector (dedicated-stream fault decisions; see
            module docstring).
        topology:
            Optional non-uniform contact graph replacing uniform targets.
        """
        if faults is not None or topology is not None:
            return self._deliver_batch_resilient(send_mask, bits, channel, rng, faults, topology)
        send_mask = np.asarray(send_mask, dtype=bool)
        bits = np.asarray(bits)
        if send_mask.ndim != 2:
            raise ProtocolError("send_mask must be a 2-D (replicates, agents) grid")
        if send_mask.shape != bits.shape:
            raise ProtocolError("send_mask and bits must have the same shape")
        num_replicates, size = send_mask.shape
        if size != self.size:
            raise ProtocolError(
                f"batch is over {size} agents but the network has {self.size}"
            )
        masked_bits = bits[send_mask]
        if masked_bits.size and (masked_bits.min() < 0 or masked_bits.max() > 1):
            raise ProtocolError("message bits must be 0 or 1")

        self.rounds_executed += 1
        sent = send_mask.sum(axis=1).astype(np.int64)
        accepted = np.zeros((num_replicates, size), dtype=bool)
        accepted_bits = np.zeros((num_replicates, size), dtype=np.int8)
        accepted_senders = np.full((num_replicates, size), -1, dtype=np.int64)

        rows, cols = np.nonzero(send_mask)
        if rows.size:
            # One flat bucket per (replicate, recipient) pair keeps the
            # replicates independent while resolving every collision in a
            # single sort.
            if self.allow_self_messages:
                targets = rng.integers(0, size, size=rows.size)
            else:
                draws = rng.integers(0, size - 1, size=rows.size)
                targets = draws + (draws >= cols)
            priorities = rng.random(rows.size)
            buckets = rows * size + targets
            # Sorting by bucket with random tie-breaking picks a uniform
            # winner per (replicate, recipient).  A single combined float key
            # (integer bucket + fractional priority) is an order of magnitude
            # faster than np.lexsort and exact while bucket ids fit the
            # 53-bit float64 mantissa; batches anywhere near that size are
            # unreachable in practice.
            if num_replicates * size < 2**52:
                order = np.argsort(buckets + priorities)
            else:  # pragma: no cover - astronomically large batches
                order = np.lexsort((priorities, buckets))
            sorted_buckets = buckets[order]
            is_first = np.empty(rows.size, dtype=bool)
            is_first[0] = True
            is_first[1:] = sorted_buckets[1:] != sorted_buckets[:-1]
            winners = order[is_first]

            winning_buckets = buckets[winners]
            accepted.reshape(-1)[winning_buckets] = True
            accepted_senders.reshape(-1)[winning_buckets] = cols[winners]
            # winning_buckets is ascending (one winner per sorted bucket), so
            # noising the winner bits directly consumes the channel stream in
            # the same replicate-major, recipient-ascending order as
            # NoiseChannel.transmit_batch — bit-identical, minus a grid copy.
            noisy = channel.transmit(bits[rows[winners], cols[winners]], rng)
            accepted_bits.reshape(-1)[winning_buckets] = noisy

        delivered = accepted.sum(axis=1).astype(np.int64)
        self.messages_sent_total += int(sent.sum())
        self.messages_delivered_total += int(delivered.sum())
        self.messages_dropped_total += int((sent - delivered).sum())
        return BatchDeliveryReport(
            accepted=accepted,
            bits=accepted_bits.astype(np.int8),
            senders=accepted_senders,
            messages_sent=sent,
            messages_delivered=delivered,
        )

    def deliver_all(
        self,
        senders: np.ndarray,
        bits: np.ndarray,
        channel: NoiseChannel,
        rng: np.random.Generator,
        faults: Optional[FaultInjector] = None,
        topology: Optional[ContactTopology] = None,
    ) -> DeliveryReport:
        """Deliver *every* message, resolving nothing (no single-accept rule).

        Stage II of the paper has agents *collect* all messages received in a
        round... except the Flip model still only lets an agent accept one
        message per round.  This helper exists for protocols outside the Flip
        model (idealised baselines such as the direct-from-source reference)
        that need multi-accept semantics.  The returned ``recipients`` may
        therefore contain duplicates.  ``faults``/``topology`` switch to the
        positional resilient path (see module docstring); with churn,
        messages to offline recipients are dropped.
        """
        if faults is not None or topology is not None:
            return self._deliver_all_resilient(senders, bits, channel, rng, faults, topology)
        senders = np.asarray(senders, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.int8)
        self._validate_round_inputs(senders, bits)
        self.rounds_executed += 1
        if senders.size == 0:
            return DeliveryReport.empty()
        targets = self._draw_targets(senders, rng)
        noisy_bits = channel.transmit(bits, rng)
        sent = int(senders.size)
        self.messages_sent_total += sent
        self.messages_delivered_total += sent
        return DeliveryReport(
            recipients=targets,
            bits=noisy_bits.astype(np.int8),
            senders=senders,
            messages_sent=sent,
            messages_delivered=sent,
            messages_dropped=0,
        )

    def deliver_all_batch(
        self,
        send_mask: np.ndarray,
        bits: np.ndarray,
        channel: NoiseChannel,
        rng: np.random.Generator,
        faults: Optional[FaultInjector] = None,
        topology: Optional[ContactTopology] = None,
    ) -> BatchDeliveryAllReport:
        """Deliver *every* message for ``R`` independent replicates at once.

        Batch-aware companion of :meth:`deliver_all`, exactly as
        :meth:`deliver_batch` is the companion of :meth:`deliver`: per
        replicate every message reaches a uniformly random recipient and
        nothing is dropped (no single-accept rule), which is the multi-accept
        semantics idealised baselines outside the Flip model use.  Targets are
        drawn for all messages first, then noise is applied through
        :meth:`NoiseChannel.transmit_batch` on the ``(R, n)`` sender grid —
        i.e. the channel stream is consumed in replicate-major,
        sender-ascending order, mirroring how a serial :meth:`deliver_all`
        call noises its messages in sender order.  Replicates never interact.

        Randomness comes from the single ``rng`` for the whole batch, so
        results are deterministic given the generator state but not
        bit-identical to ``R`` separate :meth:`deliver_all` calls; the
        property tests in ``tests/unit/substrate/test_network.py`` pin the
        per-replicate marginals (message counts, target uniformity, flip
        rate) against the serial path.

        Parameters
        ----------
        send_mask:
            ``(R, n)`` boolean grid: which agents speak this round in each
            replicate.
        bits:
            ``(R, n)`` integer grid with the bit each agent would push
            (entries outside ``send_mask`` are ignored).
        channel:
            Noise channel applied to every message via
            :meth:`NoiseChannel.transmit_batch`.
        rng:
            Randomness for target selection and channel noise.
        faults:
            Optional fault injector (dedicated-stream fault decisions).
        topology:
            Optional non-uniform contact graph replacing uniform targets.
        """
        if faults is not None or topology is not None:
            return self._deliver_all_batch_resilient(
                send_mask, bits, channel, rng, faults, topology
            )
        send_mask = np.asarray(send_mask, dtype=bool)
        bits = np.asarray(bits)
        if send_mask.ndim != 2:
            raise ProtocolError("send_mask must be a 2-D (replicates, agents) grid")
        if send_mask.shape != bits.shape:
            raise ProtocolError("send_mask and bits must have the same shape")
        num_replicates, size = send_mask.shape
        if size != self.size:
            raise ProtocolError(
                f"batch is over {size} agents but the network has {self.size}"
            )
        masked_bits = bits[send_mask]
        if masked_bits.size and (masked_bits.min() < 0 or masked_bits.max() > 1):
            raise ProtocolError("message bits must be 0 or 1")

        self.rounds_executed += 1
        sent = send_mask.sum(axis=1).astype(np.int64)
        rows, cols = np.nonzero(send_mask)
        if rows.size:
            if self.allow_self_messages:
                targets = rng.integers(0, size, size=rows.size)
            else:
                draws = rng.integers(0, size - 1, size=rows.size)
                targets = draws + (draws >= cols)
            noisy_grid = channel.transmit_batch(bits, send_mask, rng)
            noisy = noisy_grid[send_mask]
        else:
            targets = np.empty(0, dtype=np.int64)
            noisy = np.empty(0, dtype=np.int8)

        total = int(sent.sum())
        self.messages_sent_total += total
        self.messages_delivered_total += total
        return BatchDeliveryAllReport(
            replicates=rows.astype(np.int64),
            recipients=targets.astype(np.int64),
            senders=cols.astype(np.int64),
            bits=noisy.astype(np.int8),
            messages_sent=sent,
        )

    # ------------------------------------------------------------------
    # resilient (fault / topology aware) delivery
    # ------------------------------------------------------------------
    def _positional_targets(
        self,
        num_replicates: int,
        rng: np.random.Generator,
        topology: Optional[ContactTopology],
    ) -> tuple:
        """Draw full-grid contact targets (and churn mask) for one round.

        Always draws exactly one target grid (plus the topology's fixed
        extras) from the main stream, regardless of who sends — the
        positional-consumption property the resilient paths rely on.
        """
        size = self.size
        if topology is not None:
            return topology.draw_round_grid(num_replicates, size, rng)
        if self.allow_self_messages:
            targets = rng.integers(0, size, size=(num_replicates, size))
        else:
            draws = rng.integers(0, size - 1, size=(num_replicates, size))
            targets = draws + (draws >= np.arange(size, dtype=np.int64))
        return targets, None

    def _deliver_resilient(
        self,
        senders: np.ndarray,
        bits: np.ndarray,
        channel: NoiseChannel,
        rng: np.random.Generator,
        faults: Optional[FaultInjector],
        topology: Optional[ContactTopology],
    ) -> DeliveryReport:
        """Serial single-accept delivery with faults and/or a contact topology.

        Same semantics as :meth:`deliver` per surviving message, but every
        main-stream draw is positional (full ``size``-length vectors for
        targets, collision priorities and channel noise), so the main
        stream's per-round consumption is fixed at ``2 * size`` uniforms plus
        one ``size``-wide channel pass whatever the crash/churn pattern.
        """
        senders = np.asarray(senders, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.int8)
        self._validate_round_inputs(senders, bits)
        self.rounds_executed += 1
        size = self.size

        if faults is not None:
            faults.begin_round()
            senders, bits = faults.filter_senders_serial(senders, bits)
            bits = faults.corrupt_outgoing_serial(senders, bits)

        targets_grid, offline_grid = self._positional_targets(1, rng, topology)
        targets_all = targets_grid[0]
        offline = None if offline_grid is None else offline_grid[0]
        priorities_all = rng.random(size)

        if offline is not None and senders.size:
            online = ~offline[senders]
            senders, bits = senders[online], bits[online]
        sent = int(senders.size)
        targets = targets_all[senders]
        if offline is not None and senders.size:
            reachable = ~offline[targets]
            senders, bits, targets = senders[reachable], bits[reachable], targets[reachable]

        if senders.size:
            # Combined integer-target + fractional-priority key: the minimum
            # priority per target wins, exactly as on the batch path.
            order = np.argsort(targets + priorities_all[senders])
            sorted_targets = targets[order]
            is_first = np.empty(order.size, dtype=bool)
            is_first[0] = True
            is_first[1:] = sorted_targets[1:] != sorted_targets[:-1]
            winners = order[is_first]
            recipients = targets[winners]
            winner_senders = senders[winners]
            winner_bits = bits[winners]
        else:
            recipients = np.empty(0, dtype=np.int64)
            winner_senders = np.empty(0, dtype=np.int64)
            winner_bits = np.empty(0, dtype=np.int8)

        # Positional channel pass: one candidate slot per agent, noised
        # unconditionally so noise consumption never depends on acceptance.
        candidate = np.zeros(size, dtype=np.int8)
        candidate[recipients] = winner_bits
        noisy_all = channel.transmit(candidate, rng)
        accepted_bits = noisy_all[recipients].astype(np.int8)
        if faults is not None:
            accepted_bits = faults.corrupt_delivered_serial(recipients, accepted_bits)

        delivered = int(recipients.size)
        self.messages_sent_total += sent
        self.messages_delivered_total += delivered
        self.messages_dropped_total += sent - delivered
        return DeliveryReport(
            recipients=recipients.astype(np.int64),
            bits=accepted_bits,
            senders=winner_senders,
            messages_sent=sent,
            messages_delivered=delivered,
            messages_dropped=sent - delivered,
        )

    def _deliver_batch_resilient(
        self,
        send_mask: np.ndarray,
        bits: np.ndarray,
        channel: NoiseChannel,
        rng: np.random.Generator,
        faults: Optional[FaultInjector],
        topology: Optional[ContactTopology],
    ) -> BatchDeliveryReport:
        """Batch single-accept delivery with faults and/or a contact topology.

        The ``(R, n)`` companion of :meth:`_deliver_resilient`: target,
        priority and channel grids are drawn for every cell of the batch, so
        main-stream consumption per round is exactly two ``(R, n)`` uniform
        grids plus one full-grid channel pass, independent of the send mask
        and of any crash/churn pattern.
        """
        send_mask = np.asarray(send_mask, dtype=bool)
        bits = np.asarray(bits)
        if send_mask.ndim != 2:
            raise ProtocolError("send_mask must be a 2-D (replicates, agents) grid")
        if send_mask.shape != bits.shape:
            raise ProtocolError("send_mask and bits must have the same shape")
        num_replicates, size = send_mask.shape
        if size != self.size:
            raise ProtocolError(
                f"batch is over {size} agents but the network has {self.size}"
            )
        masked_bits = bits[send_mask]
        if masked_bits.size and (masked_bits.min() < 0 or masked_bits.max() > 1):
            raise ProtocolError("message bits must be 0 or 1")
        self.rounds_executed += 1

        if faults is not None:
            faults.begin_round()
            send_mask = faults.filter_send_mask(send_mask)
            bits = faults.corrupt_outgoing_grid(bits, send_mask)

        targets_grid, offline = self._positional_targets(num_replicates, rng, topology)
        priorities_grid = rng.random((num_replicates, size))

        effective_mask = send_mask if offline is None else send_mask & ~offline
        sent = effective_mask.sum(axis=1).astype(np.int64)
        rows, cols = np.nonzero(effective_mask)
        targets = targets_grid[rows, cols]
        if offline is not None and rows.size:
            reachable = ~offline[rows, targets]
            rows, cols, targets = rows[reachable], cols[reachable], targets[reachable]

        accepted = np.zeros((num_replicates, size), dtype=bool)
        accepted_senders = np.full((num_replicates, size), -1, dtype=np.int64)
        candidate = np.zeros((num_replicates, size), dtype=np.int8)
        if rows.size:
            priorities = priorities_grid[rows, cols]
            buckets = rows * size + targets
            if num_replicates * size < 2**52:
                order = np.argsort(buckets + priorities)
            else:  # pragma: no cover - astronomically large batches
                order = np.lexsort((priorities, buckets))
            sorted_buckets = buckets[order]
            is_first = np.empty(rows.size, dtype=bool)
            is_first[0] = True
            is_first[1:] = sorted_buckets[1:] != sorted_buckets[:-1]
            winners = order[is_first]
            winning_buckets = buckets[winners]
            accepted.reshape(-1)[winning_buckets] = True
            accepted_senders.reshape(-1)[winning_buckets] = cols[winners]
            candidate.reshape(-1)[winning_buckets] = np.asarray(bits, dtype=np.int8)[
                rows[winners], cols[winners]
            ]

        # Full-grid channel pass (every cell noised, acceptance masked after)
        # keeps noise consumption positional too.
        noisy_grid = channel.transmit_batch(
            candidate, np.ones((num_replicates, size), dtype=bool), rng
        )
        accepted_bits = np.where(accepted, noisy_grid, 0).astype(np.int8)
        if faults is not None:
            accepted_bits = faults.corrupt_delivered_grid(accepted_bits, accepted)

        delivered = accepted.sum(axis=1).astype(np.int64)
        self.messages_sent_total += int(sent.sum())
        self.messages_delivered_total += int(delivered.sum())
        self.messages_dropped_total += int((sent - delivered).sum())
        return BatchDeliveryReport(
            accepted=accepted,
            bits=accepted_bits,
            senders=accepted_senders,
            messages_sent=sent,
            messages_delivered=delivered,
        )

    def _deliver_all_resilient(
        self,
        senders: np.ndarray,
        bits: np.ndarray,
        channel: NoiseChannel,
        rng: np.random.Generator,
        faults: Optional[FaultInjector],
        topology: Optional[ContactTopology],
    ) -> DeliveryReport:
        """Serial multi-accept delivery with faults and/or a contact topology.

        Positional like :meth:`_deliver_resilient`; channel noise is keyed by
        sender slot (one candidate per agent, every agent sends at most once
        per round) and churn drops messages to offline recipients.
        """
        senders = np.asarray(senders, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.int8)
        self._validate_round_inputs(senders, bits)
        self.rounds_executed += 1
        size = self.size

        if faults is not None:
            faults.begin_round()
            senders, bits = faults.filter_senders_serial(senders, bits)
            bits = faults.corrupt_outgoing_serial(senders, bits)

        targets_grid, offline_grid = self._positional_targets(1, rng, topology)
        targets_all = targets_grid[0]
        offline = None if offline_grid is None else offline_grid[0]

        if offline is not None and senders.size:
            online = ~offline[senders]
            senders, bits = senders[online], bits[online]
        sent = int(senders.size)
        targets = targets_all[senders]

        candidate = np.zeros(size, dtype=np.int8)
        candidate[senders] = bits
        noisy_all = channel.transmit(candidate, rng)
        noisy = noisy_all[senders].astype(np.int8)

        if offline is not None and senders.size:
            reachable = ~offline[targets]
            senders, targets, noisy = senders[reachable], targets[reachable], noisy[reachable]
        if faults is not None:
            noisy = faults.corrupt_delivered_messages(
                np.zeros(senders.size, dtype=np.int64), targets, noisy
            )

        delivered = int(senders.size)
        self.messages_sent_total += sent
        self.messages_delivered_total += delivered
        self.messages_dropped_total += sent - delivered
        return DeliveryReport(
            recipients=targets.astype(np.int64),
            bits=noisy,
            senders=senders,
            messages_sent=sent,
            messages_delivered=delivered,
            messages_dropped=sent - delivered,
        )

    def _deliver_all_batch_resilient(
        self,
        send_mask: np.ndarray,
        bits: np.ndarray,
        channel: NoiseChannel,
        rng: np.random.Generator,
        faults: Optional[FaultInjector],
        topology: Optional[ContactTopology],
    ) -> BatchDeliveryAllReport:
        """Batch multi-accept delivery with faults and/or a contact topology.

        Positional ``(R, n)`` companion of :meth:`_deliver_all_resilient`.
        With churn the per-message arrays contain only the *delivered*
        messages, which can be fewer than ``messages_sent`` (unlike the
        fault-free path, where every sent message is delivered).
        """
        send_mask = np.asarray(send_mask, dtype=bool)
        bits = np.asarray(bits)
        if send_mask.ndim != 2:
            raise ProtocolError("send_mask must be a 2-D (replicates, agents) grid")
        if send_mask.shape != bits.shape:
            raise ProtocolError("send_mask and bits must have the same shape")
        num_replicates, size = send_mask.shape
        if size != self.size:
            raise ProtocolError(
                f"batch is over {size} agents but the network has {self.size}"
            )
        masked_bits = bits[send_mask]
        if masked_bits.size and (masked_bits.min() < 0 or masked_bits.max() > 1):
            raise ProtocolError("message bits must be 0 or 1")
        self.rounds_executed += 1

        if faults is not None:
            faults.begin_round()
            send_mask = faults.filter_send_mask(send_mask)
            bits = faults.corrupt_outgoing_grid(bits, send_mask)

        targets_grid, offline = self._positional_targets(num_replicates, rng, topology)
        effective_mask = send_mask if offline is None else send_mask & ~offline
        sent = effective_mask.sum(axis=1).astype(np.int64)

        noisy_grid = channel.transmit_batch(
            np.asarray(bits, dtype=np.int8),
            np.ones((num_replicates, size), dtype=bool),
            rng,
        )
        rows, cols = np.nonzero(effective_mask)
        targets = targets_grid[rows, cols]
        noisy = noisy_grid[rows, cols].astype(np.int8)
        if offline is not None and rows.size:
            reachable = ~offline[rows, targets]
            rows, cols = rows[reachable], cols[reachable]
            targets, noisy = targets[reachable], noisy[reachable]
        if faults is not None:
            noisy = faults.corrupt_delivered_messages(rows, targets, noisy)

        self.messages_sent_total += int(sent.sum())
        self.messages_delivered_total += int(rows.size)
        self.messages_dropped_total += int(sent.sum()) - int(rows.size)
        return BatchDeliveryAllReport(
            replicates=rows.astype(np.int64),
            recipients=targets.astype(np.int64),
            senders=cols.astype(np.int64),
            bits=noisy,
            messages_sent=sent,
        )

    def deliver_reference(
        self,
        senders: np.ndarray,
        bits: np.ndarray,
        channel: NoiseChannel,
        rng: np.random.Generator,
    ) -> DeliveryReport:
        """Pure-Python reference implementation of :meth:`deliver`.

        Exists solely so differential tests can check the vectorised path
        against a literal transcription of the model's rules.  Statistically
        equivalent to :meth:`deliver`, not bit-for-bit identical.
        """
        senders = np.asarray(senders, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.int8)
        self._validate_round_inputs(senders, bits)
        self.rounds_executed += 1
        if senders.size == 0:
            return DeliveryReport.empty()

        inboxes: dict[int, list[tuple[int, int]]] = {}
        for sender, bit in zip(senders.tolist(), bits.tolist()):
            if self.allow_self_messages:
                target = int(rng.integers(0, self.size))
            else:
                target = int(rng.integers(0, self.size - 1))
                if target >= sender:
                    target += 1
            inboxes.setdefault(target, []).append((sender, bit))

        recipients: list[int] = []
        accepted_bits: list[int] = []
        accepted_senders: list[int] = []
        for target in sorted(inboxes):
            choices = inboxes[target]
            sender, bit = choices[int(rng.integers(0, len(choices)))]
            recipients.append(target)
            accepted_senders.append(sender)
            accepted_bits.append(bit)

        noisy = channel.transmit(np.asarray(accepted_bits, dtype=np.int8), rng)
        sent = int(senders.size)
        delivered = len(recipients)
        self.messages_sent_total += sent
        self.messages_delivered_total += delivered
        self.messages_dropped_total += sent - delivered
        return DeliveryReport(
            recipients=np.asarray(recipients, dtype=np.int64),
            bits=noisy.astype(np.int8),
            senders=np.asarray(accepted_senders, dtype=np.int64),
            messages_sent=sent,
            messages_delivered=delivered,
            messages_dropped=sent - delivered,
        )

    # ------------------------------------------------------------------
    def _draw_targets(self, senders: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw a uniformly random recipient for every sender."""
        if self.allow_self_messages:
            return rng.integers(0, self.size, size=senders.size)
        draws = rng.integers(0, self.size - 1, size=senders.size)
        # Skip over the sender's own index so the target is uniform over the
        # other n - 1 agents.
        return draws + (draws >= senders)

    def _validate_round_inputs(self, senders: np.ndarray, bits: np.ndarray) -> None:
        if senders.shape != bits.shape:
            raise ProtocolError("senders and bits must have the same shape")
        if senders.ndim != 1:
            raise ProtocolError("senders must be a 1-D array of agent indices")
        if senders.size == 0:
            return
        if senders.min() < 0 or senders.max() >= self.size:
            raise ProtocolError("sender index out of range")
        if np.unique(senders).size != senders.size:
            raise ProtocolError("an agent may send at most one message per round")
        if bits.min() < 0 or bits.max() > 1:
            raise ProtocolError("message bits must be 0 or 1")
