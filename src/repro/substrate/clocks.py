"""Clock models: the global clock of Section 2 and local clocks of Section 3.

The fully-synchronous setting assumes a single global round counter that all
agents share.  Section 3 of the paper removes this assumption: each agent has
a private clock that starts (at zero) when the agent is activated, and the
algorithm is modified so that agents whose clocks are at most ``D`` apart
still execute each phase during disjoint global-time windows.

:class:`GlobalClock` is the trivial shared counter.  :class:`LocalClocks`
keeps a per-agent clock *offset*: the global round at which the agent's clock
last read zero.  The Section-3 simulation advances global time and derives
every agent's local reading from its offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError

__all__ = ["GlobalClock", "LocalClocks"]


@dataclass
class GlobalClock:
    """A single shared round counter."""

    now: int = 0

    def tick(self, rounds: int = 1) -> int:
        """Advance the clock by ``rounds`` and return the new time."""
        if rounds < 0:
            raise ParameterError("cannot tick a clock backwards")
        self.now += rounds
        return self.now

    def reset(self) -> None:
        """Reset the clock to zero."""
        self.now = 0


@dataclass
class LocalClocks:
    """Per-agent clocks defined by activation offsets.

    Attributes
    ----------
    size:
        Number of agents.
    offsets:
        ``offsets[a]`` is the global round at which agent ``a``'s clock read
        zero, or ``-1`` if the agent's clock has not started yet.
    """

    size: int
    offsets: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ParameterError("need at least one agent")
        self.offsets = np.full(self.size, -1, dtype=np.int64)

    # ------------------------------------------------------------------
    def start(self, agents: np.ndarray, global_time: int) -> None:
        """Start the clocks of ``agents`` at ``global_time`` if not yet started."""
        agents = np.asarray(agents, dtype=np.int64)
        fresh = agents[self.offsets[agents] < 0]
        self.offsets[fresh] = global_time

    def reset(self, agents: np.ndarray, global_time: int) -> None:
        """Force the clocks of ``agents`` to read zero at ``global_time``.

        Used by the Section-3 activation phase, which resets an agent's clock
        ``4 log n`` rounds after it first heard a message.
        """
        agents = np.asarray(agents, dtype=np.int64)
        self.offsets[agents] = global_time

    def started(self) -> np.ndarray:
        """Boolean mask of agents whose clocks are running."""
        return self.offsets >= 0

    def local_time(self, global_time: int) -> np.ndarray:
        """Vector of local clock readings at ``global_time``.

        Agents whose clocks have not started read ``-1``.
        """
        readings = np.where(self.offsets >= 0, global_time - self.offsets, -1)
        return readings.astype(np.int64)

    def skew(self) -> int:
        """Maximum difference between any two running clocks (the paper's ``D``)."""
        running = self.offsets[self.offsets >= 0]
        if running.size == 0:
            return 0
        return int(running.max() - running.min())

    def initialise_uniform(
        self, rng: np.random.Generator, max_offset: int, global_time: int = 0
    ) -> None:
        """Start every clock at a zero-point drawn uniformly from ``[global_time, global_time + max_offset)``.

        Models the relaxed setting of Section 3.1 where all clocks are known
        to be within a window of ``D = max_offset`` rounds of each other.
        """
        if max_offset < 1:
            raise ParameterError("max_offset must be at least 1")
        self.offsets = global_time + rng.integers(0, max_offset, size=self.size).astype(np.int64)
