"""A small typed client for the experiment service (stdlib ``http.client``).

Used by the service's own tests, the CI smoke gate and
``benchmarks/bench_service_load.py`` — and usable as a library client
wherever an HTTP round-trip to a running ``repro-flip serve`` instance is
wanted without hand-rolling requests::

    client = ServiceClient(port=8000)
    submission = client.submit("E1", params={"sizes": [250], "epsilon": 0.3},
                               execution={"batch": True, "trials": 1})
    final = client.result(submission)          # waits if a job was queued
    print(final["result"]["rendered"])         # the report table

Every method returns the decoded JSON body (``encode_nonfinite`` tags from
the server are decoded back to real ``NaN``/``±inf`` floats, so report
payloads round-trip exactly).  Non-2xx responses raise
:class:`ServiceError`, an :class:`~repro.errors.ExperimentError` carrying
``status`` and the error ``payload`` — tests assert on both.

The client is **retrying** by default: connection failures (service
restarting — the crash-recovery story's client half) and retryable
statuses (``429`` shed load, ``503``) back off exponentially with
deterministic jitter under a :class:`RetryPolicy`, honouring the server's
``Retry-After`` hint and an end-to-end deadline.  Retrying ``POST
/v1/runs`` is safe because submissions are fingerprint-deduplicated
server-side (a repeat joins the in-flight job) and completed runs are
memoized — the service's idempotence is what makes the client's
persistence correct.  Client errors (400/404/409) never retry.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import ExperimentError
from ..store import decode_nonfinite
from .jobs import JobState

__all__ = ["RetryPolicy", "ServiceError", "ServiceClient"]

#: HTTP statuses worth retrying: shed load and transient unavailability.
RETRYABLE_STATUSES = (429, 503)


class ServiceError(ExperimentError):
    """A non-2xx service response, carrying the status and decoded body.

    ``retry_after`` is the server's backoff hint in seconds (from the
    ``Retry-After`` header or the JSON body), ``None`` when absent.
    """

    def __init__(self, status: int, payload: Any, retry_after: Optional[float] = None):
        """Build from the HTTP status and the decoded JSON error body."""
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"service responded {status}: {message or payload!r}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``attempts`` is the *total* number of tries (``attempts=1`` disables
    retrying); ``deadline`` is the end-to-end budget in seconds across all
    tries and backoffs — whichever of the two runs out first stops the
    loop and re-raises the last failure.  Jitter is deterministic (a fixed
    mix of the attempt number), matching the repo-wide reproducibility
    contract: two identical client runs back off identically.
    """

    attempts: int = 4
    base_delay: float = 0.1
    max_delay: float = 5.0
    multiplier: float = 2.0
    deadline: Optional[float] = None

    def delay(self, attempt: int, retry_after: Optional[float] = None) -> float:
        """Seconds to sleep before retry ``attempt`` (1-based).

        Exponential in ``attempt``, capped at ``max_delay``, scaled by a
        deterministic jitter factor in ``[0.5, 1.0]`` — and never below
        the server's ``retry_after`` hint when one was given.
        """
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        jitter = 0.5 + 0.5 * ((attempt * 2654435761) % 1000) / 999.0
        delay = raw * jitter
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay


class ServiceClient:
    """Typed submit/wait/result access to one experiment-service endpoint.

    One short-lived ``http.client.HTTPConnection`` per request — no shared
    mutable state, so a single client instance is safe to use from many
    threads (the load benchmark does exactly that).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ):
        """Point the client at ``host:port`` (per-request socket ``timeout``).

        ``retry`` defaults to the standard :class:`RetryPolicy`; pass
        ``RetryPolicy(attempts=1)`` for fail-fast single attempts (tests
        asserting on 429 bodies do).
        """
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()

    # ------------------------------------------------------------ plumbing

    def request(self, method: str, path: str, payload: Optional[Any] = None) -> Dict[str, Any]:
        """One logical request: HTTP round-trips under the retry policy.

        Connection-level failures (refused, reset — the service is down or
        restarting) and :data:`RETRYABLE_STATUSES` back off and retry;
        everything else raises immediately.  The decoded JSON body on
        success, :class:`ServiceError` on a final 4xx/5xx.
        """
        policy = self.retry
        started = time.monotonic()
        attempt = 0
        while True:
            attempt += 1
            retry_after: Optional[float] = None
            try:
                return self._request_once(method, path, payload)
            except ServiceError as error:
                if error.status not in RETRYABLE_STATUSES:
                    raise
                failure: Exception = error
                retry_after = error.retry_after
            except (ConnectionError, http.client.HTTPException, TimeoutError) as error:
                failure = error
            if attempt >= policy.attempts:
                raise failure
            delay = policy.delay(attempt, retry_after)
            if policy.deadline is not None:
                elapsed = time.monotonic() - started
                if elapsed + delay >= policy.deadline:
                    raise failure
            time.sleep(delay)

    def _request_once(self, method: str, path: str, payload: Optional[Any] = None) -> Dict[str, Any]:
        """One HTTP round-trip; decoded JSON body, :class:`ServiceError` on 4xx/5xx."""
        body: Optional[bytes] = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload, allow_nan=False).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
            retry_header = response.getheader("Retry-After")
        finally:
            connection.close()
        try:
            decoded = decode_nonfinite(json.loads(raw.decode("utf-8"))) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ExperimentError(
                f"service returned a non-JSON body for {method} {path} "
                f"(status {status}): {error}"
            ) from error
        if status >= 400:
            retry_after: Optional[float] = None
            if retry_header is not None:
                try:
                    retry_after = float(retry_header)
                except ValueError:
                    retry_after = None
            elif isinstance(decoded, dict) and isinstance(
                decoded.get("retry_after"), (int, float)
            ):
                retry_after = float(decoded["retry_after"])
            raise ServiceError(status, decoded, retry_after)
        return decoded

    # ------------------------------------------------------------ resources

    def submit(
        self,
        experiment: str,
        params: Optional[Dict[str, Any]] = None,
        execution: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """``POST /v1/runs``: an immediate-hit body (``status == "done"``,
        result attached) or a job submission body (``job_id`` set)."""
        return self.request(
            "POST",
            "/v1/runs",
            {"experiment": experiment, "params": params or {}, "execution": execution or {}},
        )

    def status(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/runs/<id>``: the job's manifest (+ result when done)."""
        return self.request("GET", f"/v1/runs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_interval: float = 0.05,
        max_poll_interval: float = 1.0,
    ) -> Dict[str, Any]:
        """Poll a job until it reaches a terminal state; return that body.

        The poll interval starts at ``poll_interval`` and grows 1.5× per
        poll up to ``max_poll_interval`` — sub-second jobs are noticed
        almost immediately while a multi-minute sweep costs ~1 request/s
        instead of the 20/s a fixed 50 ms poll would hammer the service
        with.  Raises :class:`~repro.errors.ExperimentError` if ``timeout``
        elapses first (the job keeps running server-side).  Does *not*
        raise on ``failed``/``cancelled`` — the caller inspects
        ``body["status"]``; :meth:`result` is the raising convenience.
        """
        deadline = time.monotonic() + timeout
        interval = poll_interval
        while True:
            body = self.status(job_id)
            if body["status"] in JobState.TERMINAL:
                return body
            now = time.monotonic()
            if now >= deadline:
                raise ExperimentError(
                    f"job {job_id} still {body['status']} after {timeout}s"
                )
            time.sleep(min(interval, deadline - now))
            interval = min(interval * 1.5, max_poll_interval)

    def result(self, submission: Dict[str, Any], timeout: float = 120.0) -> Dict[str, Any]:
        """Resolve a :meth:`submit` body to its final ``done`` body.

        An immediate hit is returned as-is; a queued submission is waited
        on.  A ``failed`` or ``cancelled`` outcome raises
        :class:`~repro.errors.ExperimentError` with the job's error text.
        """
        body = submission
        if body.get("status") != JobState.DONE:
            body = self.wait(body["job_id"], timeout=timeout)
        if body["status"] != JobState.DONE:
            raise ExperimentError(
                f"job {body.get('job_id')} ended {body['status']}: {body.get('error')}"
            )
        return body

    def run(
        self,
        experiment: str,
        params: Optional[Dict[str, Any]] = None,
        execution: Optional[Dict[str, Any]] = None,
        timeout: float = 120.0,
    ) -> Dict[str, Any]:
        """Submit and block until done: the one-call convenience wrapper."""
        return self.result(self.submit(experiment, params, execution), timeout=timeout)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /v1/runs/<id>``: cancel a queued job."""
        return self.request("DELETE", f"/v1/runs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /v1/runs``: manifests of all tracked jobs."""
        return self.request("GET", "/v1/runs")["jobs"]

    def experiments(self) -> List[Dict[str, Any]]:
        """``GET /v1/experiments``: the experiment registry listing."""
        return self.request("GET", "/v1/experiments")["experiments"]

    def store(self, fingerprint_prefix: str) -> Dict[str, Any]:
        """``GET /v1/store/<prefix>``: a stored artifact by prefix."""
        return self.request("GET", f"/v1/store/{fingerprint_prefix}")

    def health(self) -> Dict[str, Any]:
        """``GET /healthz``: liveness and queue gauges."""
        return self.request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``: the service counters snapshot."""
        return self.request("GET", "/metrics")
